"""Saturation: graceful degradation under thousands of closed-loop clients.

Not a paper table — the paper serves one query at a time.  This bench
drives the admission-controlled proxy with a ladder of closed-loop
client populations (8 up to 10,000 at the default scale) on the
deterministic event loop and checks the *graceful saturation* shape:

* throughput climbs to the service capacity and stays on a plateau
  (>= 80% of peak) instead of collapsing as offered load keeps rising;
* the p95 latency of admitted queries stays within the configured
  queue deadline — waiting is bounded by policy, not by backlog;
* the shed fraction rises monotonically with offered load, and every
  submission yields exactly one structured record (``serve`` never
  raises, even at 10,000 clients).

The benchmark kernel is the overload fast path: a ``serve`` call
rejected at admission while the queue is full — the operation the
proxy performs tens of thousands of times per run at the top rung.
"""

from repro.admission import AdmissionConfig, AdmissionController
from repro.core.schemes import CachingScheme
from repro.core.stats import QueryOutcome
from repro.harness.saturation import run_saturation, stitch_telemetry
from repro.obs.events import SHED_POLICY_EVENT_CODES
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


def test_saturation(
    runner, record_result, record_json, bench_report, benchmark
):
    result = run_saturation(runner)
    record_result("saturation", result.render())
    record_json("saturation", result.to_dict())

    # With REPRO_TELEMETRY=1 the rungs carry live-telemetry snapshots;
    # stitch them onto one time axis and check the telemetry tells the
    # same graceful-saturation story as the table.
    telemetry = stitch_telemetry(result)
    if telemetry is not None:
        series_doc, events_doc = telemetry
        record_json("timeseries-saturation", series_doc)
        record_json("events-saturation", events_doc)
        # The per-rung mean shed rate rises monotonically with load.
        rung_shed = [rung["shed_fraction"] for rung in series_doc["rungs"]]
        assert all(a <= b for a, b in zip(rung_shed, rung_shed[1:]))
        codes = {event["code"] for event in events_doc["events"]}
        # The overload breaker opened somewhere on the ladder (EV01,
        # payload breaker=admission-overload) and the shed policy
        # activated with it (EV04).
        assert "EV01" in codes
        assert codes & set(SHED_POLICY_EVENT_CODES.values())

    top = result.points[-1]
    report = bench_report("saturation")
    report.metric(
        "peak_throughput_qps",
        result.peak_throughput_qps,
        unit="qps",
        polarity="higher",
    )
    report.metric(
        "plateau_fraction",
        result.plateau_fraction,
        unit="fraction",
        polarity="higher",
    )
    report.metric(
        "top_rung_p95_admitted_ms",
        top.p95_admitted_ms,
        unit="sim_ms",
        polarity="lower",
    )
    report.finish()

    # The ladder actually reaches saturation scale outside smoke runs.
    if runner.scale.name != "quick":
        assert top.n_clients >= 10_000
    # Graceful saturation, not congestion collapse.
    assert result.plateau_fraction >= 0.8
    # Admitted queries finish inside the queue deadline at every rung.
    for point in result.points:
        assert point.p95_admitted_ms <= result.deadline_ms
    # Excess load is turned away, increasingly so as load climbs.
    sheds = [point.shed_fraction for point in result.points]
    assert all(a <= b for a, b in zip(sheds, sheds[1:]))
    assert sheds[-1] > 0.5
    # Never-raises accounting: one structured record per submission.
    for point in result.points:
        assert point.records == point.submitted
        assert (
            point.served + point.shed + point.timed_out + point.failed
            == point.records
        )

    # Benchmark: the overload fast path — a serve turned away at
    # admission with the slot and queue both occupied.
    proxy = runner.build_proxy(
        CachingScheme.FULL_SEMANTIC,
        "array",
        None,
        admission=AdmissionController(
            AdmissionConfig(max_inflight=1, max_queue_depth=1)
        ),
    )
    # Occupy the slot and the queue position and never release them.
    while proxy.admission.try_admit("default", proxy.clock.now_ms).admitted:
        pass
    bound = runner.origin.templates.bind(
        RADIAL_TEMPLATE_ID, runner.trace[0].param_dict()
    )

    def serve_shed():
        response = proxy.serve(bound)
        assert response.record.outcome is QueryOutcome.SHED
        return response

    benchmark(serve_shed)
