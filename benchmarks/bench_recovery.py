"""Crash recovery: warm vs cold restart after a mid-trace crash.

Not a paper table — the paper's proxy loses its cache with the
process.  This experiment replays half the trace with the persistence
journal on, kills the proxy with seeded torn-write damage to the
journal tail, then replays the remainder twice: once on a warm restart
(snapshot + journal recovery) and once cold.

Shape assertions: recovery is crash-consistent (it stops at the tear
and restores the intact prefix, never raising) and worth having — the
warm restart's post-crash hit ratio strictly beats the cold one for
the full semantic scheme.  The no-cache scheme is the control: no
journal, no recovery, identical hit ratios.

The benchmark kernel is the journal append — the per-mutation price a
proxy pays for durability on the admission path.
"""

from conftest import RESULTS_DIR

from repro.core.schemes import CachingScheme
from repro.harness.recovery import run_recovery
from repro.persistence import CachePersister
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


def test_recovery(
    runner, record_result, record_json, bench_report, benchmark, tmp_path
):
    # Keep each scheme's persistence directory (recovered snapshot +
    # truncated journal) under the results tree for CI to upload.
    result = run_recovery(
        runner, state_dir=RESULTS_DIR / "recovery_state"
    )
    record_result("recovery", result.render())
    record_json("recovery", result.to_dict())

    ac_row = result.schemes["ac-full"]
    report = bench_report("recovery")
    report.metric(
        "warm_hit_ratio",
        ac_row.warm_hit_ratio,
        unit="fraction",
        polarity="higher",
    )
    report.metric(
        "cold_hit_ratio",
        ac_row.cold_hit_ratio,
        unit="fraction",
        polarity="higher",
    )
    report.finish()

    # The durability headline: after the same crash, the recovered
    # cache answers strictly more of the remaining trace than an empty
    # one.
    ac = result.schemes["ac-full"]
    assert ac.warm_hit_ratio > ac.cold_hit_ratio
    # Crash consistency: the torn tail stopped replay cleanly and the
    # restored prefix is nearly the whole pre-crash cache (at most the
    # torn final record is lost).
    for label in ("pc", "ac-full"):
        row = result.schemes[label]
        assert row.stop_reason == "torn"
        assert row.entries_at_crash - 1 <= row.entries_restored
        assert row.entries_restored <= row.entries_at_crash
    # The control: no cache, no journal, nothing to recover.
    nc = result.schemes["nc"]
    assert nc.journal_records == 0
    assert nc.warm_hit_ratio == nc.cold_hit_ratio

    # Benchmark: one journaled admission — the durability overhead on
    # the cache's write path.
    persister = CachePersister(tmp_path, snapshot_every=10_000_000)
    proxy = runner.build_proxy(
        CachingScheme.FULL_SEMANTIC, "array", None, persistence=persister
    )
    bound = runner.origin.templates.bind(
        RADIAL_TEMPLATE_ID, runner.trace[0].param_dict()
    )
    proxy.serve(bound)
    entry = next(iter(proxy.cache.entries()))

    benchmark(lambda: persister.admitted(entry))
