"""Figure 5: average response time of NC / PC / ACR / ACNR by cache size.

Paper shape: NC just over 2 s and flat; PC about 1.4 s (~30% better);
active caching about 1.2 s; the R-tree description never beats the
array; response time barely improves as the cache grows.

The benchmark kernel is one no-cache round trip — the baseline cost
every other series is measured against.
"""

from repro.core.schemes import CachingScheme
from repro.harness.fig5 import run_fig5
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


def test_fig5(runner, record_result, bench_report, benchmark):
    result = run_fig5(runner)
    record_result("fig5_response_time", result.render())

    series = result.response_ms
    fractions = sorted(series["NC"])

    # Headline metrics: average response time per configuration at the
    # full cache size — the gated Figure 5 numbers (all simulated, so
    # deterministic run to run).
    report = bench_report("fig5")
    full = fractions[-1]
    for label in ("NC", "PC", "ACNR", "ACR"):
        report.metric(
            f"{label.lower()}_response_ms",
            series[label][full],
            unit="ms",
        )
    report.metric(
        "pc_over_nc",
        series["PC"][full] / series["NC"][full],
        unit="ratio",
    )
    report.finish()

    for fraction in fractions:
        nc = series["NC"][fraction]
        pc = series["PC"][fraction]
        acnr = series["ACNR"][fraction]
        acr = series["ACR"][fraction]
        # Ordering at every cache size: NC slowest, then PC, then AC.
        assert nc > pc > acnr, (fraction, nc, pc, acnr)
        assert nc > acr
        # PC improves on NC by a substantial margin (paper: ~30%).
        assert 0.55 <= pc / nc <= 0.90
        # The R-tree never meaningfully beats the array (paper's
        # finding); allow it a 2% win for noise.
        assert acr >= acnr * 0.98
    # NC is flat in cache size by construction.
    nc_values = [series["NC"][f] for f in fractions]
    assert max(nc_values) - min(nc_values) < 1e-6

    # Benchmark: a single tunneled (no-cache) query round trip.
    proxy = runner.build_proxy(CachingScheme.NO_CACHE, "array", None)
    params = runner.trace[0].param_dict()
    bound = runner.origin.templates.bind(RADIAL_TEMPLATE_ID, params)

    benchmark(proxy.serve, bound)
