"""Section 4.1 trace profile (the workload statistics paragraph).

Paper: 11,323 Radial-form queries; with an unlimited cache ~51% fully
answerable (17% exact + 34% containment) and ~9% overlapping.

The benchmark kernel is the trace analyzer itself — the same region
reasoning the proxy runs per query, over the whole trace.
"""

from repro.harness.trace_stats import run_trace_stats
from repro.workload.analyzer import analyze_trace


def test_trace_profile(
    runner, record_result, record_json, bench_report, benchmark
):
    result = run_trace_stats(runner)
    record_result("trace_stats", result.render())
    # Machine-readable twin of the table, via the metrics registry,
    # so future PRs can diff the trace profile numerically.
    record_json("trace_stats", result.snapshot())

    profile = result.profile

    # Workload composition, not proxy performance: recorded for the
    # trajectory but never gated (neither direction is "better").
    report = bench_report("trace_stats")
    report.metric(
        "fully_answerable",
        profile.fully_answerable,
        unit="fraction",
        polarity="higher",
        gated=False,
    )
    report.metric(
        "overlap_fraction",
        profile.overlap,
        unit="fraction",
        polarity="higher",
        gated=False,
    )
    report.finish()
    assert 0.40 <= profile.fully_answerable <= 0.65
    assert 0.04 <= profile.overlap <= 0.15

    sample = runner.trace.head(min(len(runner.trace), 500))
    benchmark(analyze_trace, sample, runner.origin.templates)
