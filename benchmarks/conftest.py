"""Benchmark suite fixtures.

Each ``bench_*`` file regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  The reproduction tables are
printed and also written to ``benchmarks/results/<name>.txt`` so a
``--benchmark-only`` run leaves the full comparison on disk;
EXPERIMENTS.md records a reference run.

Scale selection: set ``REPRO_SCALE`` to ``quick`` / ``default`` /
``paper`` (default: ``default``).  All scales share the calibrated cost
models; ``paper`` replays the full 11,323-query trace and takes tens of
minutes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.harness.config import ExperimentScale
from repro.harness.runner import ExperimentRunner
from repro.persistence.atomic import atomic_write_text

RESULTS_DIR = Path(__file__).parent / "results"


def _select_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_SCALE", "default")
    factory = {
        "quick": ExperimentScale.quick,
        "default": ExperimentScale.default,
        "paper": ExperimentScale.paper,
    }.get(name)
    if factory is None:
        raise ValueError(
            f"REPRO_SCALE={name!r}; expected quick, default, or paper"
        )
    return factory()


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return _select_scale()


@pytest.fixture(scope="session")
def runner(scale) -> ExperimentRunner:
    # Per-run metrics snapshots land next to the reproduction tables.
    RESULTS_DIR.mkdir(exist_ok=True)
    return ExperimentRunner(scale, snapshot_dir=RESULTS_DIR)


@pytest.fixture(scope="session")
def record_result():
    """Print a reproduction table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print()
        print(text)
        atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")

    return write


@pytest.fixture(scope="session")
def record_json():
    """Persist a machine-readable snapshot under results/<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, payload: dict) -> None:
        atomic_write_text(
            RESULTS_DIR / f"{name}.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )

    return write
