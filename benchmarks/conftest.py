"""Benchmark suite fixtures.

Each ``bench_*`` file regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  The reproduction tables are
printed and also written to ``benchmarks/results/<name>.txt`` so a
``--benchmark-only`` run leaves the full comparison on disk;
EXPERIMENTS.md records a reference run.

Headline numbers additionally flow through the shared
:class:`~repro.perf.reporter.BenchReporter` (the ``bench_report``
fixture): every bench writes a schema-valid
``results/<bench_id>.bench.json`` and appends to the repo-root
``BENCH_<bench_id>.json`` trajectory, which is what the CI perf job
gates against ``results/baselines/`` with ``python -m repro.perf
compare``.

Scale selection: set ``REPRO_SCALE`` to ``quick`` / ``default`` /
``paper`` (default: ``default``).  All scales share the calibrated cost
models; ``paper`` replays the full 11,323-query trace and takes tens of
minutes.  Set ``REPRO_PROFILE=1`` to run every harness replay with the
hot-path profiler on; each run then writes a ``profile-<label>.json``
artifact next to the reproduction tables.  Set ``REPRO_TELEMETRY=1``
to turn on the live telemetry recorders; each harness replay then
writes ``timeseries-<label>.json`` and ``events-<label>.json``
artifacts too.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import replace
from pathlib import Path

import pytest

from repro.harness.config import ExperimentScale
from repro.harness.runner import ExperimentRunner
from repro.network.clock import SimulatedClock
from repro.perf.reporter import BenchReporter
from repro.persistence.atomic import atomic_write_text

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent


def _select_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_SCALE", "default")
    factory = {
        "quick": ExperimentScale.quick,
        "default": ExperimentScale.default,
        "paper": ExperimentScale.paper,
    }.get(name)
    if factory is None:
        raise ValueError(
            f"REPRO_SCALE={name!r}; expected quick, default, or paper"
        )
    scale = factory()
    if os.environ.get("REPRO_PROFILE") in ("1", "true"):
        scale = scale.with_observability(
            replace(scale.obs, profiling=True)
        )
    if os.environ.get("REPRO_TELEMETRY") in ("1", "true"):
        scale = scale.with_observability(
            replace(scale.obs, timeseries=True, events=True)
        )
    return scale


@pytest.fixture(autouse=True)
def deterministic_run():
    """Pin every per-bench source of run-to-run drift.

    Seeds the stdlib and numpy global RNGs (third-party code may draw
    from them; all first-party randomness is already seeded locally)
    and asserts the simulated clock's pinned start, so repeated runs
    are comparable and the regression gate's noise bounds reflect
    machine noise only — not workload drift.
    """
    random.seed(0)
    try:
        import numpy
    except ImportError:
        pass
    else:
        numpy.random.seed(0)
    assert SimulatedClock().now_ms == 0, (
        "simulated clock must start at t=0 for comparable bench runs"
    )
    yield


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    return _select_scale()


@pytest.fixture(scope="session")
def runner(scale) -> ExperimentRunner:
    # Per-run metrics snapshots land next to the reproduction tables.
    RESULTS_DIR.mkdir(exist_ok=True)
    return ExperimentRunner(scale, snapshot_dir=RESULTS_DIR)


@pytest.fixture(scope="session")
def bench_report(scale):
    """Factory for the one sanctioned result emitter (FP308).

    ``bench_report("fig5")`` returns a
    :class:`~repro.perf.reporter.BenchReporter` wired to this run's
    scale, the shared results directory, and the repo-root trajectory
    store; the bench records metrics and calls ``finish()``.
    """

    def make(bench_id: str) -> BenchReporter:
        RESULTS_DIR.mkdir(exist_ok=True)
        return BenchReporter(
            bench_id,
            scale=scale.name,
            results_dir=RESULTS_DIR,
            trajectory_dir=REPO_ROOT,
        )

    return make


@pytest.fixture(scope="session")
def record_result():
    """Print a reproduction table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print()
        print(text)
        atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")

    return write


@pytest.fixture(scope="session")
def record_json():
    """Persist a machine-readable snapshot under results/<name>.json."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, payload: dict) -> None:
        atomic_write_text(
            RESULTS_DIR / f"{name}.json",
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )

    return write
