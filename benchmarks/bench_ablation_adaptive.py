"""Ablation: adaptive overlap handling vs the static schemes.

The paper decides "cache-intersecting queries may not be worth
handling" by measuring both static configurations offline.  The
:class:`~repro.extensions.adaptive.AdaptiveProxy` extension makes the
same decision online.  On the calibrated testbed (where remainders are
costly, as the paper found), the adaptive proxy should converge toward
the containment-only behaviour and land between the full scheme and
the Third scheme on response time — without anyone configuring it.

The benchmark kernel is the adaptive decision itself (estimator update
plus gate), which must be negligible next to query processing.
"""

import pytest

from repro.core.schemes import CachingScheme
from repro.extensions.adaptive import AdaptiveProxy
from repro.harness.render import render_table
from repro.workload.rbe import BrowserEmulator


@pytest.fixture(scope="module")
def comparison(runner, record_result, bench_report):
    rows = []
    measured = {}

    static_full = runner.run(
        CachingScheme.FULL_SEMANTIC, "array", cache_fraction=None
    )
    static_third = runner.run(
        CachingScheme.CONTAINMENT_ONLY, "array", cache_fraction=None
    )

    adaptive = AdaptiveProxy(
        origin=runner.origin,
        templates=runner.origin.templates,
        costs=runner.scale.proxy_costs,
        topology=runner.scale.topology,
    )
    adaptive_stats = BrowserEmulator(adaptive).run(
        runner.trace, limit=runner.scale.measure_queries
    )

    for label, stats in (
        ("full semantic (static)", static_full.stats),
        ("adaptive", adaptive_stats),
        ("containment only (static)", static_third.stats),
    ):
        measured[label] = stats
        rows.append(
            [
                label,
                stats.average_response_ms,
                stats.average_cache_efficiency,
            ]
        )
    text = render_table(
        "Ablation: adaptive overlap handling (learns the paper's "
        "conclusion online)",
        ["configuration", "avg response ms", "efficiency"],
        rows,
    )
    record_result("ablation_adaptive", text)

    report = bench_report("ablation_adaptive")
    for key, label in (
        ("full_static", "full semantic (static)"),
        ("adaptive", "adaptive"),
        ("containment_static", "containment only (static)"),
    ):
        report.metric(
            f"{key}_response_ms",
            measured[label].average_response_ms,
            unit="ms",
        )
    report.metric(
        "adaptive_efficiency",
        measured["adaptive"].average_cache_efficiency,
        unit="fraction",
        polarity="higher",
    )
    report.finish()

    measured["_decisions"] = adaptive.adaptive
    return measured


def test_adaptive_lands_between_static_extremes(comparison):
    full = comparison["full semantic (static)"].average_response_ms
    third = comparison["containment only (static)"].average_response_ms
    adaptive = comparison["adaptive"].average_response_ms
    # On the calibrated testbed remainders are costly: adaptive must
    # beat always-handling, and sit between the extremes (it pays for
    # warm-up exploration and periodic re-exploration, so it does not
    # fully reach the never-handling floor).
    assert adaptive < full
    assert third <= adaptive <= third * 1.10


def test_adaptive_learned_to_decline(comparison):
    state = comparison["_decisions"]
    assert not state.remainder_pays_off
    assert state.overlaps_declined > 0


def test_decision_overhead(runner, benchmark, comparison):
    proxy = AdaptiveProxy(
        origin=runner.origin,
        templates=runner.origin.templates,
        costs=runner.scale.proxy_costs,
        topology=runner.scale.topology,
    )
    # Seed the estimator so the gate exercises the comparison branch.
    proxy.adaptive.forward_cost.add(2000.0)
    proxy.adaptive.overlap_cost.add(2400.0)
    proxy.adaptive.overlaps_handled = proxy.explore_overlaps

    benchmark(proxy._attempt_overlap, None, [], [object()])
