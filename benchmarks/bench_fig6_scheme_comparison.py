"""Figure 6: the three active caching schemes (unlimited cache, array).

Paper::

    First  (full semantic)                 1236 ms   efficiency 0.593
    Second (containment + region cont.)    1044 ms   efficiency 0.544
    Third  (pure containment)              1081 ms   efficiency 0.511

Shape assertions: the full scheme has the *best* efficiency and the
*worst* response time — the paper's headline that cache-intersecting
queries may not be worth handling.  The Second/Third gap (37 ms in the
paper) is within noise; we assert they are close rather than ordered
(see EXPERIMENTS.md for the discussion).

The benchmark kernel is the overlap path itself: probe + remainder +
merge for a cache-intersecting query against a warmed cache.
"""

from repro.core.schemes import CachingScheme
from repro.harness.fig6 import run_fig6
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


def test_fig6(runner, record_result, bench_report, benchmark):
    result = run_fig6(runner)
    record_result("fig6_scheme_comparison", result.render())

    response = result.response_ms
    efficiency = result.efficiency

    report = bench_report("fig6")
    for label in ("First", "Second", "Third"):
        report.metric(
            f"{label.lower()}_response_ms", response[label], unit="ms"
        )
        report.metric(
            f"{label.lower()}_efficiency",
            efficiency[label],
            unit="fraction",
            polarity="higher",
        )
    report.finish()

    # Efficiency order matches the paper exactly.
    assert efficiency["First"] >= efficiency["Second"] >= (
        efficiency["Third"]
    )
    # Response time: full semantic caching is the slowest scheme.
    assert response["First"] > response["Second"]
    assert response["First"] > response["Third"]
    # Second and Third are close (paper gap: 3.4%); tolerate 8%.
    gap = abs(response["Second"] - response["Third"])
    assert gap / response["Third"] < 0.08

    # Benchmark: one overlap query (probe + remainder + merge).
    proxy = runner.build_proxy(CachingScheme.FULL_SEMANTIC, "array", None)
    base = dict(runner.trace[0].param_dict())
    warm = runner.origin.templates.bind(RADIAL_TEMPLATE_ID, base)
    proxy.serve(warm)
    shifted = dict(base, ra=base["ra"] + base["radius"] / 90.0)
    overlap = runner.origin.templates.bind(RADIAL_TEMPLATE_ID, shifted)

    def serve_overlap():
        # Remove any entry the previous iteration cached so each round
        # exercises the overlap path, not an exact hit.
        cached = proxy.cache.exact_match(overlap)
        if cached is not None:
            proxy.cache.remove(cached)
        return proxy.serve(overlap)

    benchmark(serve_overlap)
