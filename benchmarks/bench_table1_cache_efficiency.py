"""Table 1: average cache efficiency of AC and PC across cache sizes.

Paper::

    Cache Size   1/6    1/3    1/2    1
    AC           0.531  0.565  0.582  0.593
    PC           0.290  0.305  0.311  0.313

Shape assertions: AC roughly doubles PC at every size; both grow with
cache size; AC gains more from the growth than PC.

The benchmark kernel replays a slice of the trace through a warmed
full-semantic proxy — the steady-state cost of active caching.
"""

from repro.core.schemes import CachingScheme
from repro.harness.table1 import run_table1
from repro.workload.rbe import BrowserEmulator


def test_table1(runner, record_result, bench_report, benchmark):
    result = run_table1(runner)
    record_result("table1_cache_efficiency", result.render())

    fractions = sorted(result.ac)

    report = bench_report("table1")
    for tag, fraction in (
        ("smallest", fractions[0]),
        ("full", fractions[-1]),
    ):
        report.metric(
            f"ac_efficiency_{tag}",
            result.ac[fraction],
            unit="fraction",
            polarity="higher",
        )
        report.metric(
            f"pc_efficiency_{tag}",
            result.pc[fraction],
            unit="fraction",
            polarity="higher",
        )
    report.finish()
    for fraction in fractions:
        ratio = result.ac[fraction] / result.pc[fraction]
        assert 1.3 <= ratio <= 3.0, (
            f"AC/PC efficiency ratio {ratio:.2f} at {fraction} is out of "
            "the paper's shape (about 2x)"
        )
    assert result.ac[fractions[-1]] >= result.ac[fractions[0]]
    assert result.pc[fractions[-1]] >= result.pc[fractions[0]]
    ac_gain = result.ac[fractions[-1]] - result.ac[fractions[0]]
    pc_gain = result.pc[fractions[-1]] - result.pc[fractions[0]]
    assert ac_gain >= pc_gain, (
        "the paper finds cache growth helps AC more than PC"
    )

    # Benchmark: steady-state active-cache replay.
    proxy = runner.build_proxy(CachingScheme.FULL_SEMANTIC, "array", None)
    emulator = BrowserEmulator(proxy)
    warmup = min(len(runner.trace), 400)
    emulator.run(runner.trace, limit=warmup)
    sample = runner.trace[warmup // 2: warmup]

    benchmark(emulator.run, sample)
