"""Ablation: where the array/R-tree crossover would fall.

The paper finds the R-tree useless because "the size of the cache
description is small so that a linear search and a tree search have
similar main memory performance".  That is a statement about *scale*:
with a few hundred cached queries a linear scan is fine.  This ablation
sweeps the description size by an order of magnitude beyond the paper's
regime and measures real probe time for both structures, locating the
crossover the paper predicts but never reaches.

Synthetic entries are used (regions on a grid), so the sweep isolates
the description structures from trace replay.
"""

import pytest

from repro.core.cache import CacheEntry
from repro.core.description import ArrayDescription, RTreeDescription
from repro.core.store import MemoryResultStore
from repro.geometry.regions import HyperSphere
from repro.harness.render import render_table

SIZES = (100, 1_000, 10_000)


def synthetic_entries(count: int):
    """Entries with sphere regions scattered on a plane grid."""
    store = MemoryResultStore()
    entries = []
    side = int(count**0.5) + 1
    for i in range(count):
        x, y = (i % side) * 0.1, (i // side) * 0.1
        entries.append(
            CacheEntry(
                entry_id=i + 1,
                template_id="synthetic",
                cache_key=("synthetic", i),
                region=HyperSphere((x, y, 0.0), 0.03),
                signature="",
                truncated=False,
                byte_size=100,
                row_count=10,
                store=store,
            )
        )
    return entries


def build(description, entries):
    for entry in entries:
        description.add(entry)
    return description


#: Timing samples per (structure, size); the per-sample repetition
#: count amortizes timer overhead, the samples give the regression
#: gate an honest IQR.
SAMPLES = 5
REPETITIONS = 50


def probe_samples(description, probe):
    """Median-friendly repeat measurements of one probe, in µs."""
    from repro.obs.wallclock import Stopwatch

    samples = []
    watch = Stopwatch()
    for _ in range(SAMPLES):
        watch.restart()
        for _ in range(REPETITIONS):
            description.candidates("synthetic", probe)
        samples.append(watch.elapsed_s / REPETITIONS * 1e6)
    return samples


@pytest.fixture(scope="module")
def crossover_table(record_result, bench_report):
    from repro.perf.schema import median

    rows = []
    report = bench_report("ablation_scalability")
    ratio_samples = None
    for count in SIZES:
        entries = synthetic_entries(count)
        probe = entries[count // 2].region
        timings = {}
        for label, description in (
            ("array", build(ArrayDescription(), entries)),
            ("rtree", build(RTreeDescription(), entries)),
        ):
            samples = probe_samples(description, probe)
            timings[label] = samples
            # Raw probe time is machine-bound: trajectory-only.
            report.metric(
                f"{label}_probe_us_{count}",
                samples,
                unit="us",
                gated=False,
            )
        array_us = median(tuple(timings["array"]))
        rtree_us = median(tuple(timings["rtree"]))
        rows.append([count, array_us, rtree_us, array_us / rtree_us])
        if count == SIZES[-1]:
            ratio_samples = [
                a / r
                for a, r in zip(timings["array"], timings["rtree"])
            ]
    # The gated claim is relative — at 10k entries the linear scan
    # pays a multiple of the R-tree probe — so it survives machine
    # speed differences that sink absolute wall-clock gates.
    report.metric(
        f"array_over_rtree_{SIZES[-1]}",
        ratio_samples,
        unit="ratio",
        polarity="higher",
    )
    report.finish()
    text = render_table(
        "Ablation: real probe time vs description size (the paper's "
        "regime is the first row; the R-tree pays off only beyond it)",
        ["entries", "array probe us", "rtree probe us", "array/rtree"],
        rows,
    )
    record_result("ablation_scalability", text)
    return {row[0]: (row[1], row[2]) for row in rows}


def test_crossover_exists(crossover_table):
    # In the paper's regime (hundreds of entries) the structures are
    # comparable; at 10k entries the R-tree must win clearly.
    array_large, rtree_large = crossover_table[SIZES[-1]]
    assert rtree_large < array_large, (
        "R-tree should beat linear scan at 10k entries"
    )


@pytest.mark.parametrize("kind", ["array", "rtree"])
@pytest.mark.parametrize("count", SIZES)
def test_probe_scaling(kind, count, benchmark, crossover_table):
    entries = synthetic_entries(count)
    description = build(
        ArrayDescription() if kind == "array" else RTreeDescription(),
        entries,
    )
    probe = entries[count // 2].region

    benchmark(description.candidates, "synthetic", probe)
