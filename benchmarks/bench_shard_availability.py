"""Shard availability: a mid-trace crash with and without failover.

Not a paper table — the paper's proxy is one process.  This bench runs
the sharded-tier availability experiment
(:mod:`repro.harness.shard_availability`): for each shard count on the
ladder, identical seeded closed-loop load runs three ways — no fault
(baseline), the busiest shard crashing mid-trace with health-aware
failover plus warm handoff (failover), and the same crash with both
disabled (control).  The acceptance shape at four shards:

* failover keeps the answered fraction >= 0.90 — rerouting and the
  origin tunnel absorb the dead shard's traffic;
* the post-handoff aggregate hit ratio stays >= 0.8x the no-crash
  run's — the successor actually inherits the dead shard's cache;
* the no-failover control visibly collapses: every query owned by the
  dead shard sheds with the structured ``shard-down`` reason.

The benchmark kernel is the routing hot path: one ``route`` call
through the consistent-hash ring with the fault session live — what
the router does once per query before any shard work happens.
"""

from repro.cluster import RouterConfig, Shard, ShardRouter
from repro.core.schemes import CachingScheme
from repro.faults.shard import ShardCrashPlan, ShardFaultWindow
from repro.harness.shard_availability import (
    REGION_CELL,
    RADIAL_TEMPLATE_ID,
    run_shard_availability,
)


def test_shard_availability(
    runner, record_result, record_json, bench_report, benchmark
):
    result = run_shard_availability(runner)
    record_result("shard_availability", result.render())
    record_json("shard_availability", result.to_dict())

    baseline = result.point(4, "baseline")
    failover = result.point(4, "failover")
    control = result.point(4, "control")

    report = bench_report("shard_availability")
    report.metric(
        "failover_answered_fraction",
        failover.answered_fraction,
        unit="fraction",
        polarity="higher",
    )
    report.metric(
        "failover_post_hit_ratio",
        failover.post_hit_ratio,
        unit="fraction",
        polarity="higher",
    )
    report.metric(
        "control_answered_fraction",
        control.answered_fraction,
        unit="fraction",
        polarity="lower",
    )
    report.metric(
        "handoff_entries",
        float(failover.handoff_entries),
        unit="entries",
        polarity="higher",
    )
    report.finish()

    # Every submission produced exactly one record in every cell, and
    # the fault-free baselines answered everything.
    expected = result.n_clients * result.queries_per_client
    for point in result.points:
        assert point.records == expected
        if point.scenario == "baseline":
            assert point.answered_fraction >= 1.0
            assert point.shed == 0
            assert point.failovers == 0
            assert point.handoff_entries == 0

    # Failover keeps the tier answering through the crash...
    assert failover.answered_fraction >= 0.90
    # ...and the warm handoff preserves the cache: the post-crash hit
    # ratio stays within 80% of the undisturbed run's.
    assert baseline.post_hit_ratio > 0.0
    assert failover.post_hit_ratio >= 0.8 * baseline.post_hit_ratio
    # The handoff actually moved the dead shard's durable image.
    assert failover.handoff_entries > 0
    assert failover.handoff_replayed == failover.handoff_entries
    assert failover.failovers > 0
    # The control collapses: visibly worse availability, real sheds.
    assert control.answered_fraction < 0.80
    assert control.answered_fraction < failover.answered_fraction - 0.10
    assert control.shed > 0
    # Single-shard sanity: with the only shard dead, failover degrades
    # every remaining query to the origin tunnel rather than shedding.
    one_failover = result.point(1, "failover")
    assert one_failover.answered_fraction >= 1.0
    assert one_failover.tunneled > 0

    # Benchmark: the routing hot path — one route() walk with the
    # fault session live and the crash window open.
    shards = tuple(
        Shard(
            f"shard-{index}",
            runner.build_proxy(CachingScheme.NO_CACHE, "array"),
        )
        for index in range(4)
    )
    router = ShardRouter(
        shards,
        config=RouterConfig(
            region_partitions={RADIAL_TEMPLATE_ID: REGION_CELL}
        ),
        crash_plan=ShardCrashPlan(
            seed=result.seed,
            faults=(ShardFaultWindow("shard-0", "crash", 0.0),),
        ),
    )
    bound = runner.origin.templates.bind(
        RADIAL_TEMPLATE_ID, runner.trace[0].param_dict()
    )

    def route_once():
        return router.route(bound, router.clock.now_ms)

    benchmark(route_once)
