"""Ablation: replacement policies under a tight cache budget.

DESIGN.md assumes LRU where the paper is silent.  This ablation tests
the assumption: the trace is replayed under the full-semantic scheme at
the 1/6 cache size (where replacement pressure is highest) with five
policies.  The recency-driven workload (hot regions revisited and
zoomed) should favour recency-aware policies — LRU and GreedyDual-Size
— over FIFO; if LRU lost badly here, the Table 1 reproduction would be
built on sand.

The benchmark kernel is victim selection over a populated cache.
"""

import pytest

from repro.core.replacement import ALL_POLICIES, LruPolicy
from repro.core.schemes import CachingScheme
from repro.harness.render import render_table
from repro.workload.rbe import BrowserEmulator


@pytest.fixture(scope="module")
def policy_comparison(runner, record_result, bench_report):
    budget = runner.cache_bytes_for(1 / 6)
    rows = []
    measured = {}
    for policy_cls in ALL_POLICIES:
        proxy = runner.build_proxy(
            CachingScheme.FULL_SEMANTIC, "array", None
        )
        # Rebuild with the policy under test (build_proxy fixes LRU).
        from repro.core.proxy import FunctionProxy

        proxy = FunctionProxy(
            origin=runner.origin,
            templates=runner.origin.templates,
            scheme=CachingScheme.FULL_SEMANTIC,
            cache_bytes=budget,
            costs=runner.scale.proxy_costs,
            topology=runner.scale.topology,
            replacement_policy=policy_cls(),
        )
        stats = BrowserEmulator(proxy).run(
            runner.trace, limit=runner.scale.measure_queries
        )
        measured[policy_cls.name] = {
            "efficiency": stats.average_cache_efficiency,
            "response": stats.average_response_ms,
            "evictions": proxy.cache.evictions,
        }
        rows.append(
            [
                policy_cls.name,
                stats.average_cache_efficiency,
                stats.average_response_ms,
                proxy.cache.evictions,
            ]
        )
    rows.sort(key=lambda row: -row[1])
    text = render_table(
        "Ablation: replacement policy at the 1/6 cache size "
        "(full semantic caching)",
        ["policy", "efficiency", "avg response ms", "evictions"],
        rows,
    )
    record_result("ablation_replacement", text)

    report = bench_report("ablation_replacement")
    for policy in ("lru", "fifo", "gds"):
        report.metric(
            f"{policy}_efficiency",
            measured[policy]["efficiency"],
            unit="fraction",
            polarity="higher",
        )
    report.metric(
        "lru_response_ms", measured["lru"]["response"], unit="ms"
    )
    report.finish()
    return measured


def test_recency_aware_policies_beat_fifo(policy_comparison):
    fifo = policy_comparison["fifo"]["efficiency"]
    assert policy_comparison["lru"]["efficiency"] >= fifo
    assert policy_comparison["gds"]["efficiency"] >= fifo * 0.98


def test_lru_assumption_is_reasonable(policy_comparison):
    """LRU stays within ~12% of the best policy measured.

    Size-aware policies (GDS, largest-first) beat plain LRU under a
    byte budget, but not by enough to change any Table 1 / Figure 5
    conclusion; the assertion guards against LRU becoming
    pathologically bad (which would mean the reproduction's default
    misrepresents the paper's cache).
    """
    best = max(p["efficiency"] for p in policy_comparison.values())
    assert policy_comparison["lru"]["efficiency"] >= best * 0.88


def test_victim_selection_speed(runner, benchmark, policy_comparison):
    proxy = runner.build_proxy(CachingScheme.FULL_SEMANTIC, "array", None)
    BrowserEmulator(proxy).run(
        runner.trace, limit=min(len(runner.trace), 400)
    )
    policy = LruPolicy()
    entries = list(proxy.cache.entries())
    assert entries

    benchmark(policy.victim, entries)
