"""Ablation: array vs R-tree cache description (Section 4.2's claim).

Paper: "the cache checking time with or without the R-tree index is
always under 100 milliseconds" (real time), "the R-tree index ... does
not accelerate the active caching scheme and in some cases even slows
it down slightly", and "the maintenance of the R-tree index is more
costly than that of an array".

The benchmark kernel is a description probe against a populated cache,
for each implementation.
"""

import pytest

from repro.core.schemes import CachingScheme
from repro.harness.ablations import run_description_ablation


@pytest.fixture(scope="module")
def ablation(runner, record_result, bench_report):
    result = run_description_ablation(runner)
    record_result("ablation_description", result.render())

    report = bench_report("ablation_description")
    for kind in ("array", "rtree"):
        report.metric(
            f"{kind}_response_ms", result.response_ms[kind], unit="ms"
        )
        report.metric(
            f"{kind}_maintenance_sim_ms",
            result.mean_maintenance_sim_ms[kind],
            unit="ms",
        )
        # Real wall clock of the description check: machine-bound, so
        # trajectory-only (the paper's 100 ms claim is asserted below).
        report.metric(
            f"{kind}_max_check_wall_ms",
            result.max_check_wall_ms[kind],
            unit="ms",
            gated=False,
        )
    report.finish()
    return result


def test_description_claims(ablation, runner):
    # Checking is always fast in real time with the R-tree; the array's
    # linear scan honours the paper's 100 ms bound at the paper's own
    # description sizes but (consistently with the scalability
    # ablation) blows past it once the description reaches thousands
    # of entries — which happens at the full paper-scale trace, where
    # this Python implementation's per-entry cost exceeds the paper's
    # Java servlet's.  So the array bound is asserted only below that
    # regime.
    assert ablation.max_check_wall_ms["rtree"] < 100.0
    if runner.scale.name != "paper":
        assert ablation.max_check_wall_ms["array"] < 100.0
    # R-tree maintenance costs more than the array's (simulated charge).
    assert ablation.mean_maintenance_sim_ms["rtree"] > (
        ablation.mean_maintenance_sim_ms["array"]
    )
    # And the R-tree does not meaningfully improve response time.
    assert ablation.response_ms["rtree"] >= (
        ablation.response_ms["array"] * 0.98
    )


@pytest.mark.parametrize("kind", ["array", "rtree"])
def test_probe_speed(runner, kind, benchmark, ablation):
    proxy = runner.build_proxy(CachingScheme.FULL_SEMANTIC, kind, None)
    # Populate the cache with a prefix of the trace.
    from repro.workload.rbe import BrowserEmulator

    BrowserEmulator(proxy).run(
        runner.trace, limit=min(len(runner.trace), 300)
    )
    probe = runner.origin.templates.bind(
        runner.trace[0].template_id, runner.trace[0].param_dict()
    )

    benchmark(
        proxy.cache.description.candidates, probe.template_id, probe.region
    )
