"""Fault availability: what the cache answers while the origin is down.

Not a paper table — the paper assumes a reliable origin.  This
experiment puts every caching scheme through the same seeded fault
plan (one outage window over the middle of the trace plus a small
transient error rate) and reports the fraction of queries that still
got an answer: served fresh, served stale from cache (``degraded``),
or the cached portion of an overlap query (``partial``).

Shape assertions: full semantic caching strictly beats no caching on
answered fraction — the availability win the resilience layer buys —
and every replay completes without an uncaught exception (the
structured-outcome promise of ``FunctionProxy.serve``).

The benchmark kernel is the stale-serve fast path: an exact cache hit
answered (degraded) while the circuit breaker is open.
"""

from repro.core.schemes import CachingScheme
from repro.core.stats import QueryOutcome
from repro.faults.plan import FaultPlan, OutageWindow
from repro.faults.resilience import BreakerState
from repro.harness.fault_availability import run_fault_availability
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


def test_fault_availability(
    runner, record_result, record_json, bench_report, benchmark
):
    result = run_fault_availability(runner)
    record_result("fault_availability", result.render())
    record_json("fault_availability", result.to_dict())

    answered = result.answered_fraction
    report = bench_report("fault_availability")
    report.metric(
        "ac_full_answered_fraction",
        answered["ac-full"],
        unit="fraction",
        polarity="higher",
    )
    report.metric(
        "nc_answered_fraction",
        answered["nc"],
        unit="fraction",
        polarity="higher",
    )
    report.finish()
    # The availability headline: the semantic cache keeps answering
    # queries through the outage that a cacheless proxy cannot.
    assert answered["ac-full"] > answered["nc"]
    # Every scheme survived the fault plan: each query produced a
    # record (no uncaught exceptions), and the failures are structured.
    for row in result.schemes.values():
        assert sum(row.outcome_counts.values()) == len(
            runner.trace[: runner.scale.measure_queries]
        )
        assert row.breaker_opens >= 1

    # Benchmark: a degraded exact hit — the stale-serve fast path.
    proxy = runner.build_proxy(CachingScheme.FULL_SEMANTIC, "array", None)
    bound = runner.origin.templates.bind(
        RADIAL_TEMPLATE_ID, runner.trace[0].param_dict()
    )
    proxy.serve(bound)  # warm the entry
    # A permanent outage from t=0; drive the breaker open.
    proxy.install_fault_plan(
        FaultPlan(outages=(OutageWindow(0.0, 1e12),))
    )
    miss = runner.origin.templates.bind(
        RADIAL_TEMPLATE_ID,
        dict(runner.trace[0].param_dict(), ra=10.0, dec=10.0),
    )
    while proxy.breaker.state is not BreakerState.OPEN:
        proxy.serve(miss)

    def serve_stale():
        response = proxy.serve(bound)
        assert response.record.outcome is QueryOutcome.DEGRADED
        return response

    benchmark(serve_stale)
