"""Ablation: remainder queries vs whole-query forwarding on overlaps.

Section 3.2's tradeoff discussion: a remainder query saves network
bytes and improves cache utilization, but "it may not reduce the query
processing time at the web site since a remainder query is usually more
complicated than the original query".  On an overlap-heavy trace we
measure both policies and expect exactly that tension: remainder ships
fewer origin bytes and scores higher efficiency, yet does not win on
response time.

The benchmark kernel is remainder-query construction (the proxy-side
rewrite cost).
"""

import pytest

from repro.core.remainder import build_remainder
from repro.harness.ablations import run_remainder_ablation
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


@pytest.fixture(scope="module")
def ablation(scale, record_result, bench_report):
    result = run_remainder_ablation(scale)
    record_result("ablation_remainder", result.render())

    report = bench_report("ablation_remainder")
    for label in ("remainder", "forward-whole"):
        key = label.replace("-", "_")
        report.metric(
            f"{key}_response_ms", result.response_ms[label], unit="ms"
        )
        report.metric(
            f"{key}_origin_bytes", result.origin_bytes[label], unit="bytes"
        )
        report.metric(
            f"{key}_efficiency",
            result.efficiency[label],
            unit="fraction",
            polarity="higher",
        )
    report.finish()
    return result


def test_remainder_tradeoff(ablation):
    # Remainder queries ship fewer bytes from the origin...
    assert ablation.origin_bytes["remainder"] < (
        ablation.origin_bytes["forward-whole"]
    )
    # ...and serve more tuples from the cache...
    assert ablation.efficiency["remainder"] > (
        ablation.efficiency["forward-whole"]
    )
    # ...but do not reduce origin processing time (the paper's point).
    assert ablation.origin_ms["remainder"] >= (
        ablation.origin_ms["forward-whole"] * 0.95
    )


def test_remainder_build_speed(runner, benchmark, ablation):
    # Depending on the ablation fixture keeps the reproduction table
    # generated even under --benchmark-only (which skips the pure
    # assertion test above).
    templates = runner.origin.templates
    params = dict(runner.trace[0].param_dict())
    bound = templates.bind(RADIAL_TEMPLATE_ID, params)
    holes = [
        templates.bind(
            RADIAL_TEMPLATE_ID,
            dict(params, radius=params["radius"] * 0.4,
                 ra=params["ra"] + offset),
        ).region
        for offset in (0.0, 0.01, 0.02, 0.03)
    ]

    benchmark(build_remainder, bound, holes)
