"""Origin server behaviour."""

import pytest

from repro.relational.errors import RelationalError
from repro.server.costs import ServerCostModel
from repro.sqlparser.errors import ParseError
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


class TestExecution:
    def test_execute_bound_matches_sql_path(
        self, origin, templates, radial_params
    ):
        bound = templates.bind(RADIAL_TEMPLATE_ID, radial_params)
        via_bound = origin.execute_bound(bound).result
        via_sql = origin.execute_sql(bound.sql).result
        assert via_bound == via_sql

    def test_execute_form(self, origin):
        response = origin.execute_form(
            "Radial", {"ra": "164", "dec": "8", "radius": "10"}
        )
        assert len(response.result) > 0
        assert response.server_ms > 0

    def test_bad_sql_raises_parse_error(self, origin):
        with pytest.raises(ParseError):
            origin.execute_sql("SELEKT nothing")

    def test_unknown_table_raises_relational_error(self, origin):
        with pytest.raises(RelationalError):
            origin.execute_sql("SELECT a FROM NoSuchTable")

    def test_counters_track_remainders(self, origin, templates,
                                        radial_params):
        from repro.core.remainder import build_remainder

        bound = templates.bind(RADIAL_TEMPLATE_ID, radial_params)
        hole = templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, radius=3.0)
        ).region
        before = origin.remainders_served
        remainder = build_remainder(bound, [hole])
        origin.execute_remainder(remainder.statement, 1)
        assert origin.remainders_served == before + 1


class TestCostModel:
    def test_query_cost_scales_with_tuples(self):
        costs = ServerCostModel(base_ms=100.0, per_tuple_ms=2.0)
        assert costs.query_ms(0) == pytest.approx(100.0)
        assert costs.query_ms(50) == pytest.approx(200.0)

    def test_remainder_costs_more_than_plain(self):
        costs = ServerCostModel()
        assert costs.remainder_ms(10, 1) > costs.query_ms(10)

    def test_remainder_cost_grows_with_holes(self):
        costs = ServerCostModel()
        assert costs.remainder_ms(10, 5) > costs.remainder_ms(10, 1)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            ServerCostModel(base_ms=-1.0)

    def test_server_charges_remainder_price(
        self, templates, radial_params
    ):
        from repro.core.remainder import build_remainder
        from repro.server.origin import OriginServer
        from tests.conftest import SMALL_SKY

        costly = OriginServer.skyserver(
            SMALL_SKY,
            ServerCostModel(base_ms=10.0, per_tuple_ms=0.0,
                            remainder_surcharge_ms=500.0, per_hole_ms=0.0),
        )
        bound = costly.templates.bind(RADIAL_TEMPLATE_ID, radial_params)
        plain = costly.execute_bound(bound)
        hole = costly.templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, radius=3.0)
        ).region
        remainder = build_remainder(bound, [hole])
        priced = costly.execute_remainder(remainder.statement, 1)
        assert priced.server_ms == pytest.approx(plain.server_ms + 500.0)
