"""The saturation experiment: graceful degradation under offered load."""

import pytest

from repro.harness.config import ExperimentScale
from repro.harness.runner import ExperimentRunner
from repro.harness.saturation import (
    FULL_LADDER,
    QUICK_LADDER,
    ladder_for,
    run_saturation,
)


@pytest.fixture(scope="module")
def result():
    scale = ExperimentScale.quick().with_trace_length(60)
    return run_saturation(ExperimentRunner(scale), ladder=(4, 32, 200))


class TestSaturation:
    def test_ladder_selection(self):
        assert ladder_for(ExperimentScale.quick()) == QUICK_LADDER
        assert ladder_for(ExperimentScale.default()) == FULL_LADDER
        assert FULL_LADDER[-1] >= 10_000

    def test_throughput_plateaus(self, result):
        assert result.peak_throughput_qps > 0.0
        assert result.plateau_fraction >= 0.8

    def test_shed_fraction_rises_with_load(self, result):
        sheds = [point.shed_fraction for point in result.points]
        assert sheds == sorted(sheds)
        assert sheds[0] < sheds[-1]

    def test_admitted_latency_bounded_by_deadline(self, result):
        for point in result.points:
            assert 0.0 < point.p95_admitted_ms <= result.deadline_ms

    def test_never_raises_accounting(self, result):
        for point in result.points:
            assert point.records == point.submitted
            assert (
                point.served
                + point.shed
                + point.timed_out
                + point.failed
                == point.records
            )

    def test_determinism(self):
        scale = ExperimentScale.quick().with_trace_length(40)
        runner = ExperimentRunner(scale)
        ladder = (4, 48)

        def curve():
            return run_saturation(runner, ladder=ladder).to_dict()

        assert curve() == curve()

    def test_wire_form_and_rendering(self, result):
        payload = result.to_dict()
        assert len(payload["points"]) == 3
        assert payload["points"][0]["n_clients"] == 4
        assert payload["admission"]["config"]["max_inflight"] == 8
        text = result.render()
        assert "clients" in text
        assert "shed frac" in text
