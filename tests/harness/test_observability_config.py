"""Harness observability plumbing: config validation and run artifacts."""

import json

import pytest

from repro.core.schemes import CachingScheme
from repro.harness.config import ExperimentScale, ObservabilityConfig
from repro.harness.runner import ExperimentRunner


class TestObservabilityConfig:
    def test_defaults(self):
        obs = ObservabilityConfig()
        assert obs.tracing is False
        assert obs.trace_capacity == 256
        assert obs.explain_capacity == 256
        assert obs.id_seed is None

    @pytest.mark.parametrize("field", ["trace_capacity", "explain_capacity"])
    def test_capacities_validated(self, field):
        with pytest.raises(ValueError):
            ObservabilityConfig(**{field: 0})

    def test_with_observability(self):
        scale = ExperimentScale.quick()
        obs = ObservabilityConfig(tracing=True, id_seed=9)
        traced = scale.with_observability(obs)
        assert traced.obs is obs
        assert scale.obs.tracing is False  # the original is untouched


class TestRunnerInstrumentation:
    def test_default_scale_uses_null_tracer(self):
        runner = ExperimentRunner(
            ExperimentScale.quick().with_trace_length(5)
        )
        proxy = runner.build_proxy(CachingScheme.FULL_SEMANTIC)
        assert proxy.tracer.enabled is False
        assert proxy.obs.decisions.capacity == 256

    def test_tracing_scale_builds_real_tracer(self):
        scale = ExperimentScale.quick().with_trace_length(5)
        scale = scale.with_observability(
            ObservabilityConfig(
                tracing=True,
                trace_capacity=32,
                explain_capacity=16,
                id_seed=4,
            )
        )
        proxy = ExperimentRunner(scale).build_proxy(
            CachingScheme.FULL_SEMANTIC
        )
        assert proxy.tracer.enabled is True
        assert proxy.tracer.capacity == 32
        assert proxy.obs.decisions.capacity == 16

    def test_run_writes_observability_artifacts(self, tmp_path):
        scale = ExperimentScale.quick().with_trace_length(12)
        scale = scale.with_observability(
            ObservabilityConfig(tracing=True, id_seed=4)
        )
        runner = ExperimentRunner(scale, snapshot_dir=tmp_path)
        result = runner.run(CachingScheme.FULL_SEMANTIC)
        label = result.label()

        decisions = json.loads(
            (tmp_path / f"decisions-{label}.json").read_text()
        )
        assert decisions["decisions"]
        assert sum(decisions["actions"].values()) == len(
            decisions["decisions"]
        )
        assert "skyserver.radial" in decisions["slo"]

        trace_path = tmp_path / f"trace-{label}.jsonl"
        spans = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert spans
        assert all("trace_id" in span for span in spans)
        # Explain records link into the exported spans.
        trace_ids = {span["trace_id"] for span in spans}
        linked = [
            d for d in decisions["decisions"] if d.get("trace_id")
        ]
        assert linked
        assert any(d["trace_id"] in trace_ids for d in linked)

    def test_untraced_run_still_writes_decisions(self, tmp_path):
        scale = ExperimentScale.quick().with_trace_length(8)
        runner = ExperimentRunner(scale, snapshot_dir=tmp_path)
        result = runner.run(CachingScheme.FULL_SEMANTIC)
        label = result.label()
        assert (tmp_path / f"decisions-{label}.json").exists()
        assert not (tmp_path / f"trace-{label}.jsonl").exists()


class TestProfiling:
    def test_profiling_defaults_off(self):
        obs = ObservabilityConfig()
        assert obs.profiling is False
        assert obs.profile_top_k == 10

    def test_profile_top_k_validated(self):
        with pytest.raises(ValueError):
            ObservabilityConfig(profile_top_k=0)

    def test_unprofiled_run_writes_no_profile(self, tmp_path):
        scale = ExperimentScale.quick().with_trace_length(8)
        runner = ExperimentRunner(scale, snapshot_dir=tmp_path)
        result = runner.run(CachingScheme.FULL_SEMANTIC)
        profiles = list(tmp_path.glob("profile-*.json"))
        assert profiles == []
        # And the proxy paid only the no-op profiler.
        proxy = runner.build_proxy(CachingScheme.FULL_SEMANTIC)
        assert proxy.profiler.enabled is False
        assert len(result.stats) > 0

    def test_profiled_run_writes_artifact(self, tmp_path):
        scale = ExperimentScale.quick().with_trace_length(25)
        scale = scale.with_observability(
            ObservabilityConfig(profiling=True, profile_top_k=4)
        )
        runner = ExperimentRunner(scale, snapshot_dir=tmp_path)
        result = runner.run(CachingScheme.FULL_SEMANTIC)
        label = result.label()

        profile = json.loads(
            (tmp_path / f"profile-{label}.json").read_text()
        )
        assert profile["enabled"] is True
        assert profile["top_k"] == 4
        stages = profile["stages"]
        # Hot-path stages saw real traffic during the replay.
        for stage in ("parse", "check", "probe.array"):
            assert stages[stage]["calls"] > 0, stage
        assert stages["check"]["cum_sim_ms"] > 0
        assert len(profile["slowest_queries"]) <= 4
        assert profile["slowest_queries"] == sorted(
            profile["slowest_queries"],
            key=lambda q: -q["response_sim_ms"],
        )
