"""The harness CLI entry point."""

import subprocess
import sys


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.harness", *args],
        capture_output=True,
        text=True,
        timeout=60,
    )


def test_unknown_scale_is_rejected():
    completed = run_cli("gigantic")
    assert completed.returncode == 2
    assert "unknown scale" in completed.stdout


def test_help_text_names_scales():
    completed = run_cli("nope")
    assert "quick" in completed.stdout
    assert "paper" in completed.stdout
