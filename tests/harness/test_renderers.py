"""Experiment result renderers produce the paper's table shapes."""

from repro.harness.ablations import (
    DescriptionAblationResult,
    RemainderAblationResult,
)
from repro.harness.fig5 import Fig5Result
from repro.harness.fig6 import Fig6Result
from repro.harness.table1 import Table1Result
from repro.harness.trace_stats import TraceStatsResult
from repro.workload.analyzer import TraceProfile

FRACTIONS = (1 / 6, 1 / 3, 1 / 2, 1.0)


def test_table1_render_includes_paper_rows():
    result = Table1Result(
        ac={f: 0.5 for f in FRACTIONS},
        pc={f: 0.3 for f in FRACTIONS},
    )
    text = result.render()
    assert "AC (measured)" in text
    assert "AC (paper)" in text
    assert "0.531" in text  # the paper's 1/6 AC value
    assert "1/6" in text and "1/2" in text


def test_fig5_render_lists_all_series():
    series = {
        label: {f: 1000.0 for f in FRACTIONS}
        for label in ("ACR", "ACNR", "PC", "NC")
    }
    text = Fig5Result(response_ms=series).render()
    for label in ("ACR", "ACNR", "PC", "NC"):
        assert label in text


def test_fig6_render_compares_to_paper():
    result = Fig6Result(
        response_ms={"First": 1200.0, "Second": 1000.0, "Third": 1050.0},
        efficiency={"First": 0.59, "Second": 0.54, "Third": 0.51},
    )
    text = result.render()
    assert "1236" in text  # the paper's First value
    assert "First" in text and "Third" in text


def test_trace_stats_render():
    result = TraceStatsResult(
        profile=TraceProfile(
            n_queries=100, exact=0.3, contained=0.2, overlap=0.1,
            disjoint=0.4,
        ),
        distinct_queries=70,
    )
    text = result.render()
    assert "Fully answerable" in text
    assert "0.500" in text  # exact + contained


def test_description_ablation_render():
    result = DescriptionAblationResult(
        max_check_wall_ms={"array": 1.0, "rtree": 2.0},
        mean_check_sim_ms={"array": 3.0, "rtree": 1.5},
        mean_maintenance_sim_ms={"array": 0.1, "rtree": 1.0},
        response_ms={"array": 1000.0, "rtree": 1005.0},
    )
    text = result.render()
    assert "array" in text and "rtree" in text
    assert "100 ms" in text  # the claim in the title


def test_remainder_ablation_render():
    result = RemainderAblationResult(
        response_ms={"remainder": 1500.0, "forward-whole": 1450.0},
        origin_bytes={"remainder": 1024.0, "forward-whole": 2048.0},
        origin_ms={"remainder": 1300.0, "forward-whole": 1250.0},
        efficiency={"remainder": 0.5, "forward-whole": 0.4},
    )
    text = result.render()
    assert "remainder" in text and "forward-whole" in text
