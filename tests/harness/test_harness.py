"""Harness machinery: scales, runner, rendering."""

import pytest

from repro.core.schemes import CachingScheme
from repro.harness.config import ExperimentScale
from repro.harness.render import render_table
from repro.harness.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    scale = ExperimentScale.quick().with_trace_length(120)
    return ExperimentRunner(scale)


class TestScales:
    def test_presets_are_self_consistent(self):
        for scale in (
            ExperimentScale.paper(),
            ExperimentScale.default(),
            ExperimentScale.quick(),
        ):
            assert scale.measure_queries <= scale.trace.n_queries
            assert scale.trace.sky == scale.sky

    def test_with_trace_length_clamps_measurement(self):
        scale = ExperimentScale.quick().with_trace_length(10)
        assert scale.trace.n_queries == 10
        assert scale.measure_queries == 10


class TestRunner:
    def test_builds_are_cached(self, runner):
        assert runner.origin is runner.origin
        assert runner.trace is runner.trace

    def test_total_result_bytes_positive_and_stable(self, runner):
        assert runner.total_result_bytes > 0
        assert runner.total_result_bytes == runner.total_result_bytes

    def test_cache_bytes_for_fraction(self, runner):
        third = runner.cache_bytes_for(1 / 3)
        assert third == int(runner.total_result_bytes / 3)
        assert runner.cache_bytes_for(None) is None

    def test_run_produces_stats(self, runner):
        result = runner.run(CachingScheme.PASSIVE, "array", None)
        assert len(result.stats) == 120
        assert result.final_cache_entries > 0

    def test_unknown_description_kind_rejected(self, runner):
        with pytest.raises(ValueError, match="array"):
            runner.build_proxy(CachingScheme.PASSIVE, "btree")

    def test_runs_are_reproducible(self, runner):
        first = runner.run(CachingScheme.CONTAINMENT_ONLY, "array", 0.5)
        second = runner.run(CachingScheme.CONTAINMENT_ONLY, "array", 0.5)
        assert first.stats.average_response_ms == pytest.approx(
            second.stats.average_response_ms
        )
        assert first.stats.average_cache_efficiency == pytest.approx(
            second.stats.average_cache_efficiency
        )


class TestRender:
    def test_render_table_alignment(self):
        text = render_table(
            "Title",
            ["name", "value"],
            [["a", 0.123456], ["long-name", 1234.5]],
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "0.123" in text
        assert "1234" in text  # large floats lose decimals
        header, divider = lines[2], lines[3]
        assert len(header) == len(divider)
