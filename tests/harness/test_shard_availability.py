"""The shard-availability experiment: crash, failover, handoff."""

import pytest

from repro.harness.config import ExperimentScale
from repro.harness.runner import ExperimentRunner
from repro.harness.shard_availability import (
    FULL_SHARD_COUNTS,
    QUICK_SHARD_COUNTS,
    busiest_shard,
    run_scenario,
    run_shard_availability,
    shard_counts_for,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(ExperimentScale.quick().with_trace_length(80))


@pytest.fixture(scope="module")
def result(runner):
    return run_shard_availability(
        runner,
        shard_counts=(2,),
        crash_ms=6_000.0,
        n_clients=10,
        queries_per_client=4,
        think_time_ms=1_500.0,
    )


class TestLadder:
    def test_counts_for_scale(self):
        assert shard_counts_for(ExperimentScale.quick()) == (
            QUICK_SHARD_COUNTS
        )
        assert shard_counts_for(ExperimentScale.default()) == (
            FULL_SHARD_COUNTS
        )
        assert FULL_SHARD_COUNTS[-1] >= 8

    def test_busiest_shard_deterministic(self, runner):
        assert busiest_shard(runner, 4) == busiest_shard(runner, 4)

    def test_unknown_scenario_rejected(self, runner):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario(
                runner,
                2,
                "chaos",
                crash_ms=1.0,
                n_clients=1,
                queries_per_client=1,
                think_time_ms=0.0,
                seed=1,
            )


class TestResultShape:
    def test_three_scenarios_per_count(self, result):
        assert [p.scenario for p in result.points] == [
            "baseline",
            "failover",
            "control",
        ]
        assert all(p.shards == 2 for p in result.points)

    def test_every_submission_recorded(self, result):
        expected = result.n_clients * result.queries_per_client
        for point in result.points:
            assert point.records == expected

    def test_baseline_answers_everything(self, result):
        baseline = result.point(2, "baseline")
        assert baseline.answered_fraction >= 1.0
        assert baseline.crashed_shard is None
        assert baseline.failovers == 0
        assert baseline.handoff_entries == 0

    def test_failover_beats_control(self, result):
        failover = result.point(2, "failover")
        control = result.point(2, "control")
        assert failover.crashed_shard == control.crashed_shard
        assert failover.answered_fraction > control.answered_fraction
        assert control.shed > 0
        assert failover.shed == 0

    def test_render_and_dict(self, result):
        table = result.render()
        assert "Shard availability" in table
        assert "failover" in table
        payload = result.to_dict()
        assert len(payload["points"]) == 3
        assert payload["crash_ms"] == result.crash_ms

    def test_missing_point_raises(self, result):
        with pytest.raises(KeyError):
            result.point(64, "baseline")

    def test_determinism(self, runner):
        def run():
            return run_shard_availability(
                runner,
                shard_counts=(2,),
                crash_ms=6_000.0,
                n_clients=6,
                queries_per_client=3,
                think_time_ms=1_000.0,
            ).to_dict()

        assert run() == run()
