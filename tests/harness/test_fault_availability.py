"""The fault-availability experiment: caching as an availability layer."""

import pytest

from repro.harness.config import ExperimentScale
from repro.harness.fault_availability import run_fault_availability
from repro.harness.runner import ExperimentRunner


@pytest.fixture(scope="module")
def result():
    scale = ExperimentScale.quick().with_trace_length(80)
    return run_fault_availability(ExperimentRunner(scale))


class TestFaultAvailability:
    def test_semantic_caching_raises_availability(self, result):
        answered = result.answered_fraction
        assert answered["ac-full"] > answered["nc"]

    def test_fractions_are_fractions(self, result):
        for scheme in result.schemes.values():
            assert 0.0 <= scheme.answered_fraction <= 1.0
            assert sum(scheme.outcome_counts.values()) == 80

    def test_every_scheme_saw_the_outage(self, result):
        for scheme in result.schemes.values():
            start_ms, end_ms = scheme.outage_ms
            assert 0.0 <= start_ms < end_ms
            assert scheme.breaker_opens >= 1
            assert scheme.outcome_counts.get("failed", 0) > 0

    def test_latencies_are_positive(self, result):
        # Note the faulted p95 may be *below* the fault-free one: the
        # breaker turns slow origin queries into fast structured
        # failures, which is exactly the fail-fast design intent.
        for scheme in result.schemes.values():
            assert scheme.p95_ms > 0.0
            assert scheme.fault_free_p95_ms > 0.0

    def test_wire_form_and_rendering(self, result):
        payload = result.to_dict()
        assert set(payload["schemes"]) == set(result.schemes)
        assert payload["seed"] == 7
        text = result.render()
        assert "answered" in text
        assert "ac-full" in text
