"""SkyServer function library vs brute force over the catalog."""

import pytest

from repro.skydata.sphere import angular_distance_arcmin
from repro.udf.registry import UdfError


@pytest.fixture(scope="module")
def photo_primary(origin):
    return origin.catalog.table("PhotoPrimary")


@pytest.fixture(scope="module")
def functions(origin):
    return origin.catalog.functions


def brute_force_circle(table, ra, dec, radius):
    schema = table.schema
    ra_pos, dec_pos, id_pos = (
        schema.position("ra"), schema.position("dec"),
        schema.position("objID"),
    )
    return {
        row[id_pos]
        for row in table.rows
        if angular_distance_arcmin(ra, dec, row[ra_pos], row[dec_pos])
        <= radius
    }


class TestNearbyObjEq:
    def test_matches_brute_force(self, origin, photo_primary, functions):
        rows = functions.call_table(
            "fGetNearbyObjEq", origin.catalog, [164.0, 8.0, 20.0]
        )
        got = {row[0] for row in rows}
        assert got == brute_force_circle(photo_primary, 164.0, 8.0, 20.0)
        assert got  # the fixture window is dense enough to be non-trivial

    def test_sorted_by_distance(self, origin, functions):
        rows = functions.call_table(
            "fGetNearbyObjEq", origin.catalog, [164.0, 8.0, 30.0]
        )
        distances = [row[-1] for row in rows]
        assert distances == sorted(distances)

    def test_zero_radius(self, origin, functions):
        rows = functions.call_table(
            "fGetNearbyObjEq", origin.catalog, [164.0, 8.0, 0.0]
        )
        assert rows == []

    def test_negative_radius_raises(self, origin, functions):
        with pytest.raises(UdfError):
            functions.call_table(
                "fGetNearbyObjEq", origin.catalog, [164.0, 8.0, -1.0]
            )


class TestNearbyObjXYZ:
    def test_agrees_with_eq_variant(self, origin, functions):
        from repro.skydata.sphere import radec_to_unit

        ra, dec, radius = 163.0, 7.5, 15.0
        eq_rows = functions.call_table(
            "fGetNearbyObjEq", origin.catalog, [ra, dec, radius]
        )
        xyz = radec_to_unit(ra, dec)
        xyz_rows = functions.call_table(
            "fGetNearbyObjXYZ", origin.catalog, [*xyz, radius]
        )
        assert {r[0] for r in eq_rows} == {r[0] for r in xyz_rows}

    def test_zero_vector_raises(self, origin, functions):
        with pytest.raises(UdfError):
            functions.call_table(
                "fGetNearbyObjXYZ", origin.catalog, [0, 0, 0, 10.0]
            )


class TestObjFromRect:
    def test_matches_brute_force(self, origin, photo_primary, functions):
        args = [163.0, 164.0, 7.0, 8.0]
        rows = functions.call_table(
            "fGetObjFromRect", origin.catalog, args
        )
        schema = photo_primary.schema
        ra_pos, dec_pos, id_pos = (
            schema.position("ra"), schema.position("dec"),
            schema.position("objID"),
        )
        expected = {
            row[id_pos]
            for row in photo_primary.rows
            if 163.0 <= row[ra_pos] <= 164.0 and 7.0 <= row[dec_pos] <= 8.0
        }
        assert {row[0] for row in rows} == expected
        assert expected

    def test_empty_rect_raises(self, origin, functions):
        with pytest.raises(UdfError):
            functions.call_table(
                "fGetObjFromRect", origin.catalog, [164.0, 163.0, 7.0, 8.0]
            )

    def test_ordered_by_objid(self, origin, functions):
        rows = functions.call_table(
            "fGetObjFromRect", origin.catalog, [162.0, 165.0, 6.0, 9.0]
        )
        ids = [row[0] for row in rows]
        assert ids == sorted(ids)


class TestScalars:
    def test_photo_flags(self, functions):
        assert functions.call_scalar("fPhotoFlags", ["SATURATED"]) == 0x1
        assert functions.call_scalar("fPhotoFlags", ["bright"]) == 0x20

    def test_photo_flags_unknown_raises(self, functions):
        with pytest.raises(UdfError):
            functions.call_scalar("fPhotoFlags", ["NOT_A_FLAG"])

    def test_photo_type(self, functions):
        assert functions.call_scalar("fPhotoType", ["GALAXY"]) == 3
        assert functions.call_scalar("fPhotoType", ["star"]) == 6

    def test_distance_arcmin(self, functions):
        # One degree of declination is 60 arcminutes.
        distance = functions.call_scalar(
            "fDistanceArcMinEq", [100.0, 10.0, 100.0, 11.0]
        )
        assert distance == pytest.approx(60.0, rel=1e-6)


class TestDeterminismFlags:
    def test_spatial_functions_are_deterministic(self, functions):
        for name in ("fGetNearbyObjEq", "fGetObjFromRect",
                     "fGetNearbyObjXYZ"):
            assert functions.is_deterministic(name)

    def test_random_sample_is_not(self, functions):
        assert not functions.is_deterministic("fRandomSample")
