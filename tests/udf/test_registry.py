"""Function registry semantics."""

import pytest

from repro.relational.schema import Schema
from repro.relational.types import ColumnType
from repro.udf.registry import (
    FunctionRegistry,
    ScalarFunction,
    TableFunction,
    UdfError,
)


def scalar(name="double", deterministic=True):
    return ScalarFunction(
        name, ("x",), lambda x: 2 * x, deterministic=deterministic
    )


def table_function(name="fRows", deterministic=True):
    return TableFunction(
        name,
        ("n",),
        Schema.of(("v", ColumnType.INT)),
        lambda catalog, args: [(i,) for i in range(args[0])],
        deterministic=deterministic,
    )


class TestRegistration:
    def test_register_and_resolve_case_insensitive(self):
        registry = FunctionRegistry()
        registry.register_scalar(scalar())
        assert registry.has_scalar("DOUBLE")
        assert registry.scalar("Double").name == "double"

    def test_shared_namespace_conflict(self):
        registry = FunctionRegistry()
        registry.register_scalar(scalar("f"))
        with pytest.raises(UdfError, match="already registered"):
            registry.register_table(table_function("F"))

    def test_unknown_lookups_raise(self):
        registry = FunctionRegistry()
        with pytest.raises(UdfError):
            registry.scalar("nope")
        with pytest.raises(UdfError):
            registry.table("nope")
        with pytest.raises(UdfError):
            registry.is_deterministic("nope")


class TestCalls:
    def test_call_scalar(self):
        registry = FunctionRegistry()
        registry.register_scalar(scalar())
        assert registry.call_scalar("double", [21]) == 42

    def test_scalar_arity_checked(self):
        registry = FunctionRegistry()
        registry.register_scalar(scalar())
        with pytest.raises(UdfError, match="expects 1"):
            registry.call_scalar("double", [1, 2])

    def test_call_table(self):
        registry = FunctionRegistry()
        registry.register_table(table_function())
        rows = registry.call_table("fRows", None, [3])
        assert rows == [(0,), (1,), (2,)]

    def test_table_arity_checked(self):
        registry = FunctionRegistry()
        registry.register_table(table_function())
        with pytest.raises(UdfError, match="expects 1"):
            registry.call_table("fRows", None, [])


class TestDeterminism:
    def test_flags_are_reported(self):
        registry = FunctionRegistry()
        registry.register_scalar(scalar("s", deterministic=False))
        registry.register_table(table_function("t", deterministic=True))
        assert not registry.is_deterministic("s")
        assert registry.is_deterministic("t")
