"""The /explain endpoints and the stitched proxy/origin trace.

The tentpole acceptance path: a query replayed through the Flask proxy
against a live Flask origin yields one end-to-end trace (the same
trace id on both sides' ``/trace/recent``), a ``/explain/<query_id>``
response naming the decision action and every candidate examined, and
exemplar-annotated latency buckets referencing valid trace ids.
Skips cleanly when Flask is not installed.
"""

import re
import threading
from wsgiref.simple_server import make_server

import pytest

flask = pytest.importorskip("flask")

from repro.core.proxy import FunctionProxy
from repro.obs import IdGenerator, ProxyInstrumentation, SpanTracer
from repro.webapp.http_origin import HttpOriginClient
from repro.webapp.origin_app import create_origin_app
from repro.webapp.proxy_app import create_proxy_app

RADIAL = "/search/Radial?ra=164&dec=8&radius=10"
SMALLER = "/search/Radial?ra=164&dec=8&radius=4"
SHIFTED = "/search/Radial?ra=166&dec=9&radius=5"

HEX_TRACE_ID = re.compile(r"^[0-9a-f]{32}$")


@pytest.fixture()
def traced_proxy(origin):
    return FunctionProxy(
        origin,
        origin.templates,
        instrumentation=ProxyInstrumentation(tracer=SpanTracer()),
    )


@pytest.fixture()
def proxy_client(traced_proxy):
    return create_proxy_app(traced_proxy).test_client()


class TestExplainEndpoint:
    def test_explain_names_action_and_candidates(self, proxy_client):
        proxy_client.get(RADIAL)
        proxy_client.get(SMALLER)
        payload = proxy_client.get("/explain/2").get_json()
        assert payload["query_id"] == 2
        assert payload["template_id"] == "skyserver.radial"
        assert payload["action"] == "contained"
        assert payload["action_code"] == "DA02"
        assert payload["status"] == "contained"
        assert payload["outcome"] == "served"
        # Every candidate carries a region-relationship verdict with
        # the compared bounds.
        assert payload["candidates"]
        for candidate in payload["candidates"]:
            assert candidate["relation"]
            assert "shape" in candidate["entry_region"]
        assert payload["query_region"]["shape"] == "hypersphere"
        assert payload["scheme"] == "ac-full"

    def test_miss_decision(self, proxy_client):
        proxy_client.get(RADIAL)
        payload = proxy_client.get("/explain/1").get_json()
        assert payload["action"] == "miss"
        assert payload["action_code"] == "DA05"
        assert payload["admitted"] is True

    def test_explain_links_trace_id(self, proxy_client):
        proxy_client.get(RADIAL)
        explain = proxy_client.get("/explain/1").get_json()
        assert HEX_TRACE_ID.match(explain["trace_id"])
        spans = proxy_client.get("/trace/recent").get_json()["spans"]
        assert explain["trace_id"] in {s["trace_id"] for s in spans}

    def test_explain_recent(self, proxy_client):
        proxy_client.get(RADIAL)
        proxy_client.get(RADIAL)
        proxy_client.get(SHIFTED)
        payload = proxy_client.get("/explain/recent").get_json()
        assert payload["capacity"] >= 3
        assert payload["actions"]["exact"] == 1
        assert [d["query_id"] for d in payload["decisions"]] == [1, 2, 3]
        limited = proxy_client.get("/explain/recent?n=1").get_json()
        assert [d["query_id"] for d in limited["decisions"]] == [3]

    def test_unknown_query_is_404(self, proxy_client):
        response = proxy_client.get("/explain/999")
        assert response.status_code == 404
        payload = response.get_json()
        assert "error" in payload
        assert payload["retained"] == 0

    def test_explain_capacity_kwarg(self, traced_proxy):
        client = create_proxy_app(
            traced_proxy, explain_capacity=2
        ).test_client()
        for _ in range(3):
            client.get(RADIAL)
        payload = client.get("/explain/recent").get_json()
        assert payload["capacity"] == 2
        assert len(payload["decisions"]) == 2
        assert client.get("/explain/1").status_code == 404

    def test_trace_capacity_kwarg(self, traced_proxy):
        client = create_proxy_app(
            traced_proxy, trace_capacity=1
        ).test_client()
        for _ in range(3):
            client.get(RADIAL)
        payload = client.get("/trace/recent?n=10").get_json()
        assert payload["enabled"] is True
        assert len(payload["spans"]) == 1


class TestExemplars:
    def test_check_wall_buckets_reference_valid_trace_ids(
        self, proxy_client
    ):
        proxy_client.get(RADIAL)
        proxy_client.get(SMALLER)
        text = proxy_client.get("/metrics?exemplars=1").get_data(
            as_text=True
        )
        exemplar_ids = re.findall(r'# \{trace_id="([0-9a-f]{32})"\}', text)
        assert exemplar_ids
        assert any(
            line.startswith("proxy_check_wall_ms_bucket")
            and "trace_id=" in line
            for line in text.splitlines()
        )
        spans = proxy_client.get("/trace/recent").get_json()["spans"]
        span_trace_ids = {s["trace_id"] for s in spans}
        for trace_id in exemplar_ids:
            assert trace_id in span_trace_ids

    def test_exemplars_absent_by_default(self, proxy_client):
        proxy_client.get(RADIAL)
        text = proxy_client.get("/metrics").get_data(as_text=True)
        assert "trace_id=" not in text


class TestStitchedTrace:
    @pytest.fixture(scope="class")
    def live_origin(self, origin):
        # The origin fixture is session-shared; put its (null) tracer
        # back afterwards so tracing stays off for other test files.
        original_tracer = origin.instrumentation.tracer
        app = create_origin_app(origin, trace_capacity=64)
        server = make_server("127.0.0.1", 0, app)
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        yield f"http://127.0.0.1:{server.server_port}", origin
        server.shutdown()
        origin.instrumentation.tracer = original_tracer

    def test_one_query_one_trace_across_both_sides(self, live_origin):
        url, origin = live_origin
        client = HttpOriginClient(url)
        proxy = FunctionProxy(
            client,
            client.templates,
            instrumentation=ProxyInstrumentation(
                tracer=SpanTracer(ids=IdGenerator(seed=11))
            ),
        )
        proxy_app = create_proxy_app(proxy).test_client()

        response = proxy_app.get(RADIAL)
        assert response.status_code == 200

        proxy_spans = proxy_app.get("/trace/recent").get_json()["spans"]
        origin_spans = origin.instrumentation.tracer.recent(10)
        assert proxy_spans and origin_spans
        proxy_ids = {s["trace_id"] for s in proxy_spans}
        origin_ids = {s["trace_id"] for s in origin_spans}
        shared = proxy_ids & origin_ids
        assert shared, (proxy_ids, origin_ids)

        # The explain record links the same trace.
        explain = proxy_app.get("/explain/1").get_json()
        assert explain["trace_id"] in shared

    def test_malformed_traceparent_degrades_to_fresh_trace(
        self, live_origin
    ):
        url, origin = live_origin
        origin_app = create_origin_app(origin).test_client()
        before = {
            s["trace_id"]
            for s in origin.instrumentation.tracer.recent(100)
        }
        response = origin_app.get(
            RADIAL, headers={"traceparent": "zz-not-a-real-header"}
        )
        assert response.status_code == 200
        new = [
            s
            for s in origin.instrumentation.tracer.recent(100)
            if s["trace_id"] not in before
        ]
        assert new  # executed under a fresh local trace, not an error
