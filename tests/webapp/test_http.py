"""HTTP deployment: origin app, proxy app, and the HTTP origin client."""

import threading
from wsgiref.simple_server import make_server

import pytest

flask = pytest.importorskip("flask")

from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryStatus
from repro.relational.result import ResultTable
from repro.webapp.http_origin import HttpOriginClient, HttpOriginError
from repro.webapp.origin_app import create_origin_app
from repro.webapp.proxy_app import create_proxy_app


@pytest.fixture(scope="module")
def origin_client(origin):
    return create_origin_app(origin).test_client()


@pytest.fixture()
def proxy_client(origin):
    proxy = FunctionProxy(origin, origin.templates)
    return create_proxy_app(proxy).test_client()


class TestOriginApp:
    def test_search_form_returns_xml(self, origin_client):
        response = origin_client.get(
            "/search/Radial?ra=164&dec=8&radius=10"
        )
        assert response.status_code == 200
        assert "X-Server-Ms" in response.headers
        result = ResultTable.from_xml(response.get_data(as_text=True))
        assert "objID" in result.column_names

    def test_unknown_form_is_400(self, origin_client):
        response = origin_client.get("/search/NoSuchForm?x=1")
        assert response.status_code == 400
        assert "error" in response.get_json()

    def test_missing_field_is_400(self, origin_client):
        response = origin_client.get("/search/Radial?ra=164")
        assert response.status_code == 400

    def test_free_sql(self, origin_client):
        response = origin_client.post(
            "/sql",
            data="SELECT TOP 3 objID, ra, dec FROM PhotoPrimary",
        )
        assert response.status_code == 200
        result = ResultTable.from_xml(response.get_data(as_text=True))
        assert len(result) == 3

    def test_bad_sql_is_400(self, origin_client):
        response = origin_client.post("/sql", data="DROP TABLE x")
        assert response.status_code == 400

    def test_free_sql_supports_aggregates(self, origin_client):
        response = origin_client.post(
            "/sql",
            data="SELECT type, COUNT(*) AS n FROM PhotoPrimary "
            "GROUP BY type ORDER BY type",
        )
        assert response.status_code == 200
        result = ResultTable.from_xml(response.get_data(as_text=True))
        assert result.column_names == ("type", "n")
        assert sum(row[1] for row in result.rows) > 0

    def test_remainder_header_charges_surcharge(self, origin_client):
        sql = (
            "SELECT p.objID, p.cx, p.cy, p.cz "
            "FROM fGetNearbyObjEq(164.0, 8.0, 10.0) n "
            "JOIN PhotoPrimary p ON n.objID = p.objID"
        )
        plain = origin_client.post("/sql", data=sql)
        remainder = origin_client.post(
            "/sql", data=sql, headers={"X-Remainder-Holes": "2"}
        )
        assert float(remainder.headers["X-Server-Ms"]) > float(
            plain.headers["X-Server-Ms"]
        )

    def test_templates_endpoint(self, origin_client):
        payload = origin_client.get("/templates").get_json()
        ids = {t["template_id"] for t in payload["query_templates"]}
        assert "skyserver.radial" in ids
        assert payload["info_files"]

    def test_health(self, origin_client):
        payload = origin_client.get("/health").get_json()
        assert "PhotoPrimary" in payload["tables"]
        assert payload["data_version"] == 1

    def test_responses_carry_data_version(self, origin_client):
        response = origin_client.get(
            "/search/Radial?ra=164&dec=8&radius=5"
        )
        assert response.headers["X-Data-Version"] == "1"


class TestProxyApp:
    def test_cache_status_header_progression(self, proxy_client):
        first = proxy_client.get("/search/Radial?ra=164&dec=8&radius=10")
        second = proxy_client.get("/search/Radial?ra=164&dec=8&radius=10")
        assert first.headers["X-Cache-Status"] == (
            QueryStatus.DISJOINT.value
        )
        assert second.headers["X-Cache-Status"] == QueryStatus.EXACT.value
        assert float(second.headers["X-Cache-Efficiency"]) == 1.0

    def test_stats_endpoint(self, proxy_client):
        proxy_client.get("/search/Radial?ra=164&dec=8&radius=10")
        payload = proxy_client.get("/stats").get_json()
        assert payload["queries"] == 1
        assert payload["scheme"] == "ac-full"

    def test_cache_clear(self, proxy_client):
        proxy_client.get("/search/Radial?ra=164&dec=8&radius=10")
        cleared = proxy_client.post("/cache/clear").get_json()
        assert cleared["removed"] == 1
        payload = proxy_client.get("/stats").get_json()
        assert payload["cache_entries"] == 0

    def test_bad_form_is_400(self, proxy_client):
        assert proxy_client.get("/search/Nope?x=1").status_code == 400


class TestHttpOriginClient:
    @pytest.fixture(scope="class")
    def live_origin_url(self, origin):
        server = make_server("127.0.0.1", 0, create_origin_app(origin))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{server.server_port}"
        server.shutdown()

    def test_bootstrap_and_query(self, live_origin_url, origin,
                                 radial_params):
        client = HttpOriginClient(live_origin_url)
        assert set(client.templates.query_template_ids()) == set(
            origin.templates.query_template_ids()
        )
        bound = client.templates.bind("skyserver.radial", radial_params)
        response = client.execute_bound(bound)
        expected = origin.execute_bound(
            origin.templates.bind("skyserver.radial", radial_params)
        ).result
        assert response.result == expected
        assert response.server_ms > 0

    def test_proxy_over_http_answers_containment(
        self, live_origin_url, radial_params
    ):
        client = HttpOriginClient(live_origin_url)
        proxy = FunctionProxy(client, client.templates)
        big = client.templates.bind("skyserver.radial", radial_params)
        proxy.serve(big)
        small = client.templates.bind(
            "skyserver.radial", dict(radial_params, radius=4.0)
        )
        response = proxy.serve(small)
        assert response.record.status is QueryStatus.CONTAINED

    def test_rejected_sql_raises(self, live_origin_url):
        client = HttpOriginClient(live_origin_url)
        from repro.sqlparser.parser import parse_select

        with pytest.raises(HttpOriginError):
            client.execute_statement(
                parse_select("SELECT x FROM NoSuchTable")
            )

    def test_client_tracks_data_version(self, live_origin_url, origin,
                                        radial_params):
        client = HttpOriginClient(live_origin_url)
        assert client.data_version == origin.data_version
        origin.bump_data_version()
        try:
            bound = client.templates.bind(
                "skyserver.radial", radial_params
            )
            client.execute_bound(bound)
            assert client.data_version == origin.data_version
        finally:
            # Keep the shared session origin's version stable for
            # other tests (proxies snapshot it at construction).
            origin.data_version = 1
