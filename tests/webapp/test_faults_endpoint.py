"""Fault-plan control endpoints and outcome-aware HTTP statuses."""

import pytest

flask = pytest.importorskip("flask")

from repro.core.proxy import FunctionProxy
from repro.faults.plan import FaultPlan, OutageWindow
from repro.faults.resilience import BreakerState
from repro.webapp.proxy_app import create_proxy_app

ALWAYS_DOWN = {"outages": [{"start_ms": 0.0, "end_ms": 1e12}]}


@pytest.fixture()
def proxy(origin):
    return FunctionProxy(origin, origin.templates)


@pytest.fixture()
def client(proxy):
    return create_proxy_app(proxy).test_client()


def radial(client, ra=164.0, radius=10.0):
    return client.get(f"/search/Radial?ra={ra}&dec=8&radius={radius}")


def open_breaker(proxy, client):
    ra = 100.0
    while proxy.breaker.state is not BreakerState.OPEN:
        radial(client, ra=ra, radius=0.5)
        ra += 5.0


class TestFaultPlanEndpoints:
    def test_lifecycle(self, client):
        before = client.get("/faults").get_json()
        assert before["installed"] is False

        installed = client.post("/faults", json=ALWAYS_DOWN)
        assert installed.status_code == 200
        assert installed.get_json()["installed"] is True

        status = client.get("/faults").get_json()
        assert status["installed"] is True
        assert status["plan"]["outages"][0]["end_ms"] == 1e12
        assert status["breaker"] == "closed"
        assert "clock_ms" in status

        removed = client.delete("/faults").get_json()
        assert removed == {"installed": False, "removed": True}
        assert client.delete("/faults").get_json()["removed"] is False

    def test_invalid_plan_is_400(self, client):
        bad = client.post("/faults", json={"error_rate": 5.0})
        assert bad.status_code == 400
        assert "error" in bad.get_json()
        assert client.post("/faults", json=[1, 2]).status_code == 400

    def test_round_trips_through_plan_wire_form(self, client):
        plan = FaultPlan(
            seed=3,
            outages=(OutageWindow(10.0, 20.0),),
            error_rate=0.1,
        )
        client.post("/faults", json=plan.to_dict())
        echoed = client.get("/faults").get_json()["plan"]
        assert FaultPlan.from_dict(echoed) == plan


class TestOutcomeStatuses:
    def test_healthy_serves_200_with_outcome_header(self, client):
        response = radial(client)
        assert response.status_code == 200
        assert response.headers["X-Proxy-Outcome"] == "served"
        assert response.headers["X-Proxy-Retries"] == "0"

    def test_unanswerable_query_is_503_not_a_crash(self, client):
        client.post("/faults", json=ALWAYS_DOWN)
        response = radial(client)
        assert response.status_code == 503
        payload = response.get_json()
        assert payload["reason"] == "outage"
        assert payload["retries"] == 2

    def test_stale_exact_hit_is_200_marked_degraded(self, proxy, client):
        radial(client)  # warm
        client.post("/faults", json=ALWAYS_DOWN)
        open_breaker(proxy, client)
        response = radial(client)
        assert response.status_code == 200
        assert response.headers["X-Proxy-Outcome"] == "degraded"

    def test_partial_overlap_is_206(self, proxy, client):
        radial(client, radius=12.0)  # warm a region
        client.post("/faults", json=ALWAYS_DOWN)
        open_breaker(proxy, client)
        response = radial(client, ra=164.25, radius=12.0)
        assert response.status_code == 206
        assert response.headers["X-Proxy-Outcome"] == "partial"

    def test_stats_report_availability(self, proxy, client):
        radial(client)
        client.post("/faults", json=ALWAYS_DOWN)
        radial(client, ra=100.0, radius=0.5)
        payload = client.get("/stats").get_json()
        assert payload["answered_fraction"] == pytest.approx(0.5)
        assert payload["total_retries"] >= 2
        assert payload["outcome_fractions"]["failed"] == pytest.approx(0.5)
