"""The live-telemetry HTTP surface: /timeseries, /events, /health.

Plus the pinned Prometheus content type on ``/metrics`` and the
admission gauges back-filled into ``GET /admission``.
"""

import pytest

flask = pytest.importorskip("flask")

from repro.admission import (
    AdmissionConfig,
    AdmissionController,
    TenantQuota,
)
from repro.core.proxy import FunctionProxy
from repro.obs.events import EV_BREAKER_OPEN, EV_SHED_ACTIVATED
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.webapp.origin_app import create_origin_app
from repro.webapp.proxy_app import create_proxy_app

RADIAL = "/search/Radial?ra=164&dec=8&radius=10"


@pytest.fixture()
def proxy(origin):
    return FunctionProxy(origin, origin.templates)


@pytest.fixture()
def client(proxy):
    return create_proxy_app(
        proxy, timeseries_interval_ms=1_000.0, event_capacity=16
    ).test_client()


class TestMetricsContentType:
    """The exposition content type is pinned, byte for byte."""

    EXACT = "text/plain; version=0.0.4; charset=utf-8"

    def test_constant_is_pinned(self):
        assert PROMETHEUS_CONTENT_TYPE == self.EXACT

    def test_proxy_metrics_content_type(self, client):
        response = client.get("/metrics")
        assert response.status_code == 200
        assert response.headers["Content-Type"] == self.EXACT

    def test_origin_metrics_content_type(self, origin):
        response = create_origin_app(origin).test_client().get("/metrics")
        assert response.status_code == 200
        assert response.headers["Content-Type"] == self.EXACT


class TestTimeseriesEndpoint:
    def test_snapshot_round_trip(self, proxy, client):
        client.get(RADIAL)
        proxy.clock.advance(1_000.0)
        client.get(RADIAL)
        payload = client.get("/timeseries").get_json()
        assert payload["enabled"] is True
        assert payload["clock"] == "sim-ms"
        assert payload["interval_ms"] == 1_000.0
        assert payload["lanes"]["rates"] == [
            "throughput_qps", "shed_per_s", "origin_per_s",
        ]
        for sample in payload["samples"]:
            assert sample["t_ms"] % 1_000.0 == 0.0

    def test_disabled_by_default(self, proxy):
        bare = create_proxy_app(proxy).test_client()
        payload = bare.get("/timeseries").get_json()
        assert payload == {
            "enabled": False,
            "clock": "sim-ms",
            "interval_ms": 0.0,
            "capacity": 0,
            "lanes": {"rates": [], "gauges": [], "quantiles": []},
            "samples": [],
        }


class TestEventsEndpoint:
    def test_snapshot_and_limit(self, proxy, client):
        proxy.events.emit(EV_BREAKER_OPEN, at_ms=10.0)
        proxy.events.emit(EV_SHED_ACTIVATED, at_ms=20.0)
        payload = client.get("/events").get_json()
        assert payload["enabled"] is True
        assert payload["total"] == 2
        assert [e["code"] for e in payload["events"]] == ["EV01", "EV04"]
        limited = client.get("/events?n=1").get_json()
        assert [e["code"] for e in limited["events"]] == ["EV04"]
        assert limited["total"] == 2  # lifetime count is untouched

    def test_disabled_by_default(self, proxy):
        bare = create_proxy_app(proxy).test_client()
        payload = bare.get("/events").get_json()
        assert payload["enabled"] is False
        assert payload["events"] == []


class TestHealthEndpoint:
    def test_healthy_traffic_is_200(self, proxy, client):
        for _ in range(3):
            client.get(RADIAL)
            proxy.clock.advance(1_000.0)
        payload = client.get("/health").get_json()
        assert client.get("/health").status_code == 200
        assert payload["enabled"] is True
        assert payload["status"] == "healthy"
        assert [r["id"] for r in payload["rules"]] == [
            "HR01", "HR02", "HR03", "HR04", "HR05", "HR06",
        ]

    def test_unhealthy_answers_503(self, proxy, client):
        # Drive a shed spike straight through the metrics registry:
        # one window where nearly every arrival was turned away.
        proxy.timeseries.maybe_sample(proxy.clock.now_ms)
        registry = proxy.metrics
        registry.get("admission_shed_total").labels(
            reason="queue-full"
        ).inc(60.0)
        registry.get("proxy_queries_total").labels(
            status="exact", template="t"
        ).inc(1.0)
        proxy.clock.advance(2_000.0)
        proxy.timeseries.maybe_sample(proxy.clock.now_ms)
        response = client.get("/health")
        assert response.status_code == 503
        payload = response.get_json()
        assert payload["status"] == "unhealthy"
        (hr02,) = [r for r in payload["rules"] if r["id"] == "HR02"]
        assert hr02["status"] == "unhealthy"

    def test_disabled_monitor_reports_200(self, proxy):
        bare = create_proxy_app(proxy).test_client()
        response = bare.get("/health")
        assert response.status_code == 200
        assert response.get_json()["enabled"] is False


class TestOriginTelemetry:
    @pytest.fixture()
    def origin_client(self, origin):
        return create_origin_app(
            origin, timeseries_interval_ms=100.0, event_capacity=8
        ).test_client()

    def test_timeseries_uses_origin_lanes(self, origin_client):
        for _ in range(4):
            origin_client.get(RADIAL)
        payload = origin_client.get("/timeseries").get_json()
        assert payload["enabled"] is True
        assert payload["lanes"] == {
            "rates": ["requests_per_s"],
            "gauges": ["data_version"],
            "quantiles": ["server_ms"],
        }
        assert payload["samples"]  # served time crossed 100 ms windows

    def test_events_surface_exists(self, origin_client):
        payload = origin_client.get("/events").get_json()
        assert payload["enabled"] is True
        assert payload["events"] == []

    def test_health_merges_status_fields(self, origin_client):
        origin_client.get(RADIAL)
        response = origin_client.get("/health")
        assert response.status_code == 200
        payload = response.get_json()
        assert payload["status"] == "healthy"
        assert payload["queries_served"] >= 1
        assert "data_version" in payload
        assert "tables" in payload


class TestAdmissionGauges:
    @pytest.fixture()
    def metered_proxy(self, origin):
        controller = AdmissionController(
            AdmissionConfig(
                quotas={"metered": TenantQuota(rate_per_s=0.001, burst=2.0)}
            )
        )
        return FunctionProxy(
            origin, origin.templates, admission=controller
        )

    def test_quota_tokens_in_admission_payload(self, metered_proxy):
        client = create_proxy_app(metered_proxy).test_client()
        client.get(RADIAL, headers={"X-Tenant": "metered"})
        payload = client.get("/admission").get_json()
        assert payload["quota_tokens"] == {"metered": 1.0}
        assert payload["inflight"] == 0

    def test_inflight_and_quota_gauges_in_metrics(self, metered_proxy):
        client = create_proxy_app(metered_proxy).test_client()
        client.get(RADIAL, headers={"X-Tenant": "metered"})
        lines = client.get("/metrics").get_data(as_text=True).splitlines()
        assert "admission_inflight 0" in lines
        assert 'admission_quota_tokens{tenant="metered"} 1' in lines
