"""``GET /profile`` on both Flask apps.

The acceptance path: serve a base query, an exactly contained query,
and an overlapping query through the proxy app, then read back the
profiler aggregate and find nonzero counts for the hot-path stages
(``check``, ``probe.array``, ``local_eval``, ``merge``).  Skips
cleanly when Flask is not installed.
"""

import pytest

flask = pytest.importorskip("flask")

from repro.core.proxy import FunctionProxy
from repro.webapp.origin_app import create_origin_app
from repro.webapp.proxy_app import create_proxy_app

BASE = "/search/Radial?ra=164&dec=8&radius=10"
CONTAINED = "/search/Radial?ra=164&dec=8&radius=4"
# The radial radius is arcminutes: a 0.2-degree (12') center shift
# against two 10' radii overlaps without containment.
OVERLAP = "/search/Radial?ra=164.2&dec=8&radius=10"


@pytest.fixture()
def profiled_client(origin):
    proxy = FunctionProxy(origin, origin.templates)
    return create_proxy_app(proxy, profile_top_k=5).test_client()


class TestProxyProfile:
    def test_disabled_by_default(self, origin):
        client = create_proxy_app(
            FunctionProxy(origin, origin.templates)
        ).test_client()
        payload = client.get("/profile").get_json()
        assert payload["enabled"] is False
        assert payload["stages"] == {}

    def test_empty_profile_before_any_query(self, profiled_client):
        payload = profiled_client.get("/profile").get_json()
        assert payload["enabled"] is True
        assert payload["stages"] == {}
        assert payload["slowest_queries"] == []

    def test_hot_path_stages_populated(self, profiled_client):
        for url in (BASE, CONTAINED, OVERLAP):
            assert profiled_client.get(url).status_code == 200
        payload = profiled_client.get("/profile").get_json()
        stages = payload["stages"]
        for stage in ("check", "probe.array", "local_eval", "merge"):
            assert stages[stage]["calls"] > 0, stage
        # The contained query was answered from cache: tuples were
        # evaluated locally, and the check counted candidate regions.
        assert stages["local_eval"]["counters"]["tuples_evaluated"] > 0
        assert stages["probe.array"]["counters"]["candidates"] > 0
        # Simulated and wall clocks both advanced through `check`.
        assert stages["check"]["cum_sim_ms"] > 0
        assert stages["check"]["cum_wall_ms"] > 0
        # Every served query was offered to the slowest-K capture.
        assert len(payload["slowest_queries"]) == 3

    def test_text_format(self, profiled_client):
        profiled_client.get(BASE)
        response = profiled_client.get("/profile?format=text")
        assert response.status_code == 200
        assert "text/plain" in response.content_type
        text = response.get_data(as_text=True)
        assert "sorted by cum" in text
        assert "check" in text

    def test_text_sort_param(self, profiled_client):
        profiled_client.get(BASE)
        response = profiled_client.get("/profile?format=text&sort=calls")
        assert "sorted by calls" in response.get_data(as_text=True)

    def test_unknown_sort_is_400(self, profiled_client):
        response = profiled_client.get("/profile?format=text&sort=rows")
        assert response.status_code == 400

    def test_unknown_format_is_400(self, profiled_client):
        response = profiled_client.get("/profile?format=xml")
        assert response.status_code == 400


class TestOriginProfile:
    @pytest.fixture()
    def restored_origin(self, origin):
        # The origin fixture is session-shared; put its (null) profiler
        # back so enabling one here cannot leak into other tests.
        before = origin.instrumentation.profiler
        yield origin
        origin.instrumentation.profiler = before

    def test_form_executions_profiled(self, restored_origin):
        client = create_origin_app(
            restored_origin, profile_top_k=5
        ).test_client()
        assert client.get(BASE).status_code == 200
        stages = client.get("/profile").get_json()["stages"]
        assert stages["origin.form"]["calls"] > 0
        assert stages["origin.form"]["counters"]["rows"] > 0
        # The cost model's simulated server time rode along.
        assert stages["origin.form"]["cum_sim_ms"] > 0
        # Relational operator counters reached the same profiler.
        assert stages["executor.scan"]["counters"]["rows"] > 0
        assert stages["executor.project"]["counters"]["rows"] > 0

    def test_disabled_by_default(self, restored_origin):
        client = create_origin_app(restored_origin).test_client()
        assert client.get("/profile").get_json()["enabled"] is False
