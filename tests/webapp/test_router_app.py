"""The shard-router HTTP surface: routed search, topology, drain."""

import pytest

flask = pytest.importorskip("flask")

from repro.admission import (
    AdmissionConfig,
    AdmissionController,
    TenantQuota,
    retry_after_seconds,
)
from repro.cluster import RouterConfig, Shard, ShardRouter
from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.faults.shard import ShardCrashPlan, ShardFaultWindow
from repro.webapp.router_app import create_router_app

QUOTA_CONFIG = AdmissionConfig(
    quotas={"metered": TenantQuota(rate_per_s=0.001, burst=1.0)}
)


def make_router(origin, n_shards=3, fallback=True, **kwargs):
    shards = tuple(
        Shard(
            f"shard-{i}",
            FunctionProxy(
                origin,
                origin.templates,
                admission=AdmissionController(QUOTA_CONFIG),
            ),
        )
        for i in range(n_shards)
    )
    tunnel = (
        FunctionProxy(
            origin, origin.templates, scheme=CachingScheme.NO_CACHE
        )
        if fallback
        else None
    )
    return ShardRouter(shards, fallback=tunnel, **kwargs)


@pytest.fixture()
def router(origin):
    return make_router(origin)


@pytest.fixture()
def client(router):
    return create_router_app(router).test_client()


def radial(client, ra=164.0, **kwargs):
    return client.get(f"/search/Radial?ra={ra}&dec=8&radius=10", **kwargs)


class TestRoutedSearch:
    def test_search_carries_shard_headers(self, client, router):
        response = radial(client)
        assert response.status_code == 200
        assert response.headers["X-Shard"] in router.shard_ids
        assert response.headers["X-Shard-Rerouted"] == "0"
        assert response.headers["X-Proxy-Outcome"] == "served"

    def test_bad_form_is_400(self, client):
        assert client.get("/search/NoSuchForm?x=1").status_code == 400

    def test_reroute_header_on_crashed_primary(self, origin):
        probe = make_router(origin)
        bound = origin.templates.bind_form(
            "Radial", {"ra": "164.0", "dec": "8", "radius": "10"}
        )
        primary = probe.ring.primary(probe.route_key(bound))
        router = make_router(
            origin,
            crash_plan=ShardCrashPlan(
                faults=(ShardFaultWindow(primary, "crash", 0.0),)
            ),
        )
        client = create_router_app(router).test_client()
        response = radial(client)
        assert response.status_code == 200
        assert response.headers["X-Shard-Rerouted"] == "1"
        assert response.headers["X-Shard"] != primary

    def test_quota_shed_is_429_with_retry_after(self, client):
        headers = {"X-Tenant": "metered"}
        assert radial(client, headers=headers).status_code == 200
        response = radial(client, ra=165.0, headers=headers)
        assert response.status_code == 429
        assert response.headers["X-Proxy-Outcome"] == "shed"
        assert response.headers["Retry-After"] == str(
            retry_after_seconds(QUOTA_CONFIG)
        )
        payload = response.get_json()
        assert payload["reason"] == "quota"
        assert payload["shard"]


class TestShardsEndpoint:
    def test_topology_payload(self, client, router):
        radial(client)
        payload = client.get("/shards").get_json()
        assert {s["shard_id"] for s in payload["shards"]} == set(
            router.shard_ids
        )
        assert payload["failover"] is True
        assert payload["decisions_total"] == 1
        assert payload["drained"] == []

    def test_health_endpoint(self, client):
        response = client.get("/health")
        assert response.status_code == 200
        payload = response.get_json()
        assert payload["shards_total"] == 3
        assert payload["shards_up"] == 3

    def test_decisions_endpoint(self, client):
        radial(client)
        radial(client, ra=165.0)
        payload = client.get("/decisions?n=1").get_json()
        assert len(payload["decisions"]) == 1
        decision = payload["decisions"][0]
        assert decision["seq"] == 2
        assert decision["dispatched"] is not None


class TestDrainEndpoint:
    def test_drain_hands_off_and_conflicts_on_repeat(self, client):
        radial(client)
        first = client.post("/drain/shard-0")
        assert first.status_code == 200
        assert first.get_json()["handoff"]["source"] == "shard-0"
        assert client.post("/drain/shard-0").status_code == 409

    def test_unknown_shard_is_404(self, client):
        assert client.post("/drain/ghost").status_code == 404

    def test_drained_shard_visible_in_topology(self, client):
        client.post("/drain/shard-1")
        payload = client.get("/shards").get_json()
        assert payload["drained"] == ["shard-1"]
