"""The observability surface of both Flask apps.

``/metrics`` (Prometheus text format) and ``/trace/recent`` on the
proxy and origin apps, plus the extended ``/stats`` percentiles.
Skips cleanly when Flask is not installed.
"""

import re

import pytest

flask = pytest.importorskip("flask")

from repro.core.proxy import FunctionProxy
from repro.obs import ProxyInstrumentation, SpanTracer
from repro.webapp.origin_app import create_origin_app
from repro.webapp.proxy_app import create_proxy_app

RADIAL = "/search/Radial?ra=164&dec=8&radius=10"

#: A valid Prometheus sample line: name{labels} value.
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"(-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|\+Inf|-Inf|NaN)$"
)


def assert_valid_exposition(text: str) -> None:
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert SAMPLE_LINE.match(line), f"bad sample line: {line!r}"


@pytest.fixture()
def traced_proxy(origin):
    return FunctionProxy(
        origin,
        origin.templates,
        instrumentation=ProxyInstrumentation(tracer=SpanTracer()),
    )


@pytest.fixture()
def proxy_client(traced_proxy):
    return create_proxy_app(traced_proxy).test_client()


@pytest.fixture()
def origin_client(origin):
    return create_origin_app(origin).test_client()


class TestProxyMetricsEndpoint:
    def test_prometheus_round_trip(self, proxy_client):
        proxy_client.get(RADIAL)
        proxy_client.get(RADIAL)
        response = proxy_client.get("/metrics")
        assert response.status_code == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.get_data(as_text=True)
        assert_valid_exposition(text)
        lines = text.splitlines()
        assert "# TYPE proxy_queries_total counter" in lines
        assert (
            'proxy_queries_total{status="disjoint",'
            'template="skyserver.radial"} 1' in lines
        )
        assert (
            'proxy_queries_total{status="exact",'
            'template="skyserver.radial"} 1' in lines
        )
        assert "# TYPE proxy_step_sim_ms histogram" in lines
        assert any(
            line.startswith('proxy_step_sim_ms_bucket{step="origin"')
            for line in lines
        )
        assert "# TYPE proxy_cache_bytes gauge" in lines
        assert any(line.startswith("proxy_cache_bytes ") for line in lines)
        assert any(line.startswith("proxy_cache_entries ") for line in lines)

    def test_metrics_track_cache_clear(self, proxy_client):
        proxy_client.get(RADIAL)
        proxy_client.post("/cache/clear")
        text = proxy_client.get("/metrics").get_data(as_text=True)
        assert "proxy_cache_entries 0" in text.splitlines()
        assert "proxy_cache_invalidations_total 1" in text.splitlines()


class TestProxyTraceEndpoint:
    def test_recent_spans_round_trip(self, proxy_client):
        proxy_client.get(RADIAL)
        proxy_client.get(RADIAL)
        payload = proxy_client.get("/trace/recent").get_json()
        assert payload["enabled"] is True
        queries = [s for s in payload["spans"] if s["name"] == "query"]
        assert [q["attrs"]["status"] for q in queries] == [
            "disjoint", "exact"
        ]
        assert all("wall_ms" in span for span in payload["spans"])

    def test_limit_parameter(self, proxy_client):
        for _ in range(3):
            proxy_client.get(RADIAL)
        payload = proxy_client.get("/trace/recent?n=2").get_json()
        assert len(payload["spans"]) == 2

    def test_disabled_tracer_reports_empty(self, origin):
        client = create_proxy_app(
            FunctionProxy(origin, origin.templates)
        ).test_client()
        client.get(RADIAL)
        payload = client.get("/trace/recent").get_json()
        assert payload == {"enabled": False, "spans": []}


class TestStatsPercentiles:
    def test_check_wall_summary_in_stats(self, proxy_client):
        proxy_client.get(RADIAL)
        proxy_client.get("/search/Radial?ra=164&dec=8&radius=4")
        payload = proxy_client.get("/stats").get_json()
        summary = payload["check_wall_ms"]
        assert set(summary) == {"p50", "p95", "max"}
        assert 0.0 < summary["p50"] <= summary["max"]
        # The paper's claim: description checking stays under 100 ms.
        assert summary["max"] < 100.0


class TestOriginObsEndpoints:
    def test_metrics_round_trip(self, origin_client):
        origin_client.get(RADIAL)
        response = origin_client.get("/metrics")
        assert response.status_code == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = response.get_data(as_text=True)
        assert_valid_exposition(text)
        lines = text.splitlines()
        assert "# TYPE origin_requests_total counter" in lines
        assert any(
            line.startswith('origin_requests_total{kind="form"}')
            for line in lines
        )
        assert any(
            line.startswith("origin_data_version ") for line in lines
        )

    def test_trace_recent_disabled_by_default(self, origin_client):
        payload = origin_client.get("/trace/recent").get_json()
        assert payload["enabled"] is False
        assert payload["spans"] == []
