"""Admission over HTTP: 429/503 mapping and the status endpoint."""

import pytest

flask = pytest.importorskip("flask")

from repro.admission import (
    AdmissionConfig,
    AdmissionController,
    TenantQuota,
)
from repro.core.proxy import FunctionProxy
from repro.webapp.proxy_app import create_proxy_app


@pytest.fixture()
def proxy(origin):
    controller = AdmissionController(
        AdmissionConfig(
            quotas={"metered": TenantQuota(rate_per_s=0.001, burst=1.0)}
        )
    )
    return FunctionProxy(origin, origin.templates, admission=controller)


@pytest.fixture()
def client(proxy):
    return create_proxy_app(proxy).test_client()


def radial(client, ra=164.0, **kwargs):
    return client.get(f"/search/Radial?ra={ra}&dec=8&radius=10", **kwargs)


class TestOverloadStatuses:
    def test_shed_is_429_with_reason(self, client):
        headers = {"X-Tenant": "metered"}
        assert radial(client, headers=headers).status_code == 200
        response = radial(client, ra=165.0, headers=headers)
        assert response.status_code == 429
        assert response.headers["X-Proxy-Outcome"] == "shed"
        payload = response.get_json()
        assert payload["reason"] == "quota"

    def test_shed_carries_retry_after(self, proxy, client):
        from repro.admission import retry_after_seconds

        headers = {"X-Tenant": "metered"}
        radial(client, headers=headers)
        response = radial(client, ra=165.0, headers=headers)
        assert response.status_code == 429
        expected = retry_after_seconds(proxy.admission.config)
        assert response.headers["Retry-After"] == str(expected)
        # Derived from the breaker cooldown, whole seconds, >= 1.
        assert expected >= 1

    def test_unmetered_tenant_is_unaffected(self, client):
        for ra in (164.0, 165.0, 166.0):
            assert radial(client, ra=ra).status_code == 200

    def test_queued_timeout_maps_to_503(self, proxy, client, monkeypatch):
        from repro.core.stats import QueryOutcome

        # A queued-timeout record only arises from the event-driven
        # frontend; fake one at the serve layer to pin the mapping.
        real_bind = proxy.templates.bind_form

        def timed_out(form_name, values, tenant="default"):
            bound = real_bind(form_name, values)
            return proxy.reject(
                bound,
                "deadline",
                QueryOutcome.QUEUED_TIMEOUT,
                queue_wait_ms=100.0,
            )

        monkeypatch.setattr(proxy, "serve_form", timed_out)
        response = radial(client)
        assert response.status_code == 503
        assert response.headers["X-Proxy-Outcome"] == "queued-timeout"
        assert "Retry-After" in response.headers
        assert response.get_json()["reason"] == "deadline"


class TestAdmissionEndpoint:
    def test_disabled_without_controller(self, origin):
        bare = FunctionProxy(origin, origin.templates)
        client = create_proxy_app(bare).test_client()
        payload = client.get("/admission").get_json()
        assert payload["enabled"] is False

    def test_snapshot_reports_counters(self, client):
        headers = {"X-Tenant": "metered"}
        radial(client, headers=headers)
        radial(client, ra=165.0, headers=headers)  # quota shed
        payload = client.get("/admission").get_json()
        assert payload["enabled"] is True
        assert payload["submitted"] == 2
        assert payload["admitted"] == 1
        assert payload["shed"] == 1
        assert payload["shed_by_reason"] == {"quota": 1}
        assert payload["quota_denials"] == {"metered": 1}
        assert payload["overload_state"] == "closed"
        assert payload["config"]["tenants"] == ["metered"]
