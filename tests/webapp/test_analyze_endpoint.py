"""``GET /analyze`` on both Flask apps."""

import pytest

flask = pytest.importorskip("flask")

from repro.core.proxy import FunctionProxy
from repro.templates.manager import TemplateManager
from repro.templates.query_template import QueryTemplate
from repro.templates.skyserver_templates import (
    radial_function_template,
    register_skyserver_templates,
)
from repro.webapp.origin_app import create_origin_app
from repro.webapp.proxy_app import create_proxy_app


@pytest.fixture()
def origin_client(origin):
    return create_origin_app(origin).test_client()


class TestOriginAnalyze:
    def test_builtin_templates_report_no_errors(self, origin_client):
        payload = origin_client.get("/analyze").get_json()
        assert payload["errors"] == 0
        # The nearest template's TOP 1 shows up as informational.
        codes = {d["code"] for d in payload["diagnostics"]}
        assert codes == {"FP208"}

    def test_diagnostics_carry_spans(self, origin_client):
        payload = origin_client.get("/analyze").get_json()
        (diagnostic,) = payload["diagnostics"]
        assert diagnostic["severity"] == "info"
        assert diagnostic["span"]["source"] == "skyserver.nearest.sql"


class TestProxyAnalyze:
    def test_clean_proxy_reports_no_degraded_templates(self, origin):
        client = create_proxy_app(
            FunctionProxy(origin, origin.templates)
        ).test_client()
        payload = client.get("/analyze").get_json()
        assert payload["errors"] == 0
        assert payload["degraded_templates"] == []

    def test_degraded_template_listed(self, origin):
        manager = TemplateManager(analysis_mode="permissive")
        register_skyserver_templates(manager)
        manager.register_query_template(
            QueryTemplate.from_sql(
                template_id="t.bad",
                sql=(
                    "SELECT p.objID, p.cx, p.cy "
                    "FROM fGetNearbyObjEq($ra, $dec, $radius) n "
                    "JOIN PhotoPrimary p ON n.objID = p.objID"
                ),
                function_template=radial_function_template(),
                key_column="objID",
                checked=False,
            )
        )
        client = create_proxy_app(
            FunctionProxy(origin, manager)
        ).test_client()
        payload = client.get("/analyze").get_json()
        assert payload["errors"] >= 1
        assert payload["degraded_templates"] == ["t.bad"]
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "FP206" in codes
