"""Region shape construction and membership."""

import math

import pytest

from repro.geometry.regions import (
    ConvexPolytope,
    DifferenceRegion,
    GeometryError,
    Halfspace,
    HyperRect,
    HyperSphere,
    UnionRegion,
)


class TestHyperRect:
    def test_contains_interior_point(self):
        rect = HyperRect((0.0, 0.0), (2.0, 3.0))
        assert rect.contains_point((1.0, 1.5))

    def test_boundary_is_inclusive(self):
        rect = HyperRect((0.0,), (2.0,))
        assert rect.contains_point((0.0,))
        assert rect.contains_point((2.0,))

    def test_excludes_outside_point(self):
        rect = HyperRect((0.0, 0.0), (2.0, 3.0))
        assert not rect.contains_point((2.5, 1.0))
        assert not rect.contains_point((1.0, -0.1))

    def test_dims(self):
        assert HyperRect((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)).dims == 3

    def test_point_dimension_mismatch_raises(self):
        rect = HyperRect((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(GeometryError):
            rect.contains_point((0.5,))

    def test_mismatched_bounds_raise(self):
        with pytest.raises(GeometryError):
            HyperRect((0.0, 0.0), (1.0,))

    def test_zero_dimensional_raises(self):
        with pytest.raises(GeometryError):
            HyperRect((), ())

    def test_inverted_bounds_are_empty(self):
        assert HyperRect((2.0,), (1.0,)).is_empty()
        assert not HyperRect((1.0,), (2.0,)).is_empty()

    def test_corners_count(self):
        rect = HyperRect((0.0, 0.0, 0.0), (1.0, 2.0, 3.0))
        corners = set(rect.corners())
        assert len(corners) == 8
        assert (0.0, 2.0, 3.0) in corners

    def test_intersect_overlapping(self):
        a = HyperRect((0.0, 0.0), (2.0, 2.0))
        b = HyperRect((1.0, 1.0), (3.0, 3.0))
        assert a.intersect(b) == HyperRect((1.0, 1.0), (2.0, 2.0))

    def test_intersect_disjoint_is_none(self):
        a = HyperRect((0.0,), (1.0,))
        b = HyperRect((2.0,), (3.0,))
        assert a.intersect(b) is None

    def test_union_box_covers_both(self):
        a = HyperRect((0.0, 0.0), (1.0, 1.0))
        b = HyperRect((2.0, -1.0), (3.0, 0.5))
        union = a.union_box(b)
        assert union == HyperRect((0.0, -1.0), (3.0, 1.0))

    def test_from_center(self):
        rect = HyperRect.from_center((1.0, 1.0), (0.5, 2.0))
        assert rect == HyperRect((0.5, -1.0), (1.5, 3.0))

    def test_side_lengths(self):
        rect = HyperRect((0.0, 1.0), (2.0, 4.0))
        assert rect.side_lengths() == (2.0, 3.0)

    def test_bounding_box_is_self(self):
        rect = HyperRect((0.0,), (1.0,))
        assert rect.bounding_box() is rect


class TestHyperSphere:
    def test_contains_center(self):
        sphere = HyperSphere((1.0, 2.0, 3.0), 0.5)
        assert sphere.contains_point((1.0, 2.0, 3.0))

    def test_boundary_is_inclusive(self):
        sphere = HyperSphere((0.0, 0.0), 1.0)
        assert sphere.contains_point((1.0, 0.0))
        assert sphere.contains_point((0.0, -1.0))

    def test_excludes_outside(self):
        sphere = HyperSphere((0.0, 0.0), 1.0)
        assert not sphere.contains_point((0.8, 0.8))

    def test_negative_radius_raises(self):
        with pytest.raises(GeometryError):
            HyperSphere((0.0,), -1.0)

    def test_zero_radius_contains_only_center(self):
        sphere = HyperSphere((1.0,), 0.0)
        assert sphere.contains_point((1.0,))
        assert not sphere.contains_point((1.001,))
        assert not sphere.is_empty()

    def test_bounding_box(self):
        sphere = HyperSphere((1.0, -1.0), 2.0)
        assert sphere.bounding_box() == HyperRect((-1.0, -3.0), (3.0, 1.0))

    def test_center_distance(self):
        a = HyperSphere((0.0, 0.0), 1.0)
        b = HyperSphere((3.0, 4.0), 1.0)
        assert a.center_distance(b) == pytest.approx(5.0)


class TestHalfspaceAndPolytope:
    def test_halfspace_membership(self):
        # x + y <= 1
        half = Halfspace((1.0, 1.0), 1.0)
        assert half.contains_point((0.0, 0.0))
        assert half.contains_point((0.5, 0.5))
        assert not half.contains_point((1.0, 1.0))

    def test_zero_normal_raises(self):
        with pytest.raises(GeometryError):
            Halfspace((0.0, 0.0), 1.0)

    def test_normalized_preserves_boundary(self):
        half = Halfspace((3.0, 4.0), 10.0)
        unit = half.normalized()
        assert math.hypot(*unit.normal) == pytest.approx(1.0)
        # Point on the original boundary stays on the boundary.
        assert unit.contains_point((2.0, 1.0))

    def test_triangle_polytope(self):
        # The triangle x >= 0, y >= 0, x + y <= 1.
        triangle = ConvexPolytope(
            (
                Halfspace((-1.0, 0.0), 0.0),
                Halfspace((0.0, -1.0), 0.0),
                Halfspace((1.0, 1.0), 1.0),
            ),
            bbox=HyperRect((0.0, 0.0), (1.0, 1.0)),
        )
        assert triangle.contains_point((0.2, 0.2))
        assert not triangle.contains_point((0.8, 0.8))
        assert triangle.bounding_box() == HyperRect((0.0, 0.0), (1.0, 1.0))

    def test_polytope_needs_halfspaces(self):
        with pytest.raises(GeometryError):
            ConvexPolytope((), bbox=HyperRect((0.0,), (1.0,)))

    def test_polytope_dim_mismatch_raises(self):
        with pytest.raises(GeometryError):
            ConvexPolytope(
                (Halfspace((1.0, 0.0), 1.0),),
                bbox=HyperRect((0.0,), (1.0,)),
            )


class TestCompositeRegions:
    def test_difference_membership(self):
        base = HyperRect((0.0, 0.0), (4.0, 4.0))
        hole = HyperSphere((2.0, 2.0), 1.0)
        difference = DifferenceRegion(base, (hole,))
        assert difference.contains_point((0.5, 0.5))
        assert not difference.contains_point((2.0, 2.0))  # in the hole
        assert not difference.contains_point((5.0, 5.0))  # outside base

    def test_difference_bounding_box_is_base(self):
        base = HyperRect((0.0,), (4.0,))
        difference = DifferenceRegion(base, (HyperRect((1.0,), (2.0,)),))
        assert difference.bounding_box() == base

    def test_union_membership(self):
        union = UnionRegion(
            (HyperRect((0.0,), (1.0,)), HyperRect((2.0,), (3.0,)))
        )
        assert union.contains_point((0.5,))
        assert union.contains_point((2.5,))
        assert not union.contains_point((1.5,))

    def test_union_bounding_box(self):
        union = UnionRegion(
            (HyperRect((0.0,), (1.0,)), HyperRect((2.0,), (3.0,)))
        )
        assert union.bounding_box() == HyperRect((0.0,), (3.0,))

    def test_empty_union_raises(self):
        with pytest.raises(GeometryError):
            UnionRegion(())

    def test_difference_dim_mismatch_raises(self):
        with pytest.raises(GeometryError):
            DifferenceRegion(
                HyperRect((0.0,), (1.0,)),
                (HyperRect((0.0, 0.0), (1.0, 1.0)),),
            )
