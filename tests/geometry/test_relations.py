"""Pairwise region relation classification (the paper's query check)."""

import pytest

from repro.geometry.regions import (
    ConvexPolytope,
    GeometryError,
    Halfspace,
    HyperRect,
    HyperSphere,
)
from repro.geometry.relations import RegionRelation, relate


def rect(lo, hi):
    return HyperRect(tuple(lo), tuple(hi))


class TestRectRect:
    def test_equal(self):
        a = rect((0, 0), (2, 2))
        b = rect((0.0, 0.0), (2.0, 2.0))
        assert relate(a, b) is RegionRelation.EQUAL

    def test_contains(self):
        outer = rect((0, 0), (4, 4))
        inner = rect((1, 1), (2, 2))
        assert relate(outer, inner) is RegionRelation.CONTAINS
        assert relate(inner, outer) is RegionRelation.CONTAINED

    def test_overlap(self):
        a = rect((0, 0), (2, 2))
        b = rect((1, 1), (3, 3))
        assert relate(a, b) is RegionRelation.OVERLAP

    def test_disjoint(self):
        a = rect((0, 0), (1, 1))
        b = rect((2, 2), (3, 3))
        assert relate(a, b) is RegionRelation.DISJOINT

    def test_touching_edges_overlap(self):
        # Closed regions sharing a boundary point intersect.
        a = rect((0, 0), (1, 1))
        b = rect((1, 0), (2, 1))
        assert relate(a, b) is RegionRelation.OVERLAP

    def test_disjoint_in_one_dimension_only(self):
        a = rect((0, 0), (1, 1))
        b = rect((0.2, 5), (0.8, 6))  # overlaps in x, disjoint in y
        assert relate(a, b) is RegionRelation.DISJOINT

    def test_contains_with_shared_edge(self):
        outer = rect((0, 0), (4, 4))
        inner = rect((0, 1), (2, 2))  # flush against the left edge
        assert relate(outer, inner) is RegionRelation.CONTAINS


class TestSphereSphere:
    def test_equal(self):
        a = HyperSphere((1.0, 1.0), 2.0)
        b = HyperSphere((1.0, 1.0), 2.0)
        assert relate(a, b) is RegionRelation.EQUAL

    def test_concentric_contains(self):
        big = HyperSphere((0.0, 0.0), 2.0)
        small = HyperSphere((0.0, 0.0), 1.0)
        assert relate(big, small) is RegionRelation.CONTAINS
        assert relate(small, big) is RegionRelation.CONTAINED

    def test_offcenter_containment_boundary(self):
        # d + r_inner == r_outer: internal tangency counts as contained.
        outer = HyperSphere((0.0, 0.0), 3.0)
        inner = HyperSphere((1.0, 0.0), 2.0)
        assert relate(outer, inner) is RegionRelation.CONTAINS

    def test_offcenter_not_contained(self):
        outer = HyperSphere((0.0, 0.0), 3.0)
        inner = HyperSphere((1.5, 0.0), 2.0)
        assert relate(outer, inner) is RegionRelation.OVERLAP

    def test_disjoint(self):
        a = HyperSphere((0.0, 0.0), 1.0)
        b = HyperSphere((5.0, 0.0), 1.0)
        assert relate(a, b) is RegionRelation.DISJOINT

    def test_external_tangency_overlaps(self):
        a = HyperSphere((0.0,), 1.0)
        b = HyperSphere((2.0,), 1.0)
        assert relate(a, b) is RegionRelation.OVERLAP

    def test_3d(self):
        a = HyperSphere((0.0, 0.0, 0.0), 2.0)
        b = HyperSphere((0.5, 0.5, 0.5), 0.5)
        assert relate(a, b) is RegionRelation.CONTAINS


class TestRectSphere:
    def test_sphere_inside_rect(self):
        box = rect((-2, -2), (2, 2))
        ball = HyperSphere((0.0, 0.0), 1.0)
        assert relate(box, ball) is RegionRelation.CONTAINS
        assert relate(ball, box) is RegionRelation.CONTAINED

    def test_rect_inside_sphere(self):
        ball = HyperSphere((0.0, 0.0), 2.0)
        box = rect((-1, -1), (1, 1))  # corner distance sqrt(2) < 2
        assert relate(ball, box) is RegionRelation.CONTAINS
        assert relate(box, ball) is RegionRelation.CONTAINED

    def test_rect_corners_poke_out(self):
        ball = HyperSphere((0.0, 0.0), 1.0)
        box = rect((-0.9, -0.9), (0.9, 0.9))  # corners outside the ball
        assert relate(ball, box) is RegionRelation.OVERLAP

    def test_disjoint(self):
        ball = HyperSphere((5.0, 5.0), 1.0)
        box = rect((0, 0), (1, 1))
        assert relate(box, ball) is RegionRelation.DISJOINT
        assert relate(ball, box) is RegionRelation.DISJOINT

    def test_sphere_overlaps_rect_edge(self):
        ball = HyperSphere((0.0, 2.0), 1.5)
        box = rect((-1, -1), (1, 1))
        assert relate(box, ball) is RegionRelation.OVERLAP

    def test_degenerate_point_equal(self):
        ball = HyperSphere((1.0, 1.0), 0.0)
        box = rect((1, 1), (1, 1))
        assert relate(box, ball) is RegionRelation.EQUAL


class TestPolytope:
    def unit_square_polytope(self):
        return ConvexPolytope(
            (
                Halfspace((-1.0, 0.0), 0.0),   # x >= 0
                Halfspace((1.0, 0.0), 1.0),    # x <= 1
                Halfspace((0.0, -1.0), 0.0),   # y >= 0
                Halfspace((0.0, 1.0), 1.0),    # y <= 1
            ),
            bbox=rect((0, 0), (1, 1)),
        )

    def test_polytope_contains_rect(self):
        poly = self.unit_square_polytope()
        inner = rect((0.2, 0.2), (0.8, 0.8))
        assert relate(poly, inner) is RegionRelation.CONTAINS
        assert relate(inner, poly) is RegionRelation.CONTAINED

    def test_polytope_contains_sphere(self):
        poly = self.unit_square_polytope()
        ball = HyperSphere((0.5, 0.5), 0.4)
        assert relate(poly, ball) is RegionRelation.CONTAINS

    def test_polytope_disjoint_sphere(self):
        poly = self.unit_square_polytope()
        ball = HyperSphere((3.0, 3.0), 0.5)
        assert relate(poly, ball) is RegionRelation.DISJOINT

    def test_polytope_overlap_sphere(self):
        poly = self.unit_square_polytope()
        ball = HyperSphere((1.0, 0.5), 0.3)
        assert relate(poly, ball) is RegionRelation.OVERLAP

    def test_rect_contains_polytope_via_bbox(self):
        poly = self.unit_square_polytope()
        outer = rect((-1, -1), (2, 2))
        assert relate(outer, poly) is RegionRelation.CONTAINS
        assert relate(poly, outer) is RegionRelation.CONTAINED

    def test_polytope_disjoint_rect_by_halfspace(self):
        poly = self.unit_square_polytope()
        # A box beyond x <= 1 but whose bbox would intersect the
        # polytope's bbox if it were wider.
        outside = rect((1.5, 0.0), (2.0, 1.0))
        assert relate(poly, outside) is RegionRelation.DISJOINT

    def test_polytope_polytope_containment(self):
        big = ConvexPolytope(
            (Halfspace((1.0, 1.0), 10.0),),
            bbox=rect((-2, -2), (2, 2)),
        )
        small = self.unit_square_polytope()
        assert relate(big, small) is RegionRelation.CONTAINS


class TestRelateErrors:
    def test_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            relate(HyperSphere((0.0,), 1.0), HyperSphere((0.0, 0.0), 1.0))

    def test_flip(self):
        assert RegionRelation.CONTAINS.flip() is RegionRelation.CONTAINED
        assert RegionRelation.CONTAINED.flip() is RegionRelation.CONTAINS
        assert RegionRelation.EQUAL.flip() is RegionRelation.EQUAL
        assert RegionRelation.OVERLAP.flip() is RegionRelation.OVERLAP
        assert RegionRelation.DISJOINT.flip() is RegionRelation.DISJOINT
