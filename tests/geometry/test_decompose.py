"""Rectangle difference decomposition."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.decompose import (
    decompose_difference,
    subtract_rect,
    total_volume,
)
from repro.geometry.measure import region_volume
from repro.geometry.regions import GeometryError, HyperRect


def rect(lo, hi):
    return HyperRect(tuple(lo), tuple(hi))


class TestSubtractRect:
    def test_disjoint_hole_returns_base(self):
        base = rect((0, 0), (2, 2))
        assert subtract_rect(base, rect((5, 5), (6, 6))) == [base]

    def test_covering_hole_returns_empty(self):
        base = rect((0, 0), (2, 2))
        assert subtract_rect(base, rect((-1, -1), (3, 3))) == []

    def test_center_hole_yields_four_pieces_in_2d(self):
        base = rect((0, 0), (3, 3))
        pieces = subtract_rect(base, rect((1, 1), (2, 2)))
        assert len(pieces) == 4
        assert total_volume(pieces) == pytest.approx(9.0 - 1.0)

    def test_corner_hole_yields_two_pieces(self):
        base = rect((0, 0), (2, 2))
        pieces = subtract_rect(base, rect((1, 1), (3, 3)))
        assert len(pieces) == 2
        assert total_volume(pieces) == pytest.approx(4.0 - 1.0)

    def test_3d_slab_count(self):
        base = rect((0, 0, 0), (2, 2, 2))
        pieces = subtract_rect(base, rect((0.5, 0.5, 0.5), (1.5, 1.5, 1.5)))
        assert len(pieces) == 6  # 2 per dimension
        assert total_volume(pieces) == pytest.approx(8.0 - 1.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(GeometryError):
            subtract_rect(rect((0,), (1,)), rect((0, 0), (1, 1)))


coordinate = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
extent = st.floats(min_value=0.1, max_value=5.0, allow_nan=False)


@st.composite
def boxes(draw, dims=2):
    lows = [draw(coordinate) for _ in range(dims)]
    highs = [low + draw(extent) for low in lows]
    return HyperRect(tuple(lows), tuple(highs))


GRID = [i / 7.0 for i in range(8)]


def sample_points(base: HyperRect):
    for u in GRID:
        for v in GRID:
            yield (
                base.lows[0] + u * (base.highs[0] - base.lows[0]),
                base.lows[1] + v * (base.highs[1] - base.lows[1]),
            )


@given(base=boxes(), holes=st.lists(boxes(), min_size=0, max_size=4))
@settings(max_examples=200, deadline=None)
def test_decomposition_is_pointwise_correct(base, holes):
    """A sampled point is covered by the pieces iff it is in the base
    and strictly inside no hole (up to boundary tolerance)."""
    pieces = decompose_difference(base, holes)
    for point in sample_points(base):
        in_pieces = any(piece.contains_point(point) for piece in pieces)
        strictly_in_hole = any(
            all(
                hole.lows[d] + 1e-9 < point[d] < hole.highs[d] - 1e-9
                for d in range(2)
            )
            for hole in holes
        )
        if strictly_in_hole:
            assert not in_pieces
        elif not any(hole.contains_point(point) for hole in holes):
            assert in_pieces


@given(base=boxes(), holes=st.lists(boxes(), min_size=0, max_size=4))
@settings(max_examples=200, deadline=None)
def test_volume_accounting(base, holes):
    """Pieces are disjoint and inside the base: their total volume never
    exceeds the base's, and with no holes it equals it."""
    pieces = decompose_difference(base, holes)
    assert total_volume(pieces) <= region_volume(base) + 1e-6
    if not holes:
        assert total_volume(pieces) == pytest.approx(region_volume(base))


@given(base=boxes(), hole=boxes())
@settings(max_examples=200, deadline=None)
def test_pieces_have_disjoint_interiors(base, hole):
    pieces = subtract_rect(base, hole)
    for i, a in enumerate(pieces):
        for b in pieces[i + 1:]:
            overlap = a.intersect(b)
            if overlap is not None:
                # Shared faces are allowed; positive volume is not.
                assert region_volume(overlap) == pytest.approx(0.0, abs=1e-9)
