"""Region volumes."""

import math

import pytest

from repro.geometry.measure import region_volume, unit_ball_volume
from repro.geometry.regions import (
    ConvexPolytope,
    GeometryError,
    Halfspace,
    HyperRect,
    HyperSphere,
)


def test_unit_ball_known_values():
    assert unit_ball_volume(1) == pytest.approx(2.0)
    assert unit_ball_volume(2) == pytest.approx(math.pi)
    assert unit_ball_volume(3) == pytest.approx(4.0 / 3.0 * math.pi)


def test_unit_ball_rejects_bad_dimension():
    with pytest.raises(GeometryError):
        unit_ball_volume(0)


def test_rect_volume():
    assert region_volume(HyperRect((0.0, 0.0), (2.0, 3.0))) == pytest.approx(
        6.0
    )


def test_empty_rect_volume_is_zero():
    assert region_volume(HyperRect((2.0,), (1.0,))) == 0.0


def test_sphere_volume_scales_with_radius_power():
    small = region_volume(HyperSphere((0.0, 0.0, 0.0), 1.0))
    big = region_volume(HyperSphere((0.0, 0.0, 0.0), 2.0))
    assert big == pytest.approx(8.0 * small)


def test_polytope_volume_is_bbox_upper_bound():
    poly = ConvexPolytope(
        (Halfspace((1.0, 1.0), 1.0),),
        bbox=HyperRect((0.0, 0.0), (1.0, 1.0)),
    )
    assert region_volume(poly) == pytest.approx(1.0)
