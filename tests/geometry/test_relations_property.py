"""Property tests: relation classification agrees with point sampling.

The relation checker is the proxy's soundness linchpin — a wrong
CONTAINED answer makes the proxy fabricate results.  These properties
check the classifier against a membership oracle on sampled points:

* ``CONTAINED`` of (A, B) implies every sampled point of A is in B;
* ``DISJOINT`` implies no sampled point is in both;
* ``EQUAL`` implies membership agrees on every sampled point;
* flipping the argument order flips the relation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.regions import HyperRect, HyperSphere
from repro.geometry.relations import RegionRelation, relate

DIMS = 2

coordinate = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
radius = st.floats(min_value=0.01, max_value=30.0, allow_nan=False)


@st.composite
def spheres(draw):
    center = tuple(draw(coordinate) for _ in range(DIMS))
    return HyperSphere(center, draw(radius))


@st.composite
def rects(draw):
    center = tuple(draw(coordinate) for _ in range(DIMS))
    half = tuple(draw(radius) for _ in range(DIMS))
    return HyperRect.from_center(center, half)


regions = st.one_of(spheres(), rects())


def sample_points(region, rng_values):
    """Deterministic sample points inside the region's bounding box."""
    box = region.bounding_box()
    points = []
    for u, v in rng_values:
        points.append(
            tuple(
                lo + t * (hi - lo)
                for lo, hi, t in zip(box.lows, box.highs, (u, v))
            )
        )
    # Include the box corners and center.
    points.extend(box.corners())
    points.append(
        tuple((lo + hi) / 2 for lo, hi in zip(box.lows, box.highs))
    )
    return [p for p in points if region.contains_point(p)]


grid = [
    (u / 6.0, v / 6.0) for u in range(7) for v in range(7)
]


@given(first=regions, second=regions)
@settings(max_examples=300, deadline=None)
def test_relation_agrees_with_membership_oracle(first, second):
    relation = relate(first, second)
    first_points = sample_points(first, grid)
    second_points = sample_points(second, grid)

    if relation is RegionRelation.EQUAL:
        assert all(second.contains_point(p) for p in first_points)
        assert all(first.contains_point(p) for p in second_points)
    elif relation is RegionRelation.CONTAINS:
        assert all(first.contains_point(p) for p in second_points)
    elif relation is RegionRelation.CONTAINED:
        assert all(second.contains_point(p) for p in first_points)
    elif relation is RegionRelation.DISJOINT:
        assert not any(second.contains_point(p) for p in first_points)
        assert not any(first.contains_point(p) for p in second_points)


@given(first=regions, second=regions)
@settings(max_examples=300, deadline=None)
def test_relation_flip_is_consistent(first, second):
    assert relate(second, first) is relate(first, second).flip()


@given(region=regions)
@settings(max_examples=100, deadline=None)
def test_every_region_equals_itself(region):
    assert relate(region, region) is RegionRelation.EQUAL


@given(region=regions)
@settings(max_examples=100, deadline=None)
def test_bounding_box_contains_region_samples(region):
    box = region.bounding_box()
    for point in sample_points(region, grid):
        assert box.contains_point(point)
