"""The repository lint rules (FP301-FP312) on synthetic modules."""

import pathlib

from repro.analysis.pylint_rules import lint_file, run_lint

SRC_REPRO = (
    pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
)


def lint(tmp_path, relpath: str, source: str):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(path)


class TestWallClockRule:
    def test_time_time_flagged(self, tmp_path):
        report = lint(
            tmp_path, "repro/core/x.py", "import time\nt = time.time()\n"
        )
        assert report.codes() == {"FP301"}
        (diagnostic,) = report
        assert diagnostic.span.line == 2

    def test_from_import_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/harness/x.py",
            "from time import perf_counter\nt = perf_counter()\n",
        )
        assert report.codes() == {"FP301"}

    def test_module_alias_flagged(self, tmp_path):
        report = lint(
            tmp_path, "repro/core/x.py", "import time as t\nx = t.monotonic()\n"
        )
        assert report.codes() == {"FP301"}

    def test_datetime_now_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "from datetime import datetime\nd = datetime.now()\n",
        )
        assert report.codes() == {"FP301"}

    def test_obs_package_exempt(self, tmp_path):
        report = lint(
            tmp_path, "repro/obs/x.py", "import time\nt = time.time()\n"
        )
        assert len(report) == 0

    def test_simulated_clock_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/network/clock.py",
            "import time\nt = time.time()\n",
        )
        assert len(report) == 0

    def test_time_sleep_is_not_a_clock_read(self, tmp_path):
        report = lint(
            tmp_path, "repro/core/x.py", "import time\ntime.sleep(1)\n"
        )
        assert len(report) == 0


class TestFloatEqualityRule:
    def test_float_literal_equality_flagged(self, tmp_path):
        report = lint(tmp_path, "repro/core/x.py", "ok = x == 0.5\n")
        assert report.codes() == {"FP302"}

    def test_negative_float_inequality_flagged(self, tmp_path):
        report = lint(tmp_path, "repro/core/x.py", "ok = x != -0.5\n")
        assert report.codes() == {"FP302"}

    def test_integer_equality_allowed(self, tmp_path):
        report = lint(tmp_path, "repro/core/x.py", "ok = x == 1\n")
        assert len(report) == 0

    def test_float_ordering_allowed(self, tmp_path):
        report = lint(tmp_path, "repro/core/x.py", "ok = x < 0.5\n")
        assert len(report) == 0

    def test_geometry_package_exempt(self, tmp_path):
        report = lint(tmp_path, "repro/geometry/x.py", "ok = x == 0.5\n")
        assert len(report) == 0


class TestErrorHierarchyRule:
    def test_bare_builtin_raise_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/templates/x.py",
            "def f():\n    raise ValueError('nope')\n",
        )
        assert report.codes() == {"FP303"}

    def test_errors_module_import_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/templates/x.py",
            "from repro.templates.errors import TemplateError\n"
            "def f():\n    raise TemplateError('x')\n",
        )
        assert len(report) == 0

    def test_lower_layer_errors_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/templates/x.py",
            "from repro.relational.errors import ExecutionError\n"
            "def f():\n    raise ExecutionError('x')\n",
        )
        assert len(report) == 0

    def test_local_subclass_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/sqlparser/x.py",
            "from repro.sqlparser.errors import ParseError\n"
            "class Lexical(ParseError):\n    pass\n"
            "def f():\n    raise Lexical('x')\n",
        )
        assert len(report) == 0

    def test_not_implemented_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/relational/x.py",
            "def f():\n    raise NotImplementedError\n",
        )
        assert len(report) == 0

    def test_reraised_variable_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/templates/x.py",
            "def f(exc):\n    raise exc\n",
        )
        assert len(report) == 0

    def test_errors_module_itself_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/templates/errors.py",
            "class X(ValueError):\n    pass\n"
            "def f():\n    raise RuntimeError('meta')\n",
        )
        assert len(report) == 0

    def test_other_packages_unconstrained(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "def f():\n    raise ValueError('fine here')\n",
        )
        assert len(report) == 0


class TestUnseededRandomRule:
    def test_module_level_call_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "import random\nx = random.randrange(10)\n",
        )
        assert report.codes() == {"FP305"}

    def test_unseeded_constructor_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "import random\nrng = random.Random()\n",
        )
        assert report.codes() == {"FP305"}

    def test_from_import_call_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/workload/x.py",
            "from random import random\nx = random()\n",
        )
        assert report.codes() == {"FP305"}

    def test_from_import_unseeded_random_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/faults/x.py",
            "from random import Random\nrng = Random()\n",
        )
        assert report.codes() == {"FP305"}

    def test_seeded_constructor_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/faults/x.py",
            "import random\nrng = random.Random(42)\n",
        )
        assert len(report) == 0

    def test_seeded_from_import_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/faults/x.py",
            "from random import Random\nrng = Random(seed)\n",
        )
        assert len(report) == 0

    def test_instance_methods_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/faults/x.py",
            "from random import Random\nrng = Random(1)\n"
            "x = rng.random()\n",
        )
        assert len(report) == 0

    def test_tests_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "tests/core/x.py",
            "import random\nx = random.random()\n",
        )
        assert len(report) == 0


class TestManualContextRule:
    def test_manual_enter_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "span = tracer.span('serve')\nspan.__enter__()\n",
        )
        assert report.codes() == {"FP306"}
        (diagnostic,) = report
        assert diagnostic.span.line == 2
        assert "with" in diagnostic.hint

    def test_manual_exit_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "span.__exit__(None, None, None)\n",
        )
        assert report.codes() == {"FP306"}

    def test_with_block_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "with tracer.span('serve') as span:\n    pass\n",
        )
        assert len(report) == 0

    def test_other_dunder_calls_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "n = xs.__len__()\n",
        )
        assert len(report) == 0

    def test_obs_package_exempt(self, tmp_path):
        # QueryObservation legitimately delegates its context-manager
        # protocol to its root span.
        report = lint(
            tmp_path,
            "repro/obs/x.py",
            "self._root.__enter__()\n",
        )
        assert len(report) == 0

    def test_tests_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "tests/obs/x.py",
            "span.__enter__()\n",
        )
        assert len(report) == 0


class TestNonAtomicWriteRule:
    def test_open_write_mode_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/harness/x.py",
            "with open(p, 'w') as h:\n    h.write(s)\n",
        )
        assert report.codes() == {"FP307"}
        (diagnostic,) = report
        assert "atomic_write_text" in diagnostic.hint

    def test_open_mode_keyword_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "h = open(p, mode='wb')\n",
        )
        assert report.codes() == {"FP307"}

    def test_exclusive_creation_flagged(self, tmp_path):
        report = lint(tmp_path, "repro/core/x.py", "h = open(p, 'x')\n")
        assert report.codes() == {"FP307"}

    def test_path_write_text_flagged(self, tmp_path):
        report = lint(
            tmp_path, "repro/core/x.py", "path.write_text(payload)\n"
        )
        assert report.codes() == {"FP307"}

    def test_path_write_bytes_flagged(self, tmp_path):
        report = lint(
            tmp_path, "repro/core/x.py", "path.write_bytes(payload)\n"
        )
        assert report.codes() == {"FP307"}

    def test_read_mode_allowed(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "a = open(p)\nb = open(p, 'rb')\n",
        )
        assert len(report) == 0

    def test_append_mode_allowed(self, tmp_path):
        # Appends are the journal's own idiom (obs/spans.py exports).
        report = lint(tmp_path, "repro/obs/x.py", "h = open(p, 'a')\n")
        assert len(report) == 0

    def test_update_mode_allowed(self, tmp_path):
        # In-place patches (the crash injector's bitflip) do not
        # truncate, so they cannot tear the whole file.
        report = lint(
            tmp_path, "repro/faults/x.py", "h = open(p, 'r+b')\n"
        )
        assert len(report) == 0

    def test_persistence_package_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/persistence/x.py",
            "with open(p, 'w') as h:\n    h.write(s)\n",
        )
        assert len(report) == 0

    def test_tests_exempt(self, tmp_path):
        report = lint(
            tmp_path, "tests/core/x.py", "path.write_text('x')\n"
        )
        assert len(report) == 0


class TestBenchPrintRule:
    def test_print_in_bench_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "benchmarks/bench_demo.py",
            "print('nc response', 2081.4)\n",
        )
        assert report.codes() == {"FP308"}

    def test_non_bench_module_exempt(self, tmp_path):
        report = lint(tmp_path, "benchmarks/conftest.py", "print('x')\n")
        assert len(report) == 0

    def test_bench_without_print_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "benchmarks/bench_demo.py",
            "def test_x(bench_report):\n"
            "    report = bench_report('demo')\n"
            "    report.metric('m', 1.0, unit='ms')\n"
            "    report.finish()\n",
        )
        assert len(report) == 0


class TestRawLockRule:
    def test_threading_lock_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "import threading\nlock = threading.Lock()\n",
        )
        assert report.codes() == {"FP309"}
        (diagnostic,) = report
        assert diagnostic.span.line == 2

    def test_rlock_from_import_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/obs/x.py",
            "from threading import RLock\nlock = RLock()\n",
        )
        assert report.codes() == {"FP309"}

    def test_condition_and_semaphore_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "import threading\n"
            "c = threading.Condition()\n"
            "s = threading.Semaphore(2)\n",
        )
        assert report.count_by_code() == {"FP309": 2}

    def test_module_alias_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "import threading as t\nlock = t.RLock()\n",
        )
        assert report.codes() == {"FP309"}

    def test_locking_module_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/locking.py",
            "import threading\nlock = threading.RLock()\n",
        )
        assert len(report) == 0

    def test_tests_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "tests/test_x.py",
            "import threading\nlock = threading.Lock()\n",
        )
        assert len(report) == 0

    def test_named_lock_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "from repro.locking import named_lock\n"
            "lock = named_lock('proxy.cache')\n",
        )
        assert len(report) == 0

    def test_unrelated_lock_name_clean(self, tmp_path):
        # Only the threading module's factories count; a local helper
        # that happens to be called Lock is not this rule's business.
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "from mylib import Lock\nlock = Lock()\n",
        )
        assert len(report) == 0


class TestUnboundedQueueRule:
    def test_unbounded_deque_in_serve_path_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/proxy.py",
            "from collections import deque\nq = deque()\n",
        )
        assert report.codes() == {"FP310"}
        (diagnostic,) = report
        assert diagnostic.span.line == 2

    def test_bounded_deque_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/admission/controller.py",
            "from collections import deque\nq = deque(maxlen=64)\n",
        )
        assert len(report) == 0

    def test_positional_maxlen_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/sched/loop.py",
            "import collections\nq = collections.deque([], 8)\n",
        )
        assert len(report) == 0

    def test_unbounded_queue_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/sched/frontend.py",
            "import queue\n"
            "a = queue.Queue()\n"
            "b = queue.LifoQueue(0)\n"
            "c = queue.PriorityQueue(maxsize=-1)\n",
        )
        assert report.count_by_code() == {"FP310": 3}

    def test_bounded_queue_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/cache.py",
            "from queue import Queue\nq = Queue(maxsize=16)\n",
        )
        assert len(report) == 0

    def test_simple_queue_always_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/stats.py",
            "import queue\nq = queue.SimpleQueue()\n",
        )
        assert report.codes() == {"FP310"}

    def test_off_serve_path_module_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/harness/x.py",
            "from collections import deque\nq = deque()\n",
        )
        assert len(report) == 0

    def test_pragma_opts_a_module_in(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/harness/x.py",
            "# concurrency: serve-path\n"
            "from collections import deque\nq = deque()\n",
        )
        assert report.codes() == {"FP310"}

    def test_tests_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "tests/test_x.py",
            "from collections import deque\nq = deque()\n",
        )
        assert len(report) == 0

    def test_unrelated_deque_name_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/proxy.py",
            "from mylib import deque\nq = deque()\n",
        )
        assert len(report) == 0


class TestEventCodeRule:
    """FP311: flight-recorder emissions must use pinned EV codes."""

    def test_adhoc_literal_on_emit_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "self.events.emit('EV99', at_ms=0.0)\n",
        )
        assert report.codes() == {"FP311"}

    def test_adhoc_literal_on_telemetry_event_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "obs.telemetry_event('bogus', at_ms=1.0)\n",
        )
        assert report.codes() == {"FP311"}

    def test_code_keyword_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/sched/x.py",
            "recorder.emit(code='EV99', at_ms=0.0)\n",
        )
        assert report.codes() == {"FP311"}

    def test_pinned_literal_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "self.events.emit('EV01', at_ms=0.0)\n",
        )
        assert len(report) == 0

    def test_name_reference_clean(self, tmp_path):
        # A code held in a variable is out of scope: only string
        # literals are judged.
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "self.events.emit(EV_BREAKER_OPEN, at_ms=0.0)\n",
        )
        assert len(report) == 0

    def test_mapping_lookup_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/core/x.py",
            "obs.telemetry_event("
            "BREAKER_EVENT_CODES[state.value], at_ms=now)\n",
        )
        assert len(report) == 0

    def test_diagnostics_style_emit_not_matched(self, tmp_path):
        # The diagnostics layer also has .emit() methods; without an
        # at_ms keyword or a recorder-like receiver name they are not
        # flight-recorder emissions.
        report = lint(
            tmp_path,
            "repro/analysis/x.py",
            "reporter.emit('FP102', 'message', node)\n",
        )
        assert len(report) == 0

    def test_tests_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "tests/obs/test_x.py",
            "events.emit('EV99', at_ms=0.0)\n",
        )
        assert len(report) == 0

    def test_events_module_exempt(self, tmp_path):
        # The registry module itself constructs codes freely.
        report = lint(
            tmp_path,
            "repro/obs/events.py",
            "self.emit('EV99', at_ms=0.0)\n",
        )
        assert len(report) == 0


class TestShardInternalImportRule:
    """FP312: shard internals stay behind the repro.cluster surface."""

    def test_from_import_of_submodule_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/harness/x.py",
            "from repro.cluster.handoff import export_cache\n",
        )
        assert report.codes() == {"FP312"}

    def test_plain_import_of_submodule_flagged(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/webapp/x.py",
            "import repro.cluster.router\n",
        )
        assert report.codes() == {"FP312"}

    def test_package_surface_clean(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/harness/x.py",
            "from repro.cluster import ShardRouter\n",
        )
        assert len(report) == 0

    def test_cluster_package_itself_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "repro/cluster/router.py",
            "from repro.cluster.ring import HashRing\n",
        )
        assert len(report) == 0

    def test_tests_exempt(self, tmp_path):
        report = lint(
            tmp_path,
            "tests/cluster/test_x.py",
            "from repro.cluster.ring import HashRing\n",
        )
        assert len(report) == 0


class TestDiagnosticFormatGolden:
    """Diagnostics render compiler-style with line AND column."""

    def test_rule_diagnostic_carries_line_and_column(self, tmp_path):
        path = tmp_path / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text("import threading\nlock = threading.Lock()\n")
        report = lint_file(path)
        (diagnostic,) = report
        assert (diagnostic.span.line, diagnostic.span.column) == (2, 8)
        rendered = diagnostic.format().splitlines()[0]
        assert rendered == (
            f"{path.as_posix()}:2:8: FP309 error: threading.Lock() "
            "constructs an anonymous lock the concurrency analyzer "
            "cannot name"
        )

    def test_syntax_error_diagnostic_carries_line_and_column(
        self, tmp_path
    ):
        path = tmp_path / "repro" / "core" / "x.py"
        path.parent.mkdir(parents=True)
        path.write_text("def broken(:\n")
        report = lint_file(path)
        (diagnostic,) = report
        assert diagnostic.code == "FP304"
        assert diagnostic.span is not None
        assert diagnostic.span.line == 1
        assert diagnostic.span.column >= 1
        first = diagnostic.format().splitlines()[0]
        assert first.startswith(
            f"{path.as_posix()}:1:{diagnostic.span.column}: "
            "FP304 error: cannot parse"
        )


class TestDriver:
    def test_fp304_syntax_error(self, tmp_path):
        report = lint(tmp_path, "repro/core/x.py", "def broken(:\n")
        assert report.codes() == {"FP304"}

    def test_run_lint_recurses_directories(self, tmp_path):
        (tmp_path / "repro" / "core").mkdir(parents=True)
        (tmp_path / "repro" / "core" / "a.py").write_text(
            "import time\nt = time.time()\n"
        )
        (tmp_path / "repro" / "core" / "b.py").write_text("ok = x == 0.5\n")
        report = run_lint([tmp_path])
        assert report.codes() == {"FP301", "FP302"}

    def test_the_repository_is_lint_clean(self):
        report = run_lint([SRC_REPRO])
        assert not report.has_errors, report.render()

    def test_the_benchmarks_are_lint_clean(self):
        benchmarks = SRC_REPRO.parents[1] / "benchmarks"
        report = run_lint([benchmarks])
        assert not report.has_errors, report.render()
