"""Golden pin of the diagnostic-code registry.

Codes are a public contract — operators filter ``/analyze`` output and
metrics by them — so any change to a code's existence, severity, or
paper-property mapping must consciously update this table.
"""

import pytest

from repro.analysis.codes import CODES, code_info, severity_of
from repro.analysis.diagnostics import Severity

#: code -> (severity, paper property or None)
GOLDEN = {
    "FP101": (Severity.ERROR, None),
    "FP102": (Severity.ERROR, None),
    "FP103": (Severity.ERROR, None),
    "FP104": (Severity.ERROR, None),
    "FP105": (Severity.ERROR, None),
    "FP106": (Severity.ERROR, None),
    "FP107": (Severity.ERROR, 2),
    "FP108": (Severity.WARNING, 2),
    "FP109": (Severity.ERROR, 4),
    "FP110": (Severity.ERROR, 1),
    "FP111": (Severity.WARNING, 1),
    "FP201": (Severity.ERROR, None),
    "FP202": (Severity.ERROR, 2),
    "FP203": (Severity.ERROR, 2),
    "FP204": (Severity.ERROR, 2),
    "FP205": (Severity.ERROR, 3),
    "FP206": (Severity.ERROR, 4),
    "FP207": (Severity.ERROR, None),
    "FP208": (Severity.INFO, None),
    "FP209": (Severity.ERROR, 1),
    "FP210": (Severity.ERROR, 1),
    "FP211": (Severity.ERROR, 1),
    "FP212": (Severity.ERROR, None),
    "FP213": (Severity.ERROR, None),
    "FP214": (Severity.WARNING, None),
    "FP301": (Severity.ERROR, None),
    "FP302": (Severity.ERROR, None),
    "FP303": (Severity.ERROR, None),
    "FP304": (Severity.ERROR, None),
    "FP305": (Severity.ERROR, 1),
    "FP306": (Severity.ERROR, None),
    "FP307": (Severity.ERROR, None),
    "FP308": (Severity.ERROR, None),
    "FP309": (Severity.ERROR, None),
    "FP310": (Severity.ERROR, None),
    "FP311": (Severity.ERROR, None),
    "FP312": (Severity.ERROR, None),
    "FP401": (Severity.ERROR, None),
    "FP402": (Severity.ERROR, None),
    "FP403": (Severity.ERROR, None),
    "FP404": (Severity.ERROR, None),
    "FP405": (Severity.ERROR, None),
    "FP406": (Severity.WARNING, None),
}


def test_every_code_is_pinned():
    assert set(CODES) == set(GOLDEN)


@pytest.mark.parametrize("code", sorted(GOLDEN))
def test_severity_and_property(code):
    severity, paper_property = GOLDEN[code]
    info = code_info(code)
    assert info.severity is severity
    assert info.paper_property == paper_property
    assert severity_of(code) is severity
    assert info.title  # every code documents itself


def test_codes_are_numerically_ordered_and_blocked():
    numbers = [int(code[2:]) for code in CODES]
    assert numbers == sorted(numbers)
    for code in CODES:
        # template / query / repo-lint / concurrency blocks
        assert code[2] in "1234"


def test_unknown_code_is_a_programming_error():
    with pytest.raises(KeyError):
        code_info("FP999")
