"""The offline CLI: ``python -m repro.analysis.concurrency``."""

import json
import pathlib
import textwrap

from repro.analysis.concurrency.__main__ import main

SRC_REPRO = (
    pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
)

UNGUARDED = """\
# concurrency: serve-path
from repro.locking import named_lock


class Worker:
    def __init__(self):
        self._lock = named_lock("fixture.state")
        self.count = 0  # guarded-by: fixture.state

    def bump(self):
        self.count += 1
"""

STALE = """\
# concurrency: serve-path
from repro.locking import guarded_by, named_lock


@guarded_by("fixture.state", "count")
class Worker:
    def __init__(self):
        self._lock = named_lock("fixture.state")
        self.count = 0
"""


def test_the_repository_is_concurrency_clean_under_strict():
    # The acceptance bar: the refactored tree has zero FP4xx findings,
    # stale-registration warnings included.
    assert main(["--strict", str(SRC_REPRO)]) == 0


def test_clean_module_exits_zero(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("VALUE = 1\n")
    assert main([str(tmp_path)]) == 0
    assert "no diagnostics" in capsys.readouterr().out


def test_guarded_write_violation_exits_one(tmp_path, capsys):
    (tmp_path / "fixture.py").write_text(UNGUARDED)
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "FP402" in out
    # Diagnostics carry line AND column numbers.
    assert ":11:9: FP402 error:" in out


def test_warnings_pass_unless_strict(tmp_path):
    (tmp_path / "fixture.py").write_text(STALE)
    assert main([str(tmp_path)]) == 0
    assert main(["--strict", str(tmp_path)]) == 1


def test_json_output_includes_the_lock_graph(tmp_path, capsys):
    (tmp_path / "fixture.py").write_text(
        textwrap.dedent(
            """\
            from repro.locking import named_lock


            class Pair:
                def __init__(self):
                    self._outer = named_lock("fixture.outer")
                    self._inner = named_lock("fixture.inner")

                def nest(self):
                    with self._outer:
                        with self._inner:
                            pass
            """
        )
    )
    assert main(["--json", str(tmp_path)]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["errors"] == 0
    assert ["fixture.outer", "fixture.inner"] in document[
        "lock_order_edges"
    ]
    assert document["lock_order_cycles"] == []


def test_graph_flag_prints_the_graph(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("VALUE = 1\n")
    assert main(["--graph", str(tmp_path)]) == 0
    assert "lock-order graph" in capsys.readouterr().out


def test_missing_path_exits_two(tmp_path):
    assert main([str(tmp_path / "nope")]) == 2


def test_unparseable_file_reports_fp304(tmp_path, capsys):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    assert main([str(tmp_path)]) == 1
    assert "FP304" in capsys.readouterr().out
