"""Info-file analysis: binding consistency (FP212-FP214) and the
structural XML checks the offline linter applies."""

from repro.analysis.analyzer import analyze_info_file, analyze_info_file_xml
from repro.templates.info_file import TemplateInfoFile
from repro.templates.skyserver_templates import (
    radial_info_file,
    radial_query_template,
)


def info(field_map, defaults=None) -> TemplateInfoFile:
    return TemplateInfoFile(
        form_name="Form",
        template_id="skyserver.radial",
        field_map=field_map,
        defaults=defaults or {},
    )


class TestBindingPasses:
    def test_builtin_info_file_is_clean(self):
        report = analyze_info_file(
            radial_info_file(), radial_query_template()
        )
        assert len(report) == 0

    def test_fp212_unknown_template(self):
        report = analyze_info_file(radial_info_file(), None)
        assert report.codes() == {"FP212"}
        assert report.has_errors

    def test_fp213_unbound_parameter(self):
        report = analyze_info_file(
            info({"ra": "ra", "dec": "dec"}), radial_query_template()
        )
        assert "FP213" in report.codes()
        unbound = {
            d.message.split("'")[1] for d in report if d.code == "FP213"
        }
        assert unbound == {"radius", "r_min", "r_max"}

    def test_fp213_satisfied_by_defaults(self):
        report = analyze_info_file(
            info(
                {"ra": "ra", "dec": "dec"},
                defaults={"radius": 1.0, "r_min": 0.0, "r_max": 1.0},
            ),
            radial_query_template(),
        )
        assert "FP213" not in report.codes()

    def test_fp214_stale_field_mapping_is_a_warning(self):
        mapping = dict(radial_info_file().field_map, legacy="limit")
        report = analyze_info_file(
            TemplateInfoFile(
                form_name="Form",
                template_id="skyserver.radial",
                field_map=mapping,
                defaults=radial_info_file().defaults,
            ),
            radial_query_template(),
        )
        assert "FP214" in report.codes()
        assert not report.has_errors


class TestStructuralXml:
    def test_builtin_round_trip_is_clean(self):
        report = analyze_info_file_xml(radial_info_file().to_xml())
        assert len(report) == 0

    def test_fp101_malformed_xml(self):
        report = analyze_info_file_xml("<TemplateInfo><FormName>x")
        assert report.codes() == {"FP101"}

    def test_fp102_wrong_root(self):
        report = analyze_info_file_xml("<NotAnInfoFile/>")
        assert report.codes() == {"FP102"}

    def test_fp102_missing_template_id(self):
        report = analyze_info_file_xml(
            "<TemplateInfo><FormName>Radial</FormName></TemplateInfo>"
        )
        assert "FP102" in report.codes()
        assert any("TemplateId" in d.message for d in report)

    def test_fp102_field_missing_attributes(self):
        report = analyze_info_file_xml(
            "<TemplateInfo><FormName>F</FormName>"
            "<TemplateId>t</TemplateId>"
            '<Fields><Field name="ra"/></Fields></TemplateInfo>'
        )
        assert "FP102" in report.codes()
