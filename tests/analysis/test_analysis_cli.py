"""The offline linter CLI: ``python -m repro.analysis``."""

import json

from repro.analysis.__main__ import main
from repro.templates.skyserver_templates import (
    radial_function_template,
    radial_info_file,
)


def test_builtin_templates_lint_clean(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    # The nearest template's TOP 1 is reported as info, never an error.
    assert "FP208" in out
    assert "0 error(s)" in out


def test_clean_xml_file_exits_zero(tmp_path, capsys):
    path = tmp_path / "radial.xml"
    path.write_text(radial_function_template().to_xml())
    assert main([str(path)]) == 0
    assert "no diagnostics" in capsys.readouterr().out


def test_bad_template_file_exits_one(tmp_path, capsys):
    path = tmp_path / "bad.xml"
    path.write_text(
        "<FunctionTemplate><Name>f</Name>"
        "<Params><Param>ra</Param></Params>"
        "<Shape>blob</Shape><NumDimensions>1</NumDimensions>"
        "<PointCoordinate><Expr>x</Expr></PointCoordinate>"
        "</FunctionTemplate>"
    )
    assert main([str(path)]) == 1
    assert "FP103" in capsys.readouterr().out


def test_info_files_are_sniffed(tmp_path, capsys):
    path = tmp_path / "info.xml"
    path.write_text(radial_info_file().to_xml())
    assert main([str(path)]) == 0


def test_directories_recurse(tmp_path, capsys):
    (tmp_path / "nested").mkdir()
    (tmp_path / "nested" / "bad.xml").write_text("<Nope/>")
    assert main([str(tmp_path)]) == 1
    assert "FP102" in capsys.readouterr().out


def test_unreadable_path_exits_two(tmp_path, capsys):
    assert main([str(tmp_path / "missing.xml")]) == 2


def test_json_output(tmp_path, capsys):
    path = tmp_path / "bad.xml"
    path.write_text("<Nope/>")
    assert main(["--json", str(path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 1
    assert payload["diagnostics"][0]["code"] == "FP102"
    assert payload["diagnostics"][0]["severity"] == "error"
