"""Query-template analysis: the paper's property checks (FP201-FP211)."""

import pytest

from repro.analysis.analyzer import analyze_query_template
from repro.templates.errors import TemplateAnalysisError, TemplateError
from repro.templates.query_template import QueryTemplate
from repro.templates.skyserver_templates import (
    nearest_query_template,
    radial_function_template,
    radial_query_template,
    rect_query_template,
)


def build(sql: str, key_column: str = "objID") -> QueryTemplate:
    """An unchecked template, so bad SQL still constructs."""
    return QueryTemplate.from_sql(
        template_id="t.bad",
        sql=sql,
        function_template=radial_function_template(),
        key_column=key_column,
        checked=False,
    )


GOOD_SQL = (
    "SELECT p.objID, p.cx, p.cy, p.cz "
    "FROM fGetNearbyObjEq($ra, $dec, $radius) n "
    "JOIN PhotoPrimary p ON n.objID = p.objID"
)


class TestPropertyPasses:
    def test_clean_template_has_no_diagnostics(self):
        report = analyze_query_template(build(GOOD_SQL))
        assert len(report) == 0

    def test_fp202_from_is_not_a_function(self):
        report = analyze_query_template(
            build("SELECT p.objID, p.cx, p.cy, p.cz FROM PhotoPrimary p")
        )
        assert report.codes() == {"FP202"}

    def test_fp203_function_name_mismatch(self):
        report = analyze_query_template(
            build(
                "SELECT n.objID, n.cx, n.cy, n.cz "
                "FROM fSomethingElse($ra, $dec, $radius) n"
            )
        )
        assert "FP203" in report.codes()

    def test_fp204_arity_mismatch(self):
        report = analyze_query_template(
            build(
                "SELECT n.objID, n.cx, n.cy, n.cz "
                "FROM fGetNearbyObjEq($ra, $dec) n"
            )
        )
        assert "FP204" in report.codes()

    def test_fp205_non_equi_join(self):
        report = analyze_query_template(
            build(
                "SELECT p.objID, p.cx, p.cy, p.cz "
                "FROM fGetNearbyObjEq($ra, $dec, $radius) n "
                "JOIN PhotoPrimary p ON n.objID < p.objID"
            )
        )
        assert "FP205" in report.codes()

    def test_fp206_missing_point_attribute_with_span(self):
        report = analyze_query_template(
            build(
                "SELECT p.objID, p.cx, p.cy "
                "FROM fGetNearbyObjEq($ra, $dec, $radius) n "
                "JOIN PhotoPrimary p ON n.objID = p.objID"
            )
        )
        diagnostic = next(d for d in report if d.code == "FP206")
        assert "cz" in diagnostic.message
        assert diagnostic.span is not None
        assert diagnostic.span.snippet.lower().startswith("select")

    def test_fp207_missing_key_column(self):
        report = analyze_query_template(
            build(
                "SELECT p.cx, p.cy, p.cz "
                "FROM fGetNearbyObjEq($ra, $dec, $radius) n "
                "JOIN PhotoPrimary p ON n.objID = p.objID"
            )
        )
        assert "FP207" in report.codes()

    def test_fp208_top_n_is_informational(self):
        report = analyze_query_template(nearest_query_template())
        assert report.codes() == {"FP208"}
        assert not report.has_errors

    def test_select_star_exposes_everything(self):
        report = analyze_query_template(
            build("SELECT * FROM fGetNearbyObjEq($ra, $dec, $radius) n")
        )
        assert len(report) == 0


class TestRegistryPasses:
    class Catalog:
        def __init__(self, has=True, deterministic=True):
            self.has = has
            self.deterministic = deterministic

        def has_scalar(self, name):
            return self.has

        def has_table(self, name):
            return self.has

        def is_deterministic(self, name):
            return self.deterministic

    def test_fp209_unregistered_function(self):
        report = analyze_query_template(
            build(GOOD_SQL), registry=self.Catalog(has=False)
        )
        assert "FP209" in report.codes()

    def test_fp210_nondeterministic_function(self):
        report = analyze_query_template(
            build(GOOD_SQL), registry=self.Catalog(deterministic=False)
        )
        assert "FP210" in report.codes()

    def test_clean_against_real_origin_catalog(self, origin):
        report = analyze_query_template(
            radial_query_template(), registry=origin.catalog.functions
        )
        assert len(report) == 0

    def test_partial_registry_is_tolerated(self):
        class DeterminismOnly:
            def is_deterministic(self, name):
                return True

        report = analyze_query_template(
            build(GOOD_SQL), registry=DeterminismOnly()
        )
        assert len(report) == 0


class TestConstructorFacade:
    def test_from_sql_still_rejects_bad_templates(self):
        with pytest.raises(TemplateAnalysisError, match="cz"):
            QueryTemplate.from_sql(
                template_id="t.bad",
                sql=(
                    "SELECT p.objID, p.cx, p.cy "
                    "FROM fGetNearbyObjEq($ra, $dec, $radius) n "
                    "JOIN PhotoPrimary p ON n.objID = p.objID"
                ),
                function_template=radial_function_template(),
                key_column="objID",
            )

    def test_analysis_error_carries_the_report(self):
        with pytest.raises(TemplateAnalysisError) as excinfo:
            build(GOOD_SQL.replace("p.cz", "p.type"))._check_structure()
        assert "FP206" in excinfo.value.report.codes()
        assert excinfo.value.subject == "t.bad"

    def test_analysis_error_is_a_template_error(self):
        with pytest.raises(TemplateError):
            build("SELECT p.objID FROM PhotoPrimary p")._check_structure()

    def test_builtin_templates_construct_checked(self):
        assert radial_query_template()
        assert rect_query_template()
        assert nearest_query_template()
