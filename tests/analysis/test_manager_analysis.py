"""Analyzer wiring at TemplateManager registration: strict rejection,
permissive degrade-to-pass-through, and the metrics feed."""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryStatus
from repro.templates.errors import TemplateAnalysisError, TemplateError
from repro.templates.manager import TemplateManager
from repro.templates.query_template import QueryTemplate
from repro.templates.skyserver_templates import (
    radial_function_template,
    radial_query_template,
    register_skyserver_templates,
)

#: A property-4 violation: the point attribute ``cz`` is missing from
#: the select list, so cached tuples could not be re-evaluated spatially.
BAD_RADIAL_SQL = (
    "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.type "
    "FROM fGetNearbyObjEq($ra, $dec, $radius) n "
    "JOIN PhotoPrimary p ON n.objID = p.objID "
    "WHERE p.r BETWEEN $r_min AND $r_max"
)

BAD_TEMPLATE_ID = "skyserver.radial.bad"


def bad_radial_template() -> QueryTemplate:
    return QueryTemplate.from_sql(
        template_id=BAD_TEMPLATE_ID,
        sql=BAD_RADIAL_SQL,
        function_template=radial_function_template(),
        key_column="objID",
        checked=False,
    )


def manager_with(mode: str) -> TemplateManager:
    manager = TemplateManager(analysis_mode=mode)
    manager.register_function_template(radial_function_template())
    return manager


class TestStrictMode:
    def test_bad_template_rejected_with_code_and_span(self):
        manager = manager_with("strict")
        with pytest.raises(TemplateAnalysisError) as excinfo:
            manager.register_query_template(bad_radial_template())
        report = excinfo.value.report
        diagnostic = next(d for d in report if d.code == "FP206")
        assert "cz" in diagnostic.message
        assert diagnostic.span is not None
        assert diagnostic.span.source == f"{BAD_TEMPLATE_ID}.sql"
        assert BAD_TEMPLATE_ID not in manager.query_template_ids()

    def test_good_template_registers_clean(self):
        manager = manager_with("strict")
        manager.register_query_template(radial_query_template())
        assert not manager.is_degraded("skyserver.radial")
        assert manager.analysis_diagnostics() == []

    def test_strict_is_the_default(self):
        assert TemplateManager().analysis_mode == "strict"

    def test_rejection_still_records_diagnostics(self):
        manager = manager_with("strict")
        with pytest.raises(TemplateAnalysisError):
            manager.register_query_template(bad_radial_template())
        assert any(
            d.code == "FP206" for d in manager.analysis_diagnostics()
        )


class TestPermissiveMode:
    def test_bad_template_admitted_but_degraded(self):
        manager = manager_with("permissive")
        manager.register_query_template(bad_radial_template())
        assert BAD_TEMPLATE_ID in manager.query_template_ids()
        assert manager.is_degraded(BAD_TEMPLATE_ID)
        assert not manager.is_degraded("skyserver.radial.other")

    def test_degraded_function_template_degrades_its_queries(self):
        manager = TemplateManager(analysis_mode="permissive")
        from repro.templates.function_template import FunctionTemplate
        from repro.sqlparser.parser import parse_expression

        # Point expression reads a $-parameter: FP109, an error.
        broken = FunctionTemplate(
            name="fBroken",
            params=("ra", "r"),
            shape=radial_function_template().shape,
            dims=1,
            center_exprs=(parse_expression("$ra"),),
            radius_expr=parse_expression("$r"),
            point_exprs=(parse_expression("x + $ra"),),
        )
        manager.register_function_template(broken)
        template = QueryTemplate.from_sql(
            template_id="t.broken",
            sql="SELECT n.objID, n.x FROM fBroken($ra, $r) n",
            function_template=broken,
            key_column="objID",
            checked=False,
        )
        manager.register_query_template(template)
        assert manager.is_degraded("t.broken")

    def test_observers_stream_diagnostics(self):
        manager = manager_with("permissive")
        seen = []
        manager.add_analysis_observer(seen.append)
        manager.register_query_template(bad_radial_template())
        assert [d.code for d in seen] == ["FP206"]


class TestOffMode:
    def test_no_analysis_no_degradation(self):
        manager = TemplateManager(analysis_mode="off")
        manager.register_function_template(radial_function_template())
        manager.register_query_template(bad_radial_template())
        assert not manager.is_degraded(BAD_TEMPLATE_ID)
        assert manager.analysis_diagnostics() == []

    def test_unknown_mode_rejected(self):
        with pytest.raises(TemplateError, match="analysis_mode"):
            TemplateManager(analysis_mode="lenient")


class TestProxyIntegration:
    """The acceptance scenario: a permissive manager admits a bad
    template; the proxy tunnels it forever and the violation shows up
    in ``/metrics``."""

    @pytest.fixture()
    def proxy(self, origin):
        manager = TemplateManager(analysis_mode="permissive")
        register_skyserver_templates(manager)
        manager.register_query_template(bad_radial_template())
        return FunctionProxy(origin, manager)

    def test_degraded_template_never_caches(self, proxy, radial_params):
        first = proxy.serve(proxy.templates.bind(BAD_TEMPLATE_ID, radial_params))
        second = proxy.serve(
            proxy.templates.bind(BAD_TEMPLATE_ID, radial_params)
        )
        assert first.record.status is QueryStatus.NO_CACHE
        assert second.record.status is QueryStatus.NO_CACHE
        assert len(proxy.cache) == 0

    def test_healthy_template_still_caches(self, proxy, radial_params):
        bound = proxy.templates.bind("skyserver.radial", radial_params)
        proxy.serve(bound)
        repeat = proxy.serve(
            proxy.templates.bind("skyserver.radial", radial_params)
        )
        assert repeat.record.status is QueryStatus.EXACT

    def test_violation_visible_in_metrics(self, proxy):
        exposition = proxy.metrics.exposition()
        assert "analysis_diagnostics_total" in exposition
        assert 'code="FP206"' in exposition
        assert 'severity="error"' in exposition

    def test_late_registrations_also_counted(self, proxy):
        template = QueryTemplate.from_sql(
            template_id="t.late",
            sql=BAD_RADIAL_SQL,
            function_template=radial_function_template(),
            key_column="nope",
            checked=False,
        )
        proxy.templates.register_query_template(template)
        exposition = proxy.metrics.exposition()
        assert 'code="FP207"' in exposition
