"""The FP4xx concurrency checks on synthetic fixture modules.

Each fixture is a tiny module written to ``tmp_path`` and analyzed in
isolation, pinning exactly the diagnostic (code, location, message)
the checker must produce — the same golden discipline the FP1xx-FP3xx
blocks use.  The fixtures opt into the serve-path inventory with the
``# concurrency: serve-path`` pragma (prepended as line 1, so fixture
line numbers are body line + 1) and are checked like ``core/proxy.py``
without living at its path.
"""

import textwrap

from repro.analysis.concurrency import analyze_concurrency

PRAGMA = "# concurrency: serve-path\n"


def analyze(tmp_path, source, serve_path=True, name="fixture_module.py"):
    text = textwrap.dedent(source)
    if serve_path:
        text = PRAGMA + text
    path = tmp_path / name
    path.write_text(text)
    report, graph = analyze_concurrency([tmp_path])
    return report, graph, path


class TestInventoryFP401:
    def test_module_level_mutable_without_registration(self, tmp_path):
        report, _, _ = analyze(
            tmp_path, "registry = {}\n", serve_path=False
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP401"
        assert diagnostic.message == (
            "module-level mutable 'registry' has no concurrency "
            "registration"
        )
        assert (diagnostic.span.line, diagnostic.span.column) == (1, 1)

    def test_waivered_module_state_is_clean(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            "registry = {}  # unshared: rebuilt per run\n"
            "cache = []  # guarded-by: proxy.cache\n",
            serve_path=False,
        )
        assert len(report) == 0

    def test_constants_are_exempt(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            "KNOWN_CODES = {'FP401'}\n__all__ = ['x']\n",
            serve_path=False,
        )
        assert len(report) == 0

    def test_unregistered_instance_write(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            class Worker:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
            """,
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP401"
        assert diagnostic.message == (
            "'Worker.count' is written outside __init__ but has no "
            "concurrency registration"
        )
        assert diagnostic.span.line == 7

    def test_init_only_writes_are_exempt(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            class Worker:
                def __init__(self):
                    self.count = 0
                    self.items = []
            """,
        )
        assert len(report) == 0

    def test_off_path_module_is_not_inventoried(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            class Helper:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
            """,
            serve_path=False,
        )
        assert len(report) == 0


class TestGuardedWritesFP402:
    def test_unlocked_write_to_guarded_attribute(self, tmp_path):
        report, _, path = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Worker:
                def __init__(self):
                    self._lock = named_lock("fixture.state")
                    self.count = 0  # guarded-by: fixture.state

                def bump(self):
                    self.count += 1
            """,
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP402"
        assert diagnostic.message == (
            "write to 'Worker.count' (guarded by 'fixture.state') "
            "while holding no lock"
        )
        # The column-number golden: renders path:line:col compiler-style.
        assert diagnostic.format().splitlines()[0] == (
            f"{path.as_posix()}:11:9: FP402 error: write to "
            "'Worker.count' (guarded by 'fixture.state') while holding "
            "no lock"
        )

    def test_write_under_the_declared_lock_is_clean(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Worker:
                def __init__(self):
                    self._lock = named_lock("fixture.state")
                    self.count = 0  # guarded-by: fixture.state

                def bump(self):
                    with self._lock:
                        self.count += 1
            """,
        )
        assert len(report) == 0

    def test_write_under_the_wrong_lock_is_flagged(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Worker:
                def __init__(self):
                    self._lock = named_lock("fixture.state")
                    self._other = named_lock("fixture.other")
                    self.count = 0  # guarded-by: fixture.state

                def bump(self):
                    with self._other:
                        self.count += 1
            """,
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP402"
        assert "holding fixture.other" in diagnostic.message

    def test_decorator_registration_is_equivalent(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import guarded_by, named_lock


            @guarded_by("fixture.state", "count")
            class Worker:
                def __init__(self):
                    self._lock = named_lock("fixture.state")
                    self.count = 0

                def bump(self):
                    self.count += 1
            """,
        )
        assert report.codes() == {"FP402"}

    def test_container_mutation_counts_as_a_write(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Ledger:
                def __init__(self):
                    self._lock = named_lock("fixture.ledger")
                    self._rows = []  # guarded-by: fixture.ledger

                def unsafe(self, row):
                    self._rows.append(row)
            """,
        )
        assert report.codes() == {"FP402"}


class TestReadOnlyFP403:
    def test_post_init_write_to_read_only_attribute(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            class Config:
                def __init__(self):
                    self.limit = 10  # read-only

                def tweak(self):
                    self.limit = 20
            """,
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP403"
        assert diagnostic.message == (
            "'Config.limit' is registered read-only but written after "
            "__init__"
        )
        assert diagnostic.span.line == 7

    def test_init_write_is_fine(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            class Config:
                def __init__(self, limit):
                    self.limit = 10  # read-only
                    if limit:
                        self.limit = limit
            """,
        )
        assert len(report) == 0

    def test_unshared_waiver_permits_writes(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            class Scratch:
                def __init__(self):
                    self.buffer = []  # unshared: per-query state

                def note(self, item):
                    self.buffer.append(item)
            """,
        )
        assert len(report) == 0


class TestLockOrderFP404:
    def test_reordered_nested_with_blocks_are_a_cycle(self, tmp_path):
        report, graph, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Tangle:
                def __init__(self):
                    self._a = named_lock("fixture.a")
                    self._b = named_lock("fixture.b")

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP404"
        assert diagnostic.message == (
            "lock-order cycle: fixture.a -> fixture.b -> fixture.a"
        )
        assert graph.cycles == [["fixture.a", "fixture.b"]]
        assert {("fixture.a", "fixture.b"), ("fixture.b", "fixture.a")} \
            <= graph.edge_set()

    def test_consistent_nesting_is_acyclic(self, tmp_path):
        report, graph, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Pair:
                def __init__(self):
                    self._outer = named_lock("fixture.outer")
                    self._inner = named_lock("fixture.inner")
                    self.value = 0  # guarded-by: fixture.inner

                def set_fast(self, v):
                    with self._outer:
                        with self._inner:
                            self.value = v

                def set_slow(self, v):
                    with self._outer:
                        with self._inner:
                            self.value = v + 1
            """,
        )
        assert len(report) == 0
        assert graph.cycles == []
        assert ("fixture.outer", "fixture.inner") in graph.edge_set()
        assert ("fixture.inner", "fixture.outer") not in graph.edge_set()

    def test_transitive_cycle_through_a_call_is_found(self, tmp_path):
        report, graph, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Callee:
                def __init__(self):
                    self._b = named_lock("fixture.b")

                def poke(self):
                    with self._b:
                        pass


            class Caller:
                def __init__(self):
                    self._a = named_lock("fixture.a")
                    self.callee = Callee()

                def forward(self):
                    with self._a:
                        self.callee.poke()


            class Inverse:
                def __init__(self):
                    self._a = named_lock("fixture.a")
                    self._b = named_lock("fixture.b")

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """,
        )
        assert report.codes() == {"FP404"}
        assert ("fixture.a", "fixture.b") in graph.edge_set()


class TestRegistrationsFP405FP406:
    def test_unknown_lock_role(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import guarded_by


            @guarded_by("fixture.ghost", "count")
            class Worker:
                def __init__(self):
                    self.count = 0
            """,
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP405"
        assert diagnostic.message == (
            "'Worker.count' is guarded by 'fixture.ghost', but no "
            "named_lock('fixture.ghost') exists in the analyzed tree"
        )

    def test_stale_guarded_registration_is_a_warning(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import guarded_by, named_lock


            @guarded_by("fixture.state", "count")
            class Worker:
                def __init__(self):
                    self._lock = named_lock("fixture.state")
                    self.count = 0
            """,
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP406"
        assert diagnostic.severity.value == "warning"
        assert diagnostic.message == (
            "'Worker.count' is registered as guarded by "
            "'fixture.state' but never written outside __init__"
        )
        assert not report.has_errors


class TestDataflowEdgeCases:
    def test_attribute_aliasing_is_tracked(self, tmp_path):
        # c = self._rows; c.append(...) is still a write to the
        # guarded attribute, locked or not.
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Ledger:
                def __init__(self):
                    self._lock = named_lock("fixture.ledger")
                    self._rows = []  # guarded-by: fixture.ledger

                def unsafe(self, row):
                    rows = self._rows
                    rows.append(row)

                def safe(self, row):
                    with self._lock:
                        rows = self._rows
                        rows.append(row)
            """,
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP402"
        assert diagnostic.span.line == 12

    def test_aliased_call_into_another_class_is_resolved(self, tmp_path):
        # c = self.store; c.put(...) — the callee's own lock discipline
        # is what matters, and it is satisfied here.
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Store:
                def __init__(self):
                    self._lock = named_lock("fixture.store")
                    self.items = []  # guarded-by: fixture.store

                def put(self, item):
                    with self._lock:
                        self.items.append(item)


            class Front:
                def __init__(self):
                    self.store = Store()

                def add(self, item):
                    s = self.store
                    s.put(item)
            """,
        )
        assert len(report) == 0

    def test_lock_in_caller_write_in_private_callee(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Cache:
                def __init__(self):
                    self._lock = named_lock("fixture.cache")
                    self.entries = {}  # guarded-by: fixture.cache

                def store(self, key, value):
                    with self._lock:
                        self._admit(key, value)

                def _admit(self, key, value):
                    self.entries[key] = value
            """,
        )
        assert len(report) == 0

    def test_one_unlocked_call_site_breaks_the_entry_held_proof(
        self, tmp_path
    ):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Cache:
                def __init__(self):
                    self._lock = named_lock("fixture.cache")
                    self.entries = {}  # guarded-by: fixture.cache

                def store(self, key, value):
                    with self._lock:
                        self._admit(key, value)

                def sloppy(self, key, value):
                    self._admit(key, value)

                def _admit(self, key, value):
                    self.entries[key] = value
            """,
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP402"
        assert "Cache.entries" in diagnostic.message

    def test_try_finally_acquire_release_is_a_lock_scope(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Cache:
                def __init__(self):
                    self._lock = named_lock("fixture.cache")
                    self.entries = {}  # guarded-by: fixture.cache

                def store(self, key, value):
                    self._lock.acquire()
                    try:
                        self.entries[key] = value
                    finally:
                        self._lock.release()
            """,
        )
        assert len(report) == 0

    def test_write_after_the_finally_release_is_flagged(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Cache:
                def __init__(self):
                    self._lock = named_lock("fixture.cache")
                    self.entries = {}  # guarded-by: fixture.cache

                def store(self, key, value):
                    self._lock.acquire()
                    try:
                        pass
                    finally:
                        self._lock.release()
                    self.entries[key] = value
            """,
        )
        (diagnostic,) = report
        assert diagnostic.code == "FP402"

    def test_freshly_constructed_objects_are_unshared(self, tmp_path):
        # Writes to an object built inside the method cannot race:
        # nothing else can see it yet.
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Store:
                def __init__(self):
                    self._lock = named_lock("fixture.store")
                    self.items = []  # guarded-by: fixture.store

                def put(self, item):
                    with self._lock:
                        self.items.append(item)


            class Builder:
                def build(self):
                    fresh = Store()
                    fresh.items.append(1)
                    return fresh
            """,
        )
        assert len(report) == 0

    def test_diagnostics_are_sorted_by_location(self, tmp_path):
        report, _, _ = analyze(
            tmp_path,
            """\
            from repro.locking import named_lock


            class Worker:
                def __init__(self):
                    self._lock = named_lock("fixture.state")
                    self.first = 0  # guarded-by: fixture.state
                    self.second = 0  # guarded-by: fixture.state

                def bump(self):
                    self.second += 1
                    self.first += 1
            """,
        )
        assert [d.code for d in report] == ["FP402", "FP402"]
        lines = [d.span.line for d in report]
        assert lines == sorted(lines)
