"""Function-template analysis: structural (FP101-FP106) and semantic
(FP107-FP111) passes over template XML."""

import pytest

from repro.analysis.analyzer import (
    analyze_function_template,
    analyze_function_template_xml,
)
from repro.templates.skyserver_templates import (
    radial_function_template,
    rect_function_template,
)


def sphere_xml(
    params="<Param>ra</Param><Param>r</Param>",
    shape="hypersphere",
    dims="2",
    center="<Expr>$ra</Expr><Expr>$ra + $r</Expr>",
    radius="<Radius>$r</Radius>",
    point="<Expr>x</Expr><Expr>y</Expr>",
) -> str:
    return (
        "<FunctionTemplate>"
        "<Name>fDemo</Name>"
        f"<Params>{params}</Params>"
        f"<Shape>{shape}</Shape>"
        f"<NumDimensions>{dims}</NumDimensions>"
        f"<CenterCoordinate>{center}</CenterCoordinate>"
        f"{radius}"
        f"<PointCoordinate>{point}</PointCoordinate>"
        "</FunctionTemplate>"
    )


class TestStructuralPasses:
    def test_clean_template_has_no_diagnostics(self):
        report = analyze_function_template_xml(sphere_xml())
        assert len(report) == 0

    def test_fp101_malformed_xml_with_position_span(self):
        report = analyze_function_template_xml(
            "<FunctionTemplate><Name>oops</FunctionTemplate>"
        )
        assert report.codes() == {"FP101"}
        (diagnostic,) = report
        assert diagnostic.span is not None
        assert diagnostic.span.line == 1

    def test_fp102_wrong_root_element(self):
        report = analyze_function_template_xml("<Nope/>")
        assert report.codes() == {"FP102"}

    def test_fp102_missing_shape(self):
        xml = sphere_xml().replace("<Shape>hypersphere</Shape>", "")
        report = analyze_function_template_xml(xml)
        assert "FP102" in report.codes()
        assert any("<Shape>" in d.message for d in report)

    def test_fp102_hypersphere_missing_radius(self):
        report = analyze_function_template_xml(sphere_xml(radius=""))
        assert "FP102" in report.codes()
        assert any("Radius" in d.message for d in report)

    def test_fp103_unknown_shape(self):
        report = analyze_function_template_xml(sphere_xml(shape="blob"))
        assert "FP103" in report.codes()

    def test_fp104_non_numeric_dimensions(self):
        report = analyze_function_template_xml(sphere_xml(dims="two"))
        assert "FP104" in report.codes()

    def test_fp104_zero_dimensions(self):
        report = analyze_function_template_xml(sphere_xml(dims="0"))
        assert "FP104" in report.codes()

    def test_fp105_expression_arity(self):
        report = analyze_function_template_xml(
            sphere_xml(center="<Expr>$ra</Expr>")
        )
        assert "FP105" in report.codes()
        assert any("CenterCoordinate" in d.message for d in report)

    def test_fp106_unparseable_expression(self):
        report = analyze_function_template_xml(
            sphere_xml(point="<Expr>1 +</Expr><Expr>y</Expr>")
        )
        assert "FP106" in report.codes()

    def test_hyperrect_missing_bounds(self):
        xml = (
            "<FunctionTemplate><Name>fRect</Name>"
            "<Params><Param>lo</Param><Param>hi</Param></Params>"
            "<Shape>hyperrect</Shape><NumDimensions>1</NumDimensions>"
            "<PointCoordinate><Expr>x</Expr></PointCoordinate>"
            "</FunctionTemplate>"
        )
        report = analyze_function_template_xml(xml)
        assert "FP102" in report.codes()
        labels = " ".join(d.message for d in report)
        assert "LowBound" in labels and "HighBound" in labels


class TestSemanticPasses:
    def test_fp107_undeclared_parameter_in_region_expression(self):
        report = analyze_function_template_xml(
            sphere_xml(radius="<Radius>$mystery</Radius>")
        )
        assert "FP107" in report.codes()
        diagnostic = next(d for d in report if d.code == "FP107")
        assert "$mystery" in diagnostic.message
        assert diagnostic.span is not None
        assert diagnostic.span.snippet == "$mystery"

    def test_fp108_unused_parameter_is_a_warning(self):
        xml = sphere_xml(
            params="<Param>ra</Param><Param>r</Param><Param>junk</Param>"
        )
        report = analyze_function_template_xml(xml)
        assert "FP108" in report.codes()
        assert not report.has_errors

    def test_fp109_point_expression_reads_a_parameter(self):
        report = analyze_function_template_xml(
            sphere_xml(point="<Expr>x + $ra</Expr><Expr>y</Expr>")
        )
        assert "FP109" in report.codes()
        assert report.has_errors

    def test_fp111_unknown_scalar_function(self):
        report = analyze_function_template_xml(
            sphere_xml(radius="<Radius>chord($r)</Radius>")
        )
        assert "FP111" in report.codes()
        assert not report.has_errors

    def test_fp110_nondeterministic_function_with_registry(self):
        class Catalog:
            def has_scalar(self, name):
                return True

            def has_table(self, name):
                return False

            def is_deterministic(self, name):
                return False

        report = analyze_function_template_xml(
            sphere_xml(radius="<Radius>chord($r)</Radius>"),
            registry=Catalog(),
        )
        assert "FP110" in report.codes()
        assert report.has_errors


class TestBuiltinTemplates:
    @pytest.mark.parametrize(
        "factory", [radial_function_template, rect_function_template]
    )
    def test_builtin_templates_are_clean(self, factory):
        report = analyze_function_template(factory())
        assert len(report) == 0

    def test_round_trip_through_xml_is_clean(self):
        xml = radial_function_template().to_xml()
        report = analyze_function_template_xml(xml)
        assert len(report) == 0
