"""Remainder query construction and correctness."""

import pytest

from repro.core.remainder import build_remainder, region_predicate
from repro.geometry.regions import (
    ConvexPolytope,
    Halfspace,
    HyperRect,
    HyperSphere,
)
from repro.templates.errors import TemplateError
from repro.templates.skyserver_templates import (
    RADIAL_TEMPLATE_ID,
    radial_function_template,
    rect_function_template,
)


class TestRegionPredicate:
    def test_sphere_predicate_membership(self):
        template = radial_function_template()
        sphere = HyperSphere((0.5, 0.5, 0.0), 0.3)
        predicate = region_predicate(template, sphere)
        inside = {"cx": 0.5, "cy": 0.5, "cz": 0.1}
        outside = {"cx": 0.5, "cy": 0.5, "cz": 0.5}
        assert predicate.evaluate(inside) is True
        assert predicate.evaluate(outside) is False

    def test_rect_predicate_membership(self):
        template = rect_function_template()
        box = HyperRect((10.0, -5.0), (20.0, 5.0))
        predicate = region_predicate(template, box)
        assert predicate.evaluate({"ra": 15.0, "dec": 0.0}) is True
        assert predicate.evaluate({"ra": 25.0, "dec": 0.0}) is False

    def test_polytope_predicate_membership(self):
        template = rect_function_template()
        # x + y <= 1 with x, y >= 0 corners.
        poly = ConvexPolytope(
            (
                Halfspace((1.0, 1.0), 1.0),
                Halfspace((-1.0, 0.0), 0.0),
                Halfspace((0.0, -1.0), 0.0),
            ),
            bbox=HyperRect((0.0, 0.0), (1.0, 1.0)),
        )
        predicate = region_predicate(template, poly)
        assert predicate.evaluate({"ra": 0.2, "dec": 0.2}) is True
        assert predicate.evaluate({"ra": 0.9, "dec": 0.9}) is False

    def test_predicate_renders_to_sql(self):
        template = radial_function_template()
        sphere = HyperSphere((0.1, 0.2, 0.3), 0.05)
        sql = region_predicate(template, sphere).to_sql()
        assert "cx" in sql and "<=" in sql


class TestBuildRemainder:
    def test_needs_at_least_one_hole(self, templates, radial_params):
        bound = templates.bind(RADIAL_TEMPLATE_ID, radial_params)
        with pytest.raises(TemplateError):
            build_remainder(bound, [])

    def test_statement_keeps_original_parts(self, templates, radial_params):
        bound = templates.bind(RADIAL_TEMPLATE_ID, radial_params)
        hole = templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, radius=4.0)
        ).region
        remainder = build_remainder(bound, [hole])
        sql = remainder.sql
        assert "fGetNearbyObjEq(164.0, 8.0, 10.0)" in sql
        assert "NOT" in sql
        assert "p.cx" in sql  # rewritten to statement scope
        assert remainder.n_holes == 1

    def test_remainder_region_membership(self, templates, radial_params):
        bound = templates.bind(RADIAL_TEMPLATE_ID, radial_params)
        hole_bound = templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, radius=4.0)
        )
        remainder = build_remainder(bound, [hole_bound.region])
        assert remainder.region.base is bound.region
        assert remainder.region.holes == (hole_bound.region,)

    def test_remainder_result_equals_origin_minus_hole(
        self, templates, origin, radial_params
    ):
        bound = templates.bind(RADIAL_TEMPLATE_ID, radial_params)
        hole_bound = templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, radius=5.0)
        )
        remainder = build_remainder(bound, [hole_bound.region])

        full = origin.execute_bound(bound).result
        hole = origin.execute_bound(hole_bound).result
        rest = origin.execute_remainder(remainder.statement, 1).result

        key = full.schema.position("objID")
        full_ids = {row[key] for row in full.rows}
        hole_ids = {row[key] for row in hole.rows}
        rest_ids = {row[key] for row in rest.rows}
        assert rest_ids == full_ids - hole_ids
        assert rest_ids | hole_ids == full_ids

    def test_multiple_holes(self, templates, origin, radial_params):
        bound = templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, radius=15.0)
        )
        holes = [
            templates.bind(
                RADIAL_TEMPLATE_ID,
                dict(radial_params, radius=5.0, ra=radial_params["ra"] + dx),
            ).region
            for dx in (0.0, 0.1)
        ]
        remainder = build_remainder(bound, holes)
        assert remainder.n_holes == 2
        rest = origin.execute_remainder(remainder.statement, 2).result
        ftemplate = bound.template.function_template
        names = [n.lower() for n in rest.column_names]
        for row in rest.rows:
            env = dict(zip(names, row))
            point = ftemplate.point_of(env)
            assert bound.region.contains_point(point)
            for hole in holes:
                assert not hole.contains_point(point)
