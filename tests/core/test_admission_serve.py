"""``serve`` behind the admission gate: shed records, degrade, wait."""

import threading

import pytest

from repro.admission import (
    SHED_DEGRADE_TO_TUNNEL,
    AdmissionConfig,
    AdmissionController,
    TenantQuota,
)
from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryOutcome, QueryStatus
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


@pytest.fixture()
def bind(templates):
    def run(ra=164.0, radius=10.0):
        return templates.bind(
            RADIAL_TEMPLATE_ID,
            {
                "ra": ra,
                "dec": 8.0,
                "radius": radius,
                "r_min": -9999.0,
                "r_max": 9999.0,
            },
        )

    return run


@pytest.fixture()
def make_proxy(origin):
    def build(config=None, **kwargs):
        admission = (
            AdmissionController(config) if config is not None else None
        )
        return FunctionProxy(
            origin, origin.templates, admission=admission, **kwargs
        )

    return build


class TestServeGate:
    def test_no_controller_serves_unchanged(self, make_proxy, bind):
        proxy = make_proxy()
        response = proxy.serve(bind())
        assert response.record.outcome is QueryOutcome.SERVED
        assert proxy.admission is None

    def test_admitted_query_serves_and_releases(self, make_proxy, bind):
        proxy = make_proxy(AdmissionConfig(max_inflight=1))
        response = proxy.serve(bind())
        assert response.record.outcome is QueryOutcome.SERVED
        assert proxy.admission.inflight == 0
        assert proxy.admission.snapshot()["admitted"] == 1

    def test_quota_shed_returns_a_structured_record(self, make_proxy, bind):
        proxy = make_proxy(
            AdmissionConfig(
                quotas={"m": TenantQuota(rate_per_s=0.001, burst=1.0)}
            )
        )
        assert proxy.serve(bind(), tenant="m").record.outcome is (
            QueryOutcome.SERVED
        )
        response = proxy.serve(bind(ra=165.0), tenant="m")
        record = response.record
        assert record.status is QueryStatus.REJECTED
        assert record.outcome is QueryOutcome.SHED
        assert record.failure_reason == "quota"
        assert not record.contacted_origin
        assert len(response.result) == 0
        # The shed query is fully accounted: indexed and recorded.
        assert record.index == 2
        assert len(proxy.stats.records) == 2
        assert not record.answered

    def test_shed_never_raises_and_never_touches_the_cache(
        self, make_proxy, bind
    ):
        proxy = make_proxy(AdmissionConfig(max_inflight=1, max_queue_depth=1))
        # Fill capacity from the outside so the next serve sheds.
        assert proxy.admission.try_admit("t", 0.0).admitted
        assert proxy.admission.try_admit("t", 0.0).admitted
        response = proxy.serve(bind())
        assert response.record.outcome is QueryOutcome.SHED
        assert response.record.failure_reason == "queue-full"
        assert len(proxy.cache) == 0

    def test_shed_decision_trace_gets_da10(self, make_proxy, bind):
        proxy = make_proxy(
            AdmissionConfig(
                quotas={"m": TenantQuota(rate_per_s=0.001, burst=1.0)}
            )
        )
        proxy.serve(bind(), tenant="m")
        proxy.serve(bind(ra=165.0), tenant="m")
        trace = proxy.obs.decisions.get(2)
        assert trace is not None
        assert trace.to_dict()["action_code"] == "DA10"

    def test_shed_metrics(self, make_proxy, bind):
        proxy = make_proxy(
            AdmissionConfig(
                quotas={"m": TenantQuota(rate_per_s=0.001, burst=1.0)}
            )
        )
        proxy.serve(bind(), tenant="m")
        proxy.serve(bind(ra=165.0), tenant="m")
        exposition = proxy.metrics.exposition()
        assert 'admission_shed_total{reason="quota"} 1' in exposition
        assert (
            'admission_quota_denials_total{tenant="m"} 1' in exposition
        )
        assert 'degraded_responses_total{kind="shed"} 1' in exposition


class TestDegradeToTunnel:
    def test_degraded_admission_tunnels_without_caching(
        self, make_proxy, bind
    ):
        proxy = make_proxy(
            AdmissionConfig(
                max_inflight=1,
                max_queue_depth=4,
                shed_policy=SHED_DEGRADE_TO_TUNNEL,
                degrade_watermark=0.0,
            )
        )
        # Occupy the only slot: the next serve is backlog >= watermark.
        assert proxy.admission.try_admit("t", 0.0).admitted
        response = proxy.serve(bind())
        assert response.record.status is QueryStatus.NO_CACHE
        assert response.record.outcome is QueryOutcome.SERVED
        assert len(proxy.cache) == 0
        trace = proxy.obs.decisions.get(response.record.index)
        assert any("degraded to tunnel" in n for n in trace.notes)

    def test_degrade_disabled_by_policy(self, make_proxy, bind):
        from repro.faults.resilience import (
            DegradationPolicy,
            ResilienceConfig,
        )

        proxy = make_proxy(
            AdmissionConfig(
                max_inflight=1,
                max_queue_depth=4,
                shed_policy=SHED_DEGRADE_TO_TUNNEL,
                degrade_watermark=0.0,
            ),
            resilience=ResilienceConfig(
                degradation=DegradationPolicy(tunnel_on_overload=False)
            ),
        )
        assert proxy.admission.try_admit("t", 0.0).admitted
        response = proxy.serve(bind())
        # Still admitted (the policy only disables tunnel degradation),
        # and served through the full cache path.
        assert response.record.status is not QueryStatus.NO_CACHE
        assert len(proxy.cache) == 1


class TestQueueWaitAccounting:
    def test_queue_wait_is_charged_to_the_record(self, make_proxy, bind):
        proxy = make_proxy()
        before = proxy.clock.now_ms
        response = proxy.serve_admitted(bind(), queue_wait_ms=123.0)
        record = response.record
        assert record.steps_ms["admit.queue"] == pytest.approx(123.0)
        assert record.response_ms >= 123.0
        # The wait advanced the proxy's simulated clock too.
        assert proxy.clock.now_ms - before >= 123.0

    def test_reject_charges_wait_and_maps_queued_timeout(
        self, make_proxy, bind
    ):
        proxy = make_proxy(AdmissionConfig())
        response = proxy.reject(
            bind(),
            "deadline",
            QueryOutcome.QUEUED_TIMEOUT,
            queue_wait_ms=500.0,
        )
        record = response.record
        assert record.status is QueryStatus.REJECTED
        assert record.outcome is QueryOutcome.QUEUED_TIMEOUT
        assert record.failure_reason == "deadline"
        assert record.steps_ms["admit.queue"] == pytest.approx(500.0)
        trace = proxy.obs.decisions.get(record.index)
        assert trace.to_dict()["action_code"] == "DA11"


class TestThreadedSaturation:
    def test_concurrent_serves_shed_gracefully(self, make_proxy, bind):
        """More threads than capacity: every call returns a record,
        admitted + shed account for every thread, and inflight drains
        to zero."""
        proxy = make_proxy(
            AdmissionConfig(max_inflight=2, max_queue_depth=2)
        )
        n = 12
        barrier = threading.Barrier(n)
        responses = [None] * n
        failures = []

        def run(slot):
            try:
                barrier.wait(timeout=10)
                responses[slot] = proxy.serve(
                    bind(ra=161.0 + 0.5 * slot, radius=2.0)
                )
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=run, args=(slot,)) for slot in range(n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        assert all(r is not None for r in responses)
        outcomes = [r.record.outcome for r in responses]
        served = sum(o is not QueryOutcome.SHED for o in outcomes)
        shed = sum(o is QueryOutcome.SHED for o in outcomes)
        assert served + shed == n
        assert served >= 1  # capacity admits at least the first wave
        snapshot = proxy.admission.snapshot()
        assert snapshot["submitted"] == n
        assert snapshot["admitted"] == served
        assert snapshot["shed"] == shed
        assert proxy.admission.inflight == 0
        assert len(proxy.stats.records) == n
        assert {r.index for r in proxy.stats.records} == set(
            range(1, n + 1)
        )
