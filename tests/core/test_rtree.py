"""R-tree structure and search correctness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rtree import RTree, RTreeError
from repro.geometry.regions import HyperRect


def box(x, y, w=1.0, h=1.0):
    return HyperRect((x, y), (x + w, y + h))


class TestBasics:
    def test_insert_and_search(self):
        tree = RTree(dims=2)
        tree.insert("a", box(0, 0))
        tree.insert("b", box(10, 10))
        assert set(tree.search(box(-1, -1, 3, 3))) == {"a"}
        assert set(tree.search(box(0, 0, 20, 20))) == {"a", "b"}
        assert tree.search(box(50, 50)) == []

    def test_len_and_contains(self):
        tree = RTree(dims=2)
        tree.insert(1, box(0, 0))
        assert len(tree) == 1
        assert 1 in tree
        assert 2 not in tree

    def test_duplicate_key_raises(self):
        tree = RTree(dims=2)
        tree.insert("a", box(0, 0))
        with pytest.raises(RTreeError, match="duplicate"):
            tree.insert("a", box(1, 1))

    def test_delete(self):
        tree = RTree(dims=2)
        tree.insert("a", box(0, 0))
        tree.insert("b", box(0.5, 0.5))
        tree.delete("a")
        assert set(tree.search(box(0, 0, 2, 2))) == {"b"}
        assert len(tree) == 1

    def test_delete_unknown_raises(self):
        tree = RTree(dims=2)
        with pytest.raises(RTreeError, match="unknown key"):
            tree.delete("ghost")

    def test_dimension_mismatch_raises(self):
        tree = RTree(dims=2)
        with pytest.raises(RTreeError):
            tree.insert("a", HyperRect((0.0,), (1.0,)))

    def test_bad_construction(self):
        with pytest.raises(RTreeError):
            RTree(dims=0)
        with pytest.raises(RTreeError):
            RTree(dims=2, max_entries=2)

    def test_nodes_visited_reported(self):
        tree = RTree(dims=2)
        for i in range(50):
            tree.insert(i, box(i * 2.0, 0.0))
        tree.search(box(10, 0, 1, 1))
        assert tree.nodes_visited >= 1

    def test_splits_grow_tree_beyond_one_node(self):
        tree = RTree(dims=2, max_entries=4)
        for i in range(30):
            tree.insert(i, box(float(i % 6), float(i // 6)))
        assert tree.maintenance_ops > 0
        tree.check_invariants()


def brute_force(entries, probe):
    return {
        key for key, rect in entries.items()
        if rect.intersect(probe) is not None
    }


coordinates = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
sizes = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)
rects = st.builds(box, coordinates, coordinates, sizes, sizes)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 40), rects),
        st.tuples(st.just("delete"), st.integers(0, 40), rects),
    ),
    min_size=1,
    max_size=120,
)


@given(ops=operations, probe=rects)
@settings(max_examples=150, deadline=None)
def test_search_matches_linear_scan_under_churn(ops, probe):
    """Search equals brute force after arbitrary insert/delete churn."""
    tree = RTree(dims=2, max_entries=5)
    entries = {}
    for action, key, rect in ops:
        if action == "insert":
            if key in entries:
                continue
            entries[key] = rect
            tree.insert(key, rect)
        else:
            if key not in entries:
                continue
            del entries[key]
            tree.delete(key)
    assert set(tree.search(probe)) == brute_force(entries, probe)
    assert len(tree) == len(entries)


@given(ops=operations)
@settings(max_examples=100, deadline=None)
def test_invariants_hold_under_churn(ops):
    tree = RTree(dims=2, max_entries=5)
    entries = set()
    for action, key, rect in ops:
        if action == "insert" and key not in entries:
            entries.add(key)
            tree.insert(key, rect)
        elif action == "delete" and key in entries:
            entries.remove(key)
            tree.delete(key)
        tree.check_invariants()
