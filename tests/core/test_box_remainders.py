"""Box-decomposed remainders for the rectangular template."""

import pytest

from repro.core.remainder import build_box_remainders
from repro.templates.errors import TemplateError
from repro.templates.skyserver_templates import (
    RADIAL_TEMPLATE_ID,
    RECT_TEMPLATE_ID,
)

MAG_OPEN = {"r_min": -9999.0, "r_max": 9999.0}


def rect_params(ra_min, ra_max, dec_min, dec_max):
    return {
        "ra_min": ra_min, "ra_max": ra_max,
        "dec_min": dec_min, "dec_max": dec_max,
        **MAG_OPEN,
    }


def ids(result):
    key = result.schema.position("objID")
    return {row[key] for row in result.rows}


def test_box_remainders_union_equals_not_remainder(origin, templates):
    """The box queries together return exactly base-minus-hole."""
    base = templates.bind(
        RECT_TEMPLATE_ID, rect_params(162.0, 165.0, 6.5, 9.5)
    )
    hole = templates.bind(
        RECT_TEMPLATE_ID, rect_params(163.0, 164.0, 7.0, 8.0)
    )
    statements = build_box_remainders(base, [hole.region])
    assert 1 <= len(statements) <= 4

    collected = None
    for statement in statements:
        result = origin.execute_statement(statement).result
        collected = (
            result if collected is None
            else collected.merge_dedup(result, "objID")
        )
    full = origin.execute_bound(base).result
    inside_hole = origin.execute_bound(hole).result
    assert ids(collected) == ids(full) - ids(inside_hole)


def test_multiple_holes(origin, templates):
    base = templates.bind(
        RECT_TEMPLATE_ID, rect_params(162.0, 166.0, 6.0, 10.0)
    )
    holes = [
        templates.bind(
            RECT_TEMPLATE_ID, rect_params(162.5, 163.5, 6.5, 7.5)
        ).region,
        templates.bind(
            RECT_TEMPLATE_ID, rect_params(164.5, 165.5, 8.5, 9.5)
        ).region,
    ]
    statements = build_box_remainders(base, holes)
    collected = None
    for statement in statements:
        result = origin.execute_statement(statement).result
        collected = (
            result if collected is None
            else collected.merge_dedup(result, "objID")
        )
    full_ids = ids(origin.execute_bound(base).result)
    ftemplate = base.template.function_template
    expected = set()
    table = origin.catalog.table("PhotoPrimary")
    schema = table.schema
    for row in table.rows:
        point = (row[schema.position("ra")], row[schema.position("dec")])
        if base.region.contains_point(point) and not any(
            hole.contains_point(point) for hole in holes
        ):
            expected.add(row[schema.position("objID")])
    got = ids(collected) if collected is not None else set()
    # Boundary tuples may fall on shared faces; they are in both the
    # hole and a piece edge — accept either side for exact-boundary
    # points by checking symmetric difference only off-boundary.
    assert got == expected & full_ids
    assert ftemplate.dims == 2


def test_hole_covering_base_yields_no_queries(origin, templates):
    base = templates.bind(
        RECT_TEMPLATE_ID, rect_params(163.0, 164.0, 7.0, 8.0)
    )
    hole = templates.bind(
        RECT_TEMPLATE_ID, rect_params(162.0, 165.0, 6.0, 9.0)
    )
    assert build_box_remainders(base, [hole.region]) == []


def test_radial_template_rejected(templates, radial_params):
    bound = templates.bind(RADIAL_TEMPLATE_ID, radial_params)
    with pytest.raises(TemplateError, match="hyperrect"):
        build_box_remainders(bound, [bound.region])
