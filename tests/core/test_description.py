"""Array and R-tree cache descriptions agree on candidates."""

import pytest

from repro.core.cache import CacheManager
from repro.core.description import ArrayDescription, RTreeDescription
from repro.templates.skyserver_templates import (
    RADIAL_TEMPLATE_ID,
    RECT_TEMPLATE_ID,
)


@pytest.fixture()
def filled(templates, origin, radial_params):
    """Both descriptions filled with the same entries."""
    array_cache = CacheManager(ArrayDescription())
    rtree_cache = CacheManager(RTreeDescription())
    bounds = []
    for i in range(12):
        params = dict(
            radial_params,
            ra=162.0 + i * 0.4,
            dec=7.0 + (i % 3) * 0.5,
            radius=4.0 + i,
        )
        bound = templates.bind(RADIAL_TEMPLATE_ID, params)
        result = origin.execute_bound(bound).result
        array_cache.store(bound, result, "sig", False)
        rtree_cache.store(bound, result, "sig", False)
        bounds.append(bound)
    return array_cache, rtree_cache, bounds


def keys(entries):
    return {entry.cache_key for entry in entries}


class TestAgreement:
    def test_same_survivors_for_each_probe(self, filled, templates,
                                           radial_params):
        array_cache, rtree_cache, bounds = filled
        for probe in bounds:
            array_entries, _ = array_cache.description.candidates(
                RADIAL_TEMPLATE_ID, probe.region
            )
            rtree_entries, _ = rtree_cache.description.candidates(
                RADIAL_TEMPLATE_ID, probe.region
            )
            assert keys(array_entries) == keys(rtree_entries)

    def test_both_empty_for_unknown_template(self, filled):
        array_cache, rtree_cache, bounds = filled
        probe = bounds[0]
        for cache in (array_cache, rtree_cache):
            entries, probe_ms = cache.description.candidates(
                RECT_TEMPLATE_ID, probe.region
            )
            assert entries == []


class TestCosting:
    def test_array_probe_cost_scales_with_entries(self, filled):
        array_cache, _rtree_cache, bounds = filled
        _, probe_ms = array_cache.description.candidates(
            RADIAL_TEMPLATE_ID, bounds[0].region
        )
        expected = (
            array_cache.costs.check_per_array_entry_ms * len(array_cache)
        )
        assert probe_ms == pytest.approx(expected)

    def test_rtree_maintenance_charges_more_than_array(
        self, templates, origin, radial_params
    ):
        array_cache = CacheManager(ArrayDescription())
        rtree_cache = CacheManager(RTreeDescription())
        bound = templates.bind(RADIAL_TEMPLATE_ID, radial_params)
        result = origin.execute_bound(bound).result
        _, array_report = array_cache.store(bound, result, "sig", False)
        _, rtree_report = rtree_cache.store(bound, result, "sig", False)
        assert rtree_report.description_work > (
            array_report.description_work
        )
