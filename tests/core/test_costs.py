"""Proxy cost model."""

import pytest

from repro.core.costs import ProxyCostModel


def test_defaults_are_non_negative():
    model = ProxyCostModel()
    for name, value in vars(model).items():
        assert value >= 0, name


def test_negative_parameter_rejected():
    with pytest.raises(ValueError, match="parse_ms"):
        ProxyCostModel(parse_ms=-1.0)


def test_store_cost_scales_with_kilobytes():
    model = ProxyCostModel(store_per_kb_ms=2.0)
    assert model.store_ms(0) == 0.0
    assert model.store_ms(2048) == pytest.approx(4.0)


def test_rtree_update_costs_more_than_array_by_default():
    model = ProxyCostModel()
    assert model.rtree_update_per_node_ms > model.array_update_ms
