"""Local evaluation over cached results."""

import pytest

from repro.core.cache import CacheManager
from repro.core.description import ArrayDescription
from repro.core.evaluation import LocalEvaluator
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


@pytest.fixture()
def store(templates, origin, radial_params):
    cache = CacheManager(ArrayDescription())

    def run(**overrides):
        params = dict(radial_params, **overrides)
        bound = templates.bind(RADIAL_TEMPLATE_ID, params)
        result = origin.execute_bound(bound).result
        entry, _ = cache.store(bound, result, "sig", False)
        return bound, entry

    return run


@pytest.fixture()
def evaluator():
    return LocalEvaluator()


class TestSelectInRegion:
    def test_subset_matches_origin(
        self, store, evaluator, templates, origin, radial_params
    ):
        _big_bound, big_entry = store(radius=20.0)
        small = templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, radius=8.0)
        )
        outcome = evaluator.select_in_region(small, [big_entry])
        expected = origin.execute_bound(small).result
        key = expected.schema.position("objID")
        assert {r[key] for r in outcome.result.rows} == {
            r[key] for r in expected.rows
        }
        assert outcome.tuples_read == len(big_entry.result)

    def test_subsumed_entry_skips_per_tuple_test(
        self, store, evaluator, templates, radial_params
    ):
        _small_bound, small_entry = store(radius=5.0)
        big = templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, radius=20.0)
        )
        outcome = evaluator.select_in_region(big, [small_entry])
        assert outcome.tuples_evaluated == 0
        assert len(outcome.result) == len(small_entry.result)

    def test_overlapping_entry_is_filtered(
        self, store, evaluator, templates, radial_params
    ):
        _bound, entry = store(radius=12.0)
        shifted = templates.bind(
            RADIAL_TEMPLATE_ID,
            dict(radial_params, ra=radial_params["ra"] + 0.25),
        )
        outcome = evaluator.select_in_region(shifted, [entry])
        assert outcome.tuples_evaluated == len(entry.result)
        for row in outcome.result.rows:
            env = dict(
                zip(
                    (n.lower() for n in outcome.result.column_names), row
                )
            )
            point = shifted.template.function_template.point_of(env)
            assert shifted.region.contains_point(point)

    def test_multiple_entries_deduplicate(
        self, store, evaluator, templates, radial_params
    ):
        _b1, e1 = store(radius=10.0)
        _b2, e2 = store(radius=10.0, ra=radial_params["ra"] + 0.05)
        big = templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, radius=25.0)
        )
        outcome = evaluator.select_in_region(big, [e1, e2])
        key = outcome.result.schema.position("objID")
        ids = [row[key] for row in outcome.result.rows]
        assert len(ids) == len(set(ids))

    def test_no_entries_raises(self, evaluator, templates, radial_params):
        bound = templates.bind(RADIAL_TEMPLATE_ID, radial_params)
        with pytest.raises(ValueError):
            evaluator.select_in_region(bound, [])


class TestFinalize:
    def test_applies_order_and_top(
        self, evaluator, templates, origin, radial_params
    ):
        from repro.templates.query_template import QueryTemplate
        from repro.templates.skyserver_templates import (
            RADIAL_SQL,
            radial_function_template,
        )

        ordered_template = QueryTemplate.from_sql(
            "radial.ordered",
            "SELECT TOP 5 " + RADIAL_SQL[len("SELECT "):] + (
                " ORDER BY n.distance"
            ),
            radial_function_template(),
            key_column="objID",
        )
        bound = ordered_template.bind_statement(radial_params)
        from repro.templates.manager import BoundQuery

        bq = BoundQuery(
            template=ordered_template,
            params=dict(radial_params),
            statement=bound,
            region=ordered_template.region_for(radial_params),
        )
        raw = origin.execute_bound(
            templates.bind(RADIAL_TEMPLATE_ID, radial_params)
        ).result
        final = evaluator.finalize(bq, raw)
        assert len(final) <= 5
        distances = final.column_values("distance")
        assert distances == sorted(distances)
