"""Result stores: memory and file-backed (the paper's XML files)."""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryStatus
from repro.core.store import (
    FileResultStore,
    MemoryResultStore,
    ResultStoreError,
)
from repro.relational.result import ResultTable
from repro.relational.schema import Schema
from repro.relational.types import ColumnType
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


def sample_result():
    return ResultTable(
        Schema.of(("objID", ColumnType.INT), ("ra", ColumnType.FLOAT)),
        [(1, 164.5), (2, 164.6)],
    )


class TestMemoryStore:
    def test_roundtrip(self):
        store = MemoryResultStore()
        store.put(1, sample_result())
        assert store.get(1) == sample_result()

    def test_missing_raises(self):
        with pytest.raises(ResultStoreError):
            MemoryResultStore().get(1)

    def test_remove_is_idempotent(self):
        store = MemoryResultStore()
        store.put(1, sample_result())
        store.remove(1)
        store.remove(1)
        with pytest.raises(ResultStoreError):
            store.get(1)


class TestFileStore:
    def test_roundtrip_through_xml_file(self, tmp_path):
        store = FileResultStore(tmp_path / "cache")
        store.put(7, sample_result())
        assert (tmp_path / "cache" / "entry-7.xml").exists()
        assert store.get(7) == sample_result()

    def test_missing_raises(self, tmp_path):
        with pytest.raises(ResultStoreError):
            FileResultStore(tmp_path).get(99)

    def test_remove_deletes_file(self, tmp_path):
        store = FileResultStore(tmp_path)
        store.put(3, sample_result())
        store.remove(3)
        assert not (tmp_path / "entry-3.xml").exists()


class TestProxyWithFileStore:
    def test_dispositions_and_answers_match_memory(
        self, origin, radial_params, tmp_path
    ):
        file_proxy = FunctionProxy(
            origin,
            origin.templates,
            result_store=FileResultStore(tmp_path / "proxy-cache"),
        )
        memory_proxy = FunctionProxy(origin, origin.templates)

        bindings = [
            dict(radial_params, radius=15.0),
            dict(radial_params, radius=15.0),       # exact
            dict(radial_params, radius=6.0),        # contained
            dict(radial_params, ra=164.3, radius=14.0),  # overlap
        ]
        for params in bindings:
            bound = origin.templates.bind(RADIAL_TEMPLATE_ID, params)
            from_file = file_proxy.serve(bound)
            from_memory = memory_proxy.serve(bound)
            assert from_file.record.status is from_memory.record.status
            key = from_file.result.schema.position("objID")
            assert {r[key] for r in from_file.result.rows} == {
                r[key] for r in from_memory.result.rows
            }

    def test_eviction_cleans_result_files(
        self, origin, radial_params, tmp_path
    ):
        directory = tmp_path / "spill"
        proxy = FunctionProxy(
            origin,
            origin.templates,
            cache_bytes=5_000,
            result_store=FileResultStore(directory),
        )
        for i in range(8):
            params = dict(radial_params, ra=162.0 + i * 0.6, radius=12.0)
            proxy.serve(origin.templates.bind(RADIAL_TEMPLATE_ID, params))
        files = list(directory.glob("entry-*.xml"))
        assert len(files) == len(proxy.cache)
