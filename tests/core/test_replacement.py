"""Replacement policies: unit behaviour and a model-based LRU check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CacheEntry, CacheManager
from repro.core.description import ArrayDescription
from repro.core.replacement import (
    ALL_POLICIES,
    FifoPolicy,
    GreedyDualSizePolicy,
    LargestFirstPolicy,
    LfuPolicy,
    LruPolicy,
)
from repro.core.store import MemoryResultStore
from repro.geometry.regions import HyperSphere


def entry(entry_id, last_used=0, access_count=0, byte_size=100):
    return CacheEntry(
        entry_id=entry_id,
        template_id="t",
        cache_key=("t", entry_id),
        region=HyperSphere((float(entry_id), 0.0), 0.1),
        signature="",
        truncated=False,
        byte_size=byte_size,
        row_count=1,
        store=MemoryResultStore(),
        last_used=last_used,
        access_count=access_count,
    )


class TestVictimSelection:
    def test_lru_picks_least_recently_used(self):
        entries = [entry(1, last_used=5), entry(2, last_used=2),
                   entry(3, last_used=9)]
        assert LruPolicy().victim(entries).entry_id == 2

    def test_fifo_picks_oldest(self):
        entries = [entry(3, last_used=1), entry(1, last_used=9), entry(2)]
        assert FifoPolicy().victim(entries).entry_id == 1

    def test_lfu_picks_least_frequent(self):
        entries = [
            entry(1, access_count=5),
            entry(2, access_count=1, last_used=9),
            entry(3, access_count=1, last_used=2),
        ]
        # Frequency ties broken by recency: entry 3 is older.
        assert LfuPolicy().victim(entries).entry_id == 3

    def test_largest_first_picks_biggest(self):
        entries = [entry(1, byte_size=10), entry(2, byte_size=999),
                   entry(3, byte_size=50)]
        assert LargestFirstPolicy().victim(entries).entry_id == 2

    def test_gds_prefers_evicting_large_unused(self):
        policy = GreedyDualSizePolicy()
        small = entry(1, byte_size=100)
        large = entry(2, byte_size=100_000)
        policy.on_insert(small)
        policy.on_insert(large)
        assert policy.victim([small, large]).entry_id == 2

    def test_gds_access_refreshes_credit(self):
        policy = GreedyDualSizePolicy()
        a = entry(1, byte_size=1000)
        b = entry(2, byte_size=1000)
        policy.on_insert(a)
        policy.on_insert(b)
        # Evict once to raise the inflation level, then re-insert a.
        victim = policy.victim([a, b])
        policy.on_evict(victim)
        survivor = b if victim.entry_id == 1 else a
        refreshed = entry(3, byte_size=1000)
        policy.on_insert(refreshed)
        # The refreshed entry has post-inflation credit; the stale
        # survivor is the next victim.
        assert policy.victim([survivor, refreshed]) is survivor


class TestRationale:
    """Every policy must explain its victim (the explain layer and the
    recovery report both surface these strings verbatim)."""

    MARKERS = {
        "lru": "least recently used",
        "fifo": "oldest entry",
        "lfu": "least frequently used",
        "largest-first": "largest entry",
        "gds": "minimum credit",
    }

    @pytest.mark.parametrize("policy_cls", ALL_POLICIES,
                             ids=lambda c: c.name)
    def test_rationale_names_the_policy_criterion(self, policy_cls):
        policy = policy_cls()
        entries = [
            entry(1, last_used=3, access_count=2, byte_size=100),
            entry(2, last_used=1, access_count=1, byte_size=400),
            entry(3, last_used=7, access_count=5, byte_size=50),
        ]
        for e in entries:
            policy.on_insert(e)
        victim = policy.victim(entries)
        rationale = policy.rationale(victim)
        assert self.MARKERS[policy.name] in rationale

    @pytest.mark.parametrize("policy_cls", ALL_POLICIES,
                             ids=lambda c: c.name)
    def test_rationale_cites_the_victims_own_numbers(self, policy_cls):
        policy = policy_cls()
        victim = entry(4, last_used=11, access_count=6, byte_size=256)
        policy.on_insert(victim)
        rationale = policy.rationale(victim)
        cited = {
            "lru": str(victim.last_used),
            "fifo": str(victim.entry_id),
            "lfu": str(victim.access_count),
            "largest-first": str(victim.byte_size),
            "gds": "inflation",
        }
        assert cited[policy.name] in rationale

    def test_base_class_default_rationale(self):
        from repro.core.replacement import ReplacementPolicy

        class NoOpinionPolicy(ReplacementPolicy):
            name = "no-opinion"

            def victim(self, entries):
                return next(iter(entries))

        assert NoOpinionPolicy().rationale(entry(1)) == (
            "selected by no-opinion"
        )

    @pytest.mark.parametrize("policy_cls", ALL_POLICIES,
                             ids=lambda c: c.name)
    def test_eviction_reports_carry_the_rationale(self, policy_cls):
        """The manager asks for the rationale *before* removal, so
        policies with bookkeeping (GDS credit) can still answer."""
        manager = CacheManager(
            ArrayDescription(), max_bytes=250, policy=policy_cls()
        )
        store = MemoryResultStore()
        manager.result_store = store

        class _FakeResult:
            def __init__(self, size):
                self._size = size

            def byte_size(self):
                return self._size

            def __len__(self):
                return 1

        class _FakeBound:
            def __init__(self, key):
                self.template_id = "t"
                self._key = key
                self.region = HyperSphere((float(key), 0.0), 0.1)

            def cache_key(self):
                return ("t", self._key)

        _, first_report = manager.store(
            _FakeBound(1), _FakeResult(200), "", False
        )
        assert first_report.evictions == []
        _, report = manager.store(
            _FakeBound(2), _FakeResult(200), "", False
        )
        assert len(report.evictions) == 1
        eviction = report.evictions[0]
        assert eviction.policy == policy_cls.name
        assert self.MARKERS[policy_cls.name] in eviction.rationale


class TestManagerIntegration:
    def _manager(self, policy, budget):
        return CacheManager(
            ArrayDescription(), max_bytes=budget, policy=policy
        )

    def test_fifo_ignores_touch(self, templates, origin, radial_params):
        from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID

        def bind(ra):
            return templates.bind(
                RADIAL_TEMPLATE_ID, dict(radial_params, ra=ra)
            )

        first = bind(163.0)
        result = origin.execute_bound(first).result
        budget = result.byte_size() * 2 + 200
        manager = self._manager(FifoPolicy(), budget)
        entry1, _ = manager.store(
            first, origin.execute_bound(first).result, "s", False
        )
        second = bind(164.5)
        manager.store(second, origin.execute_bound(second).result, "s",
                      False)
        manager.touch(entry1)  # FIFO must NOT protect it
        third = bind(166.0)
        manager.store(third, origin.execute_bound(third).result, "s", False)
        assert manager.exact_match(first) is None
        assert manager.exact_match(second) is not None


@st.composite
def lru_workloads(draw):
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("put"), st.integers(0, 9)),
                st.tuples(st.just("get"), st.integers(0, 9)),
            ),
            min_size=1,
            max_size=60,
        )
    )
    return ops


@given(ops=lru_workloads())
@settings(max_examples=100, deadline=None)
def test_lru_policy_matches_reference_model(ops):
    """Model-based test: LruPolicy's victim always equals the reference
    (an ordered dict moved-to-end on use)."""
    policy = LruPolicy()
    live: dict[int, CacheEntry] = {}
    order: list[int] = []  # least recent first
    tick = 0
    next_id = 1
    for action, key in ops:
        tick += 1
        if action == "put":
            if key in live:
                continue
            if len(live) == 4:
                victim = policy.victim(live.values())
                assert victim.entry_id == live[order[0]].entry_id
                del live[order[0]]
                order.pop(0)
            candidate = entry(next_id, last_used=tick)
            next_id += 1
            live[key] = candidate
            order.append(key)
        else:
            if key in live:
                live[key].last_used = tick
                order.remove(key)
                order.append(key)
    if live:
        assert policy.victim(live.values()).entry_id == (
            live[order[0]].entry_id
        )


@pytest.mark.parametrize("policy_cls", ALL_POLICIES,
                         ids=lambda c: c.name)
def test_all_policies_preserve_proxy_answers(origin, policy_cls):
    """Replacement never affects correctness, only performance."""
    from repro.core.proxy import FunctionProxy
    from repro.workload.generator import (
        RadialTraceConfig,
        generate_radial_trace,
    )
    from tests.conftest import SMALL_SKY

    trace = generate_radial_trace(
        RadialTraceConfig(n_queries=80, sky=SMALL_SKY)
    )
    proxy = FunctionProxy(
        origin,
        origin.templates,
        cache_bytes=8_000,
        replacement_policy=policy_cls(),
    )
    for query in trace:
        bound = origin.templates.bind(query.template_id, query.param_dict())
        got = proxy.serve(bound).result
        want = origin.execute_bound(bound).result
        key = want.schema.position("objID")
        assert {r[key] for r in got.rows} == {r[key] for r in want.rows}
