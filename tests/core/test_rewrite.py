"""Scope rewriting between statement and result scope."""

import pytest

from repro.core.rewrite import to_result_scope, to_statement_scope
from repro.relational.expressions import ColumnRef
from repro.sqlparser.parser import parse_expression
from repro.templates.errors import TemplateError
from repro.templates.query_template import QueryTemplate
from repro.templates.skyserver_templates import (
    radial_function_template,
    radial_query_template,
)


@pytest.fixture()
def template():
    return radial_query_template()


class TestToResultScope:
    def test_qualified_ref_becomes_output_name(self, template):
        expr = to_result_scope(template, parse_expression("n.distance"))
        assert expr == ColumnRef("distance")

    def test_composite_expression_rewritten(self, template):
        expr = to_result_scope(
            template, parse_expression("p.r BETWEEN 10 AND 20")
        )
        assert expr.to_sql() == "(r BETWEEN 10 AND 20)"

    def test_unknown_qualified_ref_raises(self, template):
        with pytest.raises(TemplateError, match="not in the select list"):
            to_result_scope(template, parse_expression("p.htmID"))

    def test_unqualified_ref_passes_through(self, template):
        expr = to_result_scope(template, parse_expression("distance"))
        assert expr == ColumnRef("distance")


class TestToStatementScope:
    def test_output_name_becomes_defining_expression(self, template):
        expr = to_statement_scope(template, parse_expression("cx"))
        assert expr == ColumnRef("p.cx")

    def test_roundtrip_through_both_scopes(self, template):
        original = parse_expression("(cx * cx) + (cy * cy)")
        statement_scope = to_statement_scope(template, original)
        assert "p.cx" in statement_scope.to_sql()
        back = to_result_scope(template, statement_scope)
        assert back == original

    def test_unknown_name_left_alone(self, template):
        expr = to_statement_scope(template, parse_expression("mystery"))
        assert expr == ColumnRef("mystery")


class TestSelectStarRejected:
    def test_star_template_cannot_rewrite(self):
        template = QueryTemplate.from_sql(
            "t.star",
            "SELECT * FROM fGetNearbyObjEq($ra, $dec, $r) n",
            radial_function_template(),
            key_column="objID",
        )
        with pytest.raises(TemplateError, match="SELECT \\*"):
            to_result_scope(template, parse_expression("cx"))
