"""Function proxy dispositions and soundness guards."""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.core.stats import QueryStatus
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


@pytest.fixture()
def make_proxy(origin):
    def build(scheme=CachingScheme.FULL_SEMANTIC, **kwargs):
        return FunctionProxy(origin, origin.templates, scheme=scheme,
                             **kwargs)

    return build


@pytest.fixture()
def bind(templates, radial_params):
    def run(**overrides):
        return templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, **overrides)
        )

    return run


def ids(result):
    key = result.schema.position("objID")
    return {row[key] for row in result.rows}


class TestDispositions:
    def test_first_query_is_disjoint_and_cached(self, make_proxy, bind):
        proxy = make_proxy()
        record = proxy.serve(bind()).record
        assert record.status is QueryStatus.DISJOINT
        assert record.contacted_origin
        assert len(proxy.cache) == 1

    def test_repeat_is_exact_hit(self, make_proxy, bind):
        proxy = make_proxy()
        first = proxy.serve(bind())
        second = proxy.serve(bind())
        assert second.record.status is QueryStatus.EXACT
        assert not second.record.contacted_origin
        assert ids(second.result) == ids(first.result)
        assert second.record.cache_efficiency == 1.0

    def test_zoom_in_is_contained_and_not_cached(
        self, make_proxy, bind, origin
    ):
        proxy = make_proxy()
        proxy.serve(bind(radius=15.0))
        inner = bind(radius=6.0)
        response = proxy.serve(inner)
        assert response.record.status is QueryStatus.CONTAINED
        assert not response.record.contacted_origin
        assert ids(response.result) == ids(
            origin.execute_bound(inner).result
        )
        assert len(proxy.cache) == 1  # contained results are not cached

    def test_pan_is_overlap_with_remainder(self, make_proxy, bind, origin):
        proxy = make_proxy()
        proxy.serve(bind(radius=12.0))
        shifted = bind(ra=164.25, radius=12.0)
        response = proxy.serve(shifted)
        assert response.record.status is QueryStatus.OVERLAP
        assert response.record.contacted_origin
        assert ids(response.result) == ids(
            origin.execute_bound(shifted).result
        )
        assert 0.0 < response.record.cache_efficiency < 1.0
        # The merged full-region result was cached.
        assert proxy.cache.exact_match(shifted) is not None

    def test_zoom_out_is_region_containment_with_consolidation(
        self, make_proxy, bind, origin
    ):
        proxy = make_proxy()
        proxy.serve(bind(radius=5.0))
        big = bind(radius=20.0)
        response = proxy.serve(big)
        assert response.record.status is QueryStatus.REGION_CONTAINMENT
        assert ids(response.result) == ids(origin.execute_bound(big).result)
        # The subsumed small entry was removed; only the merged big
        # entry remains.
        assert len(proxy.cache) == 1
        assert proxy.cache.exact_match(big) is not None

    def test_far_query_is_disjoint(self, make_proxy, bind):
        proxy = make_proxy()
        proxy.serve(bind(ra=162.0))
        record = proxy.serve(bind(ra=166.5)).record
        assert record.status is QueryStatus.DISJOINT


class TestEvictionRaceFallback:
    """A cache hit whose stored result vanished mid-serve (the window a
    concurrent eviction opens) degrades to a forward — serve's
    never-raises contract covers ``ResultStoreError`` too (REVIEW)."""

    def test_lost_exact_result_falls_back_to_forwarding(
        self, make_proxy, bind
    ):
        proxy = make_proxy()
        bound = bind()
        first = proxy.serve(bound)
        entry = proxy.cache.exact_match(bound)
        # Simulate the race: the stored result is gone while the entry
        # is still indexed (what a reader saw mid-eviction before the
        # pinned lookup existed).
        proxy.cache.result_store.remove(entry.entry_id)
        response = proxy.serve(bound)
        assert response.record.status is QueryStatus.FORWARDED
        assert response.record.contacted_origin
        assert ids(response.result) == ids(first.result)

    def test_lost_candidate_result_falls_back_to_forwarding(
        self, make_proxy, bind, origin
    ):
        proxy = make_proxy()
        outer = bind(radius=8.0)
        proxy.serve(outer)
        entry = proxy.cache.exact_match(outer)
        proxy.cache.result_store.remove(entry.entry_id)
        inner = bind(radius=3.0)  # contained: local eval reads entry
        response = proxy.serve(inner)
        assert response.record.status is QueryStatus.FORWARDED
        assert response.record.contacted_origin
        assert ids(response.result) == ids(
            origin.execute_bound(inner).result
        )


class TestSchemeDegradation:
    def test_passive_only_hits_exact(self, make_proxy, bind):
        proxy = make_proxy(scheme=CachingScheme.PASSIVE)
        proxy.serve(bind(radius=15.0))
        inner = proxy.serve(bind(radius=6.0))
        assert inner.record.status is QueryStatus.FORWARDED
        repeat = proxy.serve(bind(radius=15.0))
        assert repeat.record.status is QueryStatus.EXACT

    def test_no_cache_never_caches(self, make_proxy, bind):
        proxy = make_proxy(scheme=CachingScheme.NO_CACHE)
        proxy.serve(bind())
        record = proxy.serve(bind()).record
        assert record.status is QueryStatus.NO_CACHE
        assert len(proxy.cache) == 0

    def test_containment_only_forwards_overlap(
        self, make_proxy, bind, origin
    ):
        proxy = make_proxy(scheme=CachingScheme.CONTAINMENT_ONLY)
        proxy.serve(bind(radius=12.0))
        shifted = bind(ra=164.25, radius=12.0)
        response = proxy.serve(shifted)
        assert response.record.status is QueryStatus.FORWARDED
        assert ids(response.result) == ids(
            origin.execute_bound(shifted).result
        )

    def test_second_scheme_handles_zoom_out_but_not_pan(
        self, make_proxy, bind
    ):
        proxy = make_proxy(scheme=CachingScheme.REGION_CONTAINMENT)
        proxy.serve(bind(radius=5.0))
        zoom_out = proxy.serve(bind(radius=18.0))
        assert zoom_out.record.status is QueryStatus.REGION_CONTAINMENT
        pan = proxy.serve(bind(ra=164.4, radius=18.0))
        assert pan.record.status is QueryStatus.FORWARDED


class TestSoundnessGuards:
    def test_different_signature_is_not_compared(self, make_proxy, bind):
        proxy = make_proxy()
        proxy.serve(bind(radius=15.0, r_min=18.0, r_max=20.0))
        # Same region subset, but different magnitude filter: the cached
        # entry misses tuples outside [18, 20], so containment answering
        # would be wrong.  The proxy must treat it as a miss.
        response = proxy.serve(bind(radius=6.0))
        assert response.record.status in (
            QueryStatus.DISJOINT, QueryStatus.FORWARDED,
        )
        assert response.record.contacted_origin

    def test_same_narrowed_signature_is_compared(
        self, make_proxy, bind, origin
    ):
        proxy = make_proxy()
        narrowed = dict(r_min=18.0, r_max=20.0)
        proxy.serve(bind(radius=15.0, **narrowed))
        inner = bind(radius=6.0, **narrowed)
        response = proxy.serve(inner)
        assert response.record.status is QueryStatus.CONTAINED
        assert ids(response.result) == ids(
            origin.execute_bound(inner).result
        )

    def test_nondeterministic_function_is_tunneled(self, origin, make_proxy):
        from repro.sqlparser.parser import parse_expression
        from repro.templates.function_template import FunctionTemplate, Shape
        from repro.templates.query_template import QueryTemplate

        ftemplate = FunctionTemplate(
            name="fRandomSample",
            params=("count",),
            shape=Shape.HYPERRECT,
            dims=2,
            point_exprs=(
                parse_expression("ra"), parse_expression("dec"),
            ),
            low_exprs=(
                parse_expression("0"), parse_expression("0"),
            ),
            high_exprs=(
                parse_expression("$count"), parse_expression("$count"),
            ),
        )
        template = QueryTemplate.from_sql(
            "t.random",
            "SELECT objID, ra, dec FROM fRandomSample($count) n",
            ftemplate,
            key_column="objID",
        )
        origin.templates.register_function_template(ftemplate)
        origin.templates.register_query_template(template)
        try:
            proxy = make_proxy()
            bound = origin.templates.bind("t.random", {"count": 5})
            first = proxy.serve(bound)
            second = proxy.serve(bound)
            assert first.record.status is QueryStatus.NO_CACHE
            assert second.record.status is QueryStatus.NO_CACHE
            assert len(proxy.cache) == 0
        finally:
            # Keep the session-scoped origin clean for other tests.
            origin.templates._query_templates.pop("t.random")
            origin.templates._function_templates.pop("frandomsample")

    def test_cache_budget_is_respected(self, make_proxy, bind):
        proxy = make_proxy(cache_bytes=6_000)
        for i in range(8):
            proxy.serve(bind(ra=162.0 + i * 0.6, radius=12.0))
        assert proxy.cache.current_bytes <= 6_000

    def test_timing_steps_recorded(self, make_proxy, bind):
        proxy = make_proxy()
        record = proxy.serve(bind()).record
        assert "parse" in record.steps_ms
        assert "origin" in record.steps_ms
        assert record.response_ms == pytest.approx(
            sum(record.steps_ms.values())
        )

    def test_check_wall_time_is_measured(self, make_proxy, bind):
        proxy = make_proxy()
        proxy.serve(bind(ra=162.5))
        record = proxy.serve(bind(ra=165.5)).record
        assert record.check_wall_ms >= 0.0

    def test_max_holes_validation(self, origin):
        with pytest.raises(ValueError):
            FunctionProxy(
                origin, origin.templates, max_holes=0
            )
