"""TOP-N truncated cache entries serve exact matches only.

A query with TOP-N may return a strict prefix of its region's tuples;
caching that prefix and answering a *contained* query from it would
silently drop rows.  The paper does not discuss this interaction; the
implementation guards it by marking such entries ``truncated`` and
excluding them from containment/overlap reasoning (DESIGN.md records
the decision).
"""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryStatus
from repro.templates.query_template import QueryTemplate
from repro.templates.skyserver_templates import (
    RADIAL_SQL,
    radial_function_template,
)

TOP_TEMPLATE_ID = "radial.top"


@pytest.fixture()
def top_templates(origin):
    """The origin's templates plus a TOP-3 radial variant."""
    templates = origin.templates
    if TOP_TEMPLATE_ID.lower() not in templates._query_templates:
        top_sql = "SELECT TOP 3 " + RADIAL_SQL[len("SELECT "):] + (
            " ORDER BY n.distance"
        )
        templates.register_query_template(
            QueryTemplate.from_sql(
                TOP_TEMPLATE_ID,
                top_sql,
                radial_function_template(),
                key_column="objID",
            )
        )
    yield templates
    templates._query_templates.pop(TOP_TEMPLATE_ID.lower(), None)


def test_truncated_entry_only_serves_exact(
    origin, top_templates, radial_params
):
    proxy = FunctionProxy(origin, top_templates)
    big = top_templates.bind(
        TOP_TEMPLATE_ID, dict(radial_params, radius=20.0)
    )
    first = proxy.serve(big)
    assert len(first.result) == 3  # hit the TOP limit -> truncated entry

    # An identical query is still an exact hit...
    repeat = proxy.serve(big)
    assert repeat.record.status is QueryStatus.EXACT

    # ...but a contained query must NOT be answered from the truncated
    # prefix: its true top-3-by-distance may include tuples the prefix
    # lacks.
    small = top_templates.bind(
        TOP_TEMPLATE_ID, dict(radial_params, radius=6.0)
    )
    response = proxy.serve(small)
    assert response.record.status in (
        QueryStatus.DISJOINT, QueryStatus.FORWARDED,
    )
    expected = origin.execute_bound(small).result
    key = expected.schema.position("objID")
    assert {r[key] for r in response.result.rows} == {
        r[key] for r in expected.rows
    }


def test_untruncated_top_entry_can_serve_containment(
    origin, top_templates, radial_params
):
    """A TOP-N query whose region held fewer than N tuples is complete
    and safely answers contained queries."""
    proxy = FunctionProxy(origin, top_templates)
    # A tiny radius returns fewer than 3 tuples: not truncated.
    tiny = top_templates.bind(
        TOP_TEMPLATE_ID, dict(radial_params, radius=1.2)
    )
    first = proxy.serve(tiny)
    if len(first.result) >= 3:
        pytest.skip("region unexpectedly dense; pick a smaller radius")
    smaller = top_templates.bind(
        TOP_TEMPLATE_ID, dict(radial_params, radius=0.6)
    )
    response = proxy.serve(smaller)
    assert response.record.status is QueryStatus.CONTAINED
    expected = origin.execute_bound(smaller).result
    key = expected.schema.position("objID")
    assert {r[key] for r in response.result.rows} == {
        r[key] for r in expected.rows
    }
