"""Scheme policies."""

import pytest

from repro.core.schemes import CachingScheme, SchemePolicy


class TestPolicies:
    def test_no_cache_does_nothing(self):
        policy = CachingScheme.NO_CACHE.policy
        assert not policy.caches
        assert not policy.handles_containment
        assert not CachingScheme.NO_CACHE.is_active

    def test_passive_caches_but_is_not_active(self):
        policy = CachingScheme.PASSIVE.policy
        assert policy.caches
        assert not policy.handles_containment

    def test_full_semantic_handles_everything(self):
        policy = CachingScheme.FULL_SEMANTIC.policy
        assert policy.handles_containment
        assert policy.handles_region_containment
        assert policy.handles_overlap

    def test_second_scheme_stops_at_region_containment(self):
        policy = CachingScheme.REGION_CONTAINMENT.policy
        assert policy.handles_region_containment
        assert not policy.handles_overlap

    def test_third_scheme_is_containment_only(self):
        policy = CachingScheme.CONTAINMENT_ONLY.policy
        assert policy.handles_containment
        assert not policy.handles_region_containment
        assert not policy.handles_overlap

    def test_policy_ordering_is_monotone(self):
        # Each active scheme handles a superset of the next one's cases.
        full = CachingScheme.FULL_SEMANTIC.policy
        second = CachingScheme.REGION_CONTAINMENT.policy
        third = CachingScheme.CONTAINMENT_ONLY.policy
        for weaker, stronger in ((third, second), (second, full)):
            assert stronger.handles_containment >= (
                weaker.handles_containment
            )
            assert stronger.handles_region_containment >= (
                weaker.handles_region_containment
            )
            assert stronger.handles_overlap >= weaker.handles_overlap


class TestPolicyValidation:
    def test_overlap_without_region_containment_is_invalid(self):
        with pytest.raises(ValueError):
            SchemePolicy(
                caches=True,
                handles_containment=True,
                handles_region_containment=False,
                handles_overlap=True,
            )

    def test_active_without_caching_is_invalid(self):
        with pytest.raises(ValueError):
            SchemePolicy(
                caches=False,
                handles_containment=True,
                handles_region_containment=False,
                handles_overlap=False,
            )
