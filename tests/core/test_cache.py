"""Cache manager: budget, LRU, description synchronization."""

import pytest

from repro.core.cache import CacheError, CacheManager
from repro.core.description import ArrayDescription
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


@pytest.fixture()
def bind(templates, radial_params):
    def make(radius=10.0, ra=164.0):
        params = dict(radial_params, radius=radius, ra=ra)
        return templates.bind(RADIAL_TEMPLATE_ID, params)

    return make


@pytest.fixture()
def result_of(origin):
    def run(bound):
        return origin.execute_bound(bound).result

    return run


def make_cache(max_bytes=None):
    return CacheManager(ArrayDescription(), max_bytes=max_bytes)


class TestStore:
    def test_store_and_exact_match(self, bind, result_of):
        cache = make_cache()
        bound = bind()
        entry, report = cache.store(bound, result_of(bound), "sig", False)
        assert entry is not None
        assert report.stored_bytes == entry.byte_size
        assert cache.exact_match(bound) is entry
        assert cache.current_bytes == entry.byte_size

    def test_miss_for_different_params(self, bind, result_of):
        cache = make_cache()
        bound = bind()
        cache.store(bound, result_of(bound), "sig", False)
        assert cache.exact_match(bind(radius=11.0)) is None

    def test_replacing_same_key_keeps_one_entry(self, bind, result_of):
        cache = make_cache()
        bound = bind()
        result = result_of(bound)
        cache.store(bound, result, "sig", False)
        cache.store(bound, result, "sig", False)
        assert len(cache) == 1
        assert cache.current_bytes == result.byte_size()

    def test_oversized_result_is_not_cached(self, bind, result_of):
        cache = make_cache(max_bytes=10)
        bound = bind()
        entry, _report = cache.store(bound, result_of(bound), "sig", False)
        assert entry is None
        assert len(cache) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(CacheError):
            make_cache(max_bytes=-1)


class TestLru:
    def test_eviction_order_is_least_recently_used(self, bind, result_of):
        first = bind(ra=163.0)
        second = bind(ra=164.0)
        third = bind(ra=165.0)
        size = result_of(first).byte_size()
        budget = result_of(first).byte_size() + result_of(
            second
        ).byte_size() + result_of(third).byte_size() // 2
        cache = make_cache(max_bytes=budget)

        entry1, _ = cache.store(first, result_of(first), "sig", False)
        cache.store(second, result_of(second), "sig", False)
        cache.touch(entry1)  # first is now most recently used
        cache.store(third, result_of(third), "sig", False)

        assert cache.exact_match(first) is not None
        assert cache.exact_match(second) is None  # evicted
        assert cache.exact_match(third) is not None
        assert cache.evictions >= 1
        assert cache.current_bytes <= budget
        assert size > 0

    def test_remove_updates_bytes_and_lookup(self, bind, result_of):
        cache = make_cache()
        bound = bind()
        entry, _ = cache.store(bound, result_of(bound), "sig", False)
        cache.remove(entry)
        assert cache.exact_match(bound) is None
        assert cache.current_bytes == 0

    def test_unknown_entry_lookup_raises(self, bind, result_of):
        cache = make_cache()
        with pytest.raises(CacheError):
            cache.entry(999)

    def test_remove_is_idempotent(self, bind, result_of):
        """Regression: consolidation may remove an entry that eviction
        already dropped while making room for the merged result."""
        cache = make_cache()
        bound = bind()
        entry, _ = cache.store(bound, result_of(bound), "sig", False)
        cache.remove(entry)
        report = cache.remove(entry)  # second removal must be a no-op
        assert report.description_work == 0.0
        assert cache.current_bytes == 0


class TestRaceHardening:
    """Lookup-vs-eviction races (REVIEW: lock-free lookups could see a
    concurrent ``_remove`` mid-flight)."""

    def test_exact_match_pinned_returns_entry_with_result(
        self, bind, result_of
    ):
        cache = make_cache()
        bound = bind()
        result = result_of(bound)
        entry, _ = cache.store(bound, result, "sig", False)
        pinned = cache.exact_match_pinned(bound)
        assert pinned is not None
        pinned_entry, pinned_result = pinned
        assert pinned_entry is entry
        assert pinned_result.rows == result.rows

    def test_exact_match_pinned_miss_is_none(self, bind):
        assert make_cache().exact_match_pinned(bind()) is None

    def test_touch_after_removal_is_a_noop(self, bind, result_of):
        """A candidate handed out before a concurrent eviction must not
        resurrect replacement-policy bookkeeping when touched."""
        cache = make_cache()
        bound = bind()
        entry, _ = cache.store(bound, result_of(bound), "sig", False)
        cache.remove(entry)
        before = (entry.last_used, entry.access_count)
        cache.touch(entry)
        assert (entry.last_used, entry.access_count) == before


class TestDescriptionSync:
    def test_description_tracks_store_and_evict(self, bind, result_of):
        cache = make_cache()
        a = bind(ra=163.0)
        b = bind(ra=165.0)
        cache.store(a, result_of(a), "sig", False)
        cache.store(b, result_of(b), "sig", False)
        candidates, _ = cache.description.candidates(
            RADIAL_TEMPLATE_ID, a.region
        )
        assert any(e.cache_key == a.cache_key() for e in candidates)

        entry = cache.exact_match(a)
        cache.remove(entry)
        candidates, _ = cache.description.candidates(
            RADIAL_TEMPLATE_ID, a.region
        )
        assert not any(e.cache_key == a.cache_key() for e in candidates)
