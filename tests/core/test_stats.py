"""Statistics records and aggregation."""

import pytest

from repro.core.stats import QueryRecord, QueryStatus, TraceStats


def record(
    status=QueryStatus.EXACT,
    response_ms=100.0,
    total=10,
    from_cache=10,
    contacted=False,
    steps=None,
    check_wall=0.5,
):
    return QueryRecord(
        index=1,
        template_id="t",
        status=status,
        response_ms=response_ms,
        tuples_total=total,
        tuples_from_cache=from_cache,
        result_bytes=1000,
        origin_bytes=0 if not contacted else 1000,
        contacted_origin=contacted,
        steps_ms=steps or {},
        check_wall_ms=check_wall,
    )


class TestCacheEfficiency:
    def test_full_cache_answer(self):
        assert record().cache_efficiency == 1.0

    def test_partial(self):
        r = record(total=10, from_cache=4, contacted=True)
        assert r.cache_efficiency == pytest.approx(0.4)

    def test_empty_result_without_origin_counts_full(self):
        r = record(total=0, from_cache=0, contacted=False)
        assert r.cache_efficiency == 1.0

    def test_empty_result_with_origin_counts_zero(self):
        r = record(total=0, from_cache=0, contacted=True)
        assert r.cache_efficiency == 0.0


class TestTraceStats:
    def test_averages(self):
        stats = TraceStats(
            [
                record(response_ms=100.0),
                record(response_ms=300.0, total=10, from_cache=0,
                       contacted=True, status=QueryStatus.DISJOINT),
            ]
        )
        assert stats.average_response_ms == pytest.approx(200.0)
        assert stats.average_cache_efficiency == pytest.approx(0.5)
        assert stats.hit_ratio == pytest.approx(0.5)

    def test_empty_stats_are_zero(self):
        stats = TraceStats()
        assert stats.average_response_ms == 0.0
        assert stats.average_cache_efficiency == 0.0
        assert stats.hit_ratio == 0.0
        assert stats.max_check_wall_ms() == 0.0

    def test_status_fractions(self):
        stats = TraceStats(
            [record(), record(), record(status=QueryStatus.DISJOINT)]
        )
        fractions = stats.status_fractions()
        assert fractions[QueryStatus.EXACT] == pytest.approx(2 / 3)
        assert fractions[QueryStatus.DISJOINT] == pytest.approx(1 / 3)

    def test_percentiles(self):
        stats = TraceStats(
            [record(response_ms=float(v)) for v in (10, 20, 30, 40, 50)]
        )
        assert stats.response_percentile(0.0) == 10.0
        assert stats.response_percentile(0.5) == 30.0
        assert stats.response_percentile(1.0) == 50.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            TraceStats().response_percentile(1.5)

    def test_average_step_ms(self):
        stats = TraceStats(
            [
                record(steps={"check": 2.0, "read": 4.0}),
                record(steps={"check": 4.0}),
            ]
        )
        steps = stats.average_step_ms()
        assert steps["check"] == pytest.approx(3.0)
        assert steps["read"] == pytest.approx(2.0)

    def test_first_prefix(self):
        stats = TraceStats([record(response_ms=float(i)) for i in range(10)])
        assert len(stats.first(3)) == 3
        assert stats.first(3).average_response_ms == pytest.approx(1.0)

    def test_max_check_wall(self):
        stats = TraceStats(
            [record(check_wall=0.5), record(check_wall=2.5)]
        )
        assert stats.max_check_wall_ms() == 2.5

    def test_check_wall_summary_ignores_unchecked_queries(self):
        # Exact matches never run a description check; their zero
        # check_wall_ms must not drag the percentiles down.
        checked = [
            record(steps={"check": 1.0}, check_wall=float(v))
            for v in (1, 2, 3, 4, 5)
        ]
        unchecked = [record(steps={"read": 1.0}, check_wall=0.0)] * 5
        stats = TraceStats(checked + unchecked)
        summary = stats.check_wall_summary()
        assert summary["p50"] == 3.0
        assert summary["p95"] == 5.0
        assert summary["max"] == 5.0

    def test_check_wall_summary_empty(self):
        summary = TraceStats().check_wall_summary()
        assert summary == {"p50": 0.0, "p95": 0.0, "max": 0.0}

    def test_check_wall_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            TraceStats().check_wall_percentile(-0.1)
