"""Executor semantics on a hand-built catalog."""

import pytest

from repro.relational.catalog import Catalog
from repro.relational.errors import CatalogError, ExecutionError
from repro.relational.executor import Executor
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.sqlparser.parser import parse_select
from repro.udf.registry import TableFunction


@pytest.fixture()
def catalog():
    catalog = Catalog()
    users = Table(
        "Users",
        Schema.of(
            ("id", ColumnType.INT),
            ("name", ColumnType.STR),
            ("age", ColumnType.INT),
            ("city", ColumnType.STR),
        ),
        primary_key="id",
    )
    users.insert_many(
        [
            (1, "ada", 36, "london"),
            (2, "alan", 41, "london"),
            (3, "grace", 85, "arlington"),
            (4, "edsger", 72, None),
        ]
    )
    catalog.add_table(users)

    orders = Table(
        "Orders",
        Schema.of(
            ("order_id", ColumnType.INT),
            ("user_id", ColumnType.INT),
            ("total", ColumnType.FLOAT),
        ),
        primary_key="order_id",
    )
    orders.insert_many(
        [
            (10, 1, 25.0),
            (11, 1, 75.0),
            (12, 3, 10.0),
            (13, 9, 99.0),  # dangling user
        ]
    )
    catalog.add_table(orders)

    catalog.functions.register_table(
        TableFunction(
            name="fTopUsers",
            params=("min_age",),
            schema=Schema.of(
                ("id", ColumnType.INT), ("age", ColumnType.INT)
            ),
            impl=lambda cat, args: [
                (row[0], row[2])
                for row in users.rows
                if row[2] >= args[0]
            ],
        )
    )
    return catalog


@pytest.fixture()
def execute(catalog):
    executor = Executor(catalog)

    def run(sql):
        return executor.execute(parse_select(sql))

    return run


class TestScanFilterProject:
    def test_simple_select(self, execute):
        result = execute("SELECT name FROM Users WHERE age > 40")
        assert sorted(result.column_values("name")) == [
            "alan", "edsger", "grace",
        ]

    def test_select_star(self, execute):
        result = execute("SELECT * FROM Users")
        assert result.column_names == ("id", "name", "age", "city")
        assert len(result) == 4

    def test_where_null_is_not_true(self, execute):
        # edsger's city is NULL; `city <> 'london'` is NULL for him.
        result = execute("SELECT name FROM Users WHERE city <> 'london'")
        assert result.column_values("name") == ["grace"]

    def test_is_null_predicate(self, execute):
        result = execute("SELECT name FROM Users WHERE city IS NULL")
        assert result.column_values("name") == ["edsger"]

    def test_computed_select_item_with_alias(self, execute):
        result = execute("SELECT age * 2 AS doubled FROM Users WHERE id = 1")
        assert result.column_names == ("doubled",)
        assert result.column_values("doubled") == [72]

    def test_in_predicate(self, execute):
        result = execute(
            "SELECT name FROM Users WHERE city IN ('arlington', 'nowhere')"
        )
        assert result.column_values("name") == ["grace"]


class TestOrderAndTop:
    def test_order_by(self, execute):
        result = execute("SELECT name FROM Users ORDER BY age DESC")
        assert result.column_values("name") == [
            "grace", "edsger", "alan", "ada",
        ]

    def test_order_by_with_nulls_last(self, execute):
        result = execute("SELECT name FROM Users ORDER BY city")
        assert result.column_values("name")[-1] == "edsger"

    def test_top(self, execute):
        result = execute("SELECT TOP 2 name FROM Users ORDER BY age")
        assert result.column_values("name") == ["ada", "alan"]

    def test_top_zero(self, execute):
        assert len(execute("SELECT TOP 0 name FROM Users")) == 0

    def test_order_by_expression_not_in_select_list(self, execute):
        result = execute("SELECT name FROM Users ORDER BY age * -1")
        assert result.column_values("name")[0] == "grace"


class TestJoins:
    def test_pk_lookup_join(self, execute):
        result = execute(
            "SELECT u.name, o.total FROM Orders o "
            "JOIN Users u ON o.user_id = u.id"
        )
        assert len(result) == 3  # dangling order drops out
        assert sorted(result.column_values("total")) == [10.0, 25.0, 75.0]

    def test_hash_join_on_non_key(self, execute):
        # Join on city (not a primary key) exercises the hash-join path.
        result = execute(
            "SELECT u.name, v.name AS other FROM Users u "
            "JOIN Users v ON u.city = v.city WHERE u.id < v.id"
        )
        assert len(result) == 1
        assert result.rows[0] == ("ada", "alan")

    def test_nested_loop_join_on_inequality(self, execute):
        result = execute(
            "SELECT u.name FROM Orders o JOIN Users u ON o.total > u.age"
        )
        # totals 25/75/10/99 vs ages 36/41/85/72:
        # 75 beats 36/41/72; 99 beats all four -> 7 rows.
        assert len(result) == 7

    def test_join_preserves_qualified_access(self, execute):
        result = execute(
            "SELECT o.user_id, u.id FROM Orders o "
            "JOIN Users u ON o.user_id = u.id WHERE u.age > 80"
        )
        assert result.rows == [(3, 3)]


class TestTableFunctions:
    def test_tvf_scan(self, execute):
        result = execute("SELECT id FROM fTopUsers(50)")
        assert sorted(result.column_values("id")) == [3, 4]

    def test_tvf_join_back(self, execute):
        result = execute(
            "SELECT u.name FROM fTopUsers(50) t JOIN Users u ON t.id = u.id"
        )
        assert sorted(result.column_values("name")) == ["edsger", "grace"]

    def test_tvf_argument_expression(self, execute):
        result = execute("SELECT id FROM fTopUsers(25 + 25)")
        assert len(result) == 2

    def test_tvf_with_parameter_arg_fails(self, execute):
        with pytest.raises(ExecutionError, match="non-constant"):
            execute("SELECT id FROM fTopUsers($age)")


class TestErrors:
    def test_unknown_table(self, execute):
        with pytest.raises(CatalogError):
            execute("SELECT x FROM Missing")

    def test_unknown_select_column(self, execute):
        with pytest.raises(ExecutionError, match="unknown column"):
            execute("SELECT salary FROM Users")


class TestOperatorCounters:
    """The ``executor.*`` profiler stages (hot-path operator counters)."""

    @pytest.fixture()
    def profiled(self, catalog):
        from repro.obs.profiling import Profiler

        profiler = Profiler(top_k=3, clock=lambda: 0.0)
        executor = Executor(catalog, profiler=profiler)

        def run(sql):
            return executor.execute(parse_select(sql))

        return run, profiler

    def test_default_is_noop(self, catalog):
        from repro.obs.profiling import NULL_PROFILER

        assert Executor(catalog).profiler is NULL_PROFILER

    def test_scan_filter_project(self, profiled):
        run, profiler = profiled
        run("SELECT name FROM Users WHERE age > 50")
        scan = profiler.stats("executor.scan")
        assert scan.calls == 1
        assert scan.counters["rows"] == 4
        filt = profiler.stats("executor.filter")
        assert filt.counters["rows_in"] == 4
        assert filt.counters["rows_out"] == 2
        project = profiler.stats("executor.project")
        assert project.counters["rows"] == 2

    def test_join_strategy_counters(self, profiled):
        run, profiler = profiled
        run("SELECT u.name FROM Orders o JOIN Users u ON o.user_id = u.id")
        join = profiler.stats("executor.join")
        assert join.calls == 1
        assert join.counters["pk_lookup"] == 1
        assert join.counters["rows_out"] == 3  # dangling user dropped

    def test_nested_loop_counter(self, profiled):
        run, profiler = profiled
        run("SELECT u.name FROM Orders o JOIN Users u ON o.total > u.age")
        join = profiler.stats("executor.join")
        assert join.counters["nested_loop"] == 1

    def test_aggregate_groups_counter(self, profiled):
        run, profiler = profiled
        run("SELECT city, COUNT(*) AS n FROM Users GROUP BY city")
        agg = profiler.stats("executor.aggregate")
        assert agg.calls == 1
        assert agg.counters["groups"] == 3  # london, arlington, NULL
