"""Column type coercion and sizing."""

import pytest

from repro.relational.errors import SchemaError
from repro.relational.types import ColumnType, infer_type


class TestCoerce:
    def test_int_accepts_int(self):
        assert ColumnType.INT.coerce(5) == 5

    def test_int_rejects_bool(self):
        # bool is an int subclass; the engine keeps them apart.
        with pytest.raises(SchemaError):
            ColumnType.INT.coerce(True)

    def test_int_rejects_float(self):
        with pytest.raises(SchemaError):
            ColumnType.INT.coerce(1.5)

    def test_float_widens_int(self):
        value = ColumnType.FLOAT.coerce(3)
        assert value == 3.0
        assert isinstance(value, float)

    def test_float_rejects_string(self):
        with pytest.raises(SchemaError):
            ColumnType.FLOAT.coerce("3.0")

    def test_str_accepts_str(self):
        assert ColumnType.STR.coerce("abc") == "abc"

    def test_str_rejects_number(self):
        with pytest.raises(SchemaError):
            ColumnType.STR.coerce(3)

    def test_bool_accepts_bool(self):
        assert ColumnType.BOOL.coerce(False) is False

    def test_bool_rejects_int(self):
        with pytest.raises(SchemaError):
            ColumnType.BOOL.coerce(1)

    @pytest.mark.parametrize("ctype", list(ColumnType))
    def test_none_passes_every_type(self, ctype):
        assert ctype.coerce(None) is None


class TestByteSize:
    def test_numbers_are_eight_bytes(self):
        assert ColumnType.INT.byte_size(123456) == 8
        assert ColumnType.FLOAT.byte_size(1.5) == 8

    def test_string_is_utf8_length(self):
        assert ColumnType.STR.byte_size("abc") == 3
        assert ColumnType.STR.byte_size("héllo") == 6

    def test_bool_is_one_byte(self):
        assert ColumnType.BOOL.byte_size(True) == 1

    def test_null_is_four_bytes(self):
        assert ColumnType.FLOAT.byte_size(None) == 4


class TestInferType:
    def test_infer_each_type(self):
        assert infer_type(True) is ColumnType.BOOL
        assert infer_type(3) is ColumnType.INT
        assert infer_type(3.5) is ColumnType.FLOAT
        assert infer_type("x") is ColumnType.STR

    def test_infer_rejects_unknown(self):
        with pytest.raises(SchemaError):
            infer_type([1, 2])
