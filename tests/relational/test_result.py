"""Result tables: sizing, operations, and the XML wire format."""

import pytest

from repro.relational.errors import ExecutionError, SchemaError
from repro.relational.result import ResultTable
from repro.relational.schema import Schema
from repro.relational.types import ColumnType


def schema():
    return Schema.of(
        ("id", ColumnType.INT),
        ("name", ColumnType.STR),
        ("score", ColumnType.FLOAT),
    )


def table(rows):
    return ResultTable(schema(), rows)


SAMPLE = [
    (1, "a", 3.5),
    (2, "b", 1.5),
    (3, None, 2.5),
]


class TestBasics:
    def test_len_and_iteration(self):
        result = table(SAMPLE)
        assert len(result) == 3
        assert list(result)[0] == (1, "a", 3.5)

    def test_column_values(self):
        assert table(SAMPLE).column_values("id") == [1, 2, 3]

    def test_row_dicts(self):
        first = next(table(SAMPLE).row_dicts())
        assert first == {"id": 1, "name": "a", "score": 3.5}

    def test_equality_ignores_schema_types_but_not_names(self):
        other = ResultTable(
            Schema.of(("id", ColumnType.INT), ("x", ColumnType.STR),
                      ("score", ColumnType.FLOAT)),
            SAMPLE,
        )
        assert table(SAMPLE) != other
        assert table(SAMPLE) == table(list(SAMPLE))


class TestByteSize:
    def test_empty_table_has_header_overhead_only(self):
        assert table([]).byte_size() == 128

    def test_size_grows_with_rows(self):
        one = table(SAMPLE[:1]).byte_size()
        three = table(SAMPLE).byte_size()
        assert three > one > 128

    def test_size_is_cached_and_stable(self):
        result = table(SAMPLE)
        assert result.byte_size() == result.byte_size()


class TestOperations:
    def test_filtered(self):
        kept = table(SAMPLE).filtered(lambda row: row[0] > 1)
        assert [row[0] for row in kept.rows] == [2, 3]

    def test_top_n(self):
        assert len(table(SAMPLE).top_n(2)) == 2
        assert len(table(SAMPLE).top_n(10)) == 3

    def test_top_n_negative_raises(self):
        with pytest.raises(ExecutionError):
            table(SAMPLE).top_n(-1)

    def test_sorted_by_with_nulls_last(self):
        result = table(SAMPLE).sorted_by(["name"])
        assert [row[1] for row in result.rows] == ["a", "b", None]

    def test_sorted_by_descending(self):
        result = table(SAMPLE).sorted_by(["score"], descending=[True])
        assert [row[2] for row in result.rows] == [3.5, 2.5, 1.5]

    def test_merge_dedup_prefers_first(self):
        left = table([(1, "left", 1.0)])
        right = table([(1, "right", 2.0), (2, "new", 3.0)])
        merged = left.merge_dedup(right, key="id")
        assert len(merged) == 2
        assert merged.rows[0] == (1, "left", 1.0)
        assert merged.rows[1] == (2, "new", 3.0)

    def test_merge_dedup_rejects_mismatched_columns(self):
        other = ResultTable(Schema.of(("id", ColumnType.INT)), [(1,)])
        with pytest.raises(SchemaError):
            table(SAMPLE).merge_dedup(other, key="id")


class TestXml:
    def test_roundtrip(self):
        original = table(SAMPLE)
        restored = ResultTable.from_xml(original.to_xml())
        assert restored == original
        assert restored.schema.column("score").type is ColumnType.FLOAT

    def test_roundtrip_empty(self):
        original = table([])
        assert ResultTable.from_xml(original.to_xml()) == original

    def test_roundtrip_bool_column(self):
        boolean = ResultTable(
            Schema.of(("flag", ColumnType.BOOL)), [(True,), (False,)]
        )
        assert ResultTable.from_xml(boolean.to_xml()) == boolean

    def test_malformed_xml_raises(self):
        with pytest.raises(ExecutionError):
            ResultTable.from_xml("<not-closed>")

    def test_null_cells_survive(self):
        restored = ResultTable.from_xml(table(SAMPLE).to_xml())
        assert restored.rows[2][1] is None
