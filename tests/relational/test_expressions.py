"""Expression evaluation, including SQL three-valued logic."""

import pytest

from repro.relational.errors import ExecutionError
from repro.relational.expressions import (
    And,
    Between,
    BinaryOp,
    BinaryOperator,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Literal,
    Negate,
    Not,
    Or,
    conjoin,
)


def lit(value):
    return Literal(value)


class TestBasics:
    def test_literal(self):
        assert lit(42).evaluate({}) == 42
        assert lit(None).evaluate({}) is None

    def test_column_ref(self):
        assert ColumnRef("ra").evaluate({"ra": 1.5}) == 1.5

    def test_column_ref_case_insensitive(self):
        assert ColumnRef("RA").evaluate({"ra": 1.5}) == 1.5

    def test_unqualified_resolves_through_single_qualified(self):
        env = {"p.ra": 1.5}
        assert ColumnRef("ra").evaluate(env) == 1.5

    def test_ambiguous_unqualified_raises(self):
        env = {"p.ra": 1.5, "n.ra": 2.5}
        with pytest.raises(ExecutionError, match="ambiguous"):
            ColumnRef("ra").evaluate(env)

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError, match="unknown column"):
            ColumnRef("nope").evaluate({})

    def test_arithmetic(self):
        expr = BinaryOp(BinaryOperator.ADD, lit(2), lit(3))
        assert expr.evaluate({}) == 5

    def test_division_by_zero_raises(self):
        expr = BinaryOp(BinaryOperator.DIV, lit(1), lit(0))
        with pytest.raises(ExecutionError, match="division by zero"):
            expr.evaluate({})

    def test_comparison(self):
        expr = BinaryOp(BinaryOperator.LE, lit(2), lit(3))
        assert expr.evaluate({}) is True

    def test_negate(self):
        assert Negate(lit(5)).evaluate({}) == -5
        assert Negate(lit(None)).evaluate({}) is None


class TestNullLogic:
    """SQL three-valued (Kleene) logic with None as NULL."""

    def test_comparison_with_null_is_null(self):
        expr = BinaryOp(BinaryOperator.EQ, lit(None), lit(3))
        assert expr.evaluate({}) is None

    def test_and_short_circuits_false(self):
        expr = And((lit(False), lit(None)))
        assert expr.evaluate({}) is False

    def test_and_with_null_and_true_is_null(self):
        expr = And((lit(True), lit(None)))
        assert expr.evaluate({}) is None

    def test_or_short_circuits_true(self):
        expr = Or((lit(None), lit(True)))
        assert expr.evaluate({}) is True

    def test_or_with_null_and_false_is_null(self):
        expr = Or((lit(False), lit(None)))
        assert expr.evaluate({}) is None

    def test_not_null_is_null(self):
        assert Not(lit(None)).evaluate({}) is None

    def test_between_null_operand(self):
        expr = Between(lit(None), lit(0), lit(10))
        assert expr.evaluate({}) is None

    def test_is_null(self):
        assert IsNull(lit(None)).evaluate({}) is True
        assert IsNull(lit(3)).evaluate({}) is False
        assert IsNull(lit(3), negated=True).evaluate({}) is True

    def test_in_list_with_null_choice(self):
        # 2 IN (1, NULL) is NULL (unknown), per SQL.
        expr = InList(lit(2), (lit(1), lit(None)))
        assert expr.evaluate({}) is None

    def test_in_list_hit_beats_null(self):
        expr = InList(lit(1), (lit(1), lit(None)))
        assert expr.evaluate({}) is True


class TestBetweenAndIn:
    def test_between_inclusive(self):
        assert Between(lit(5), lit(5), lit(10)).evaluate({}) is True
        assert Between(lit(10), lit(5), lit(10)).evaluate({}) is True
        assert Between(lit(11), lit(5), lit(10)).evaluate({}) is False

    def test_in_list(self):
        expr = InList(lit("b"), (lit("a"), lit("b")))
        assert expr.evaluate({}) is True


class TestFuncCall:
    def test_builtin_trig(self):
        expr = FuncCall("cos", (lit(0.0),))
        assert expr.evaluate({}) == pytest.approx(1.0)

    def test_builtin_is_case_insensitive(self):
        assert FuncCall("SQRT", (lit(9.0),)).evaluate({}) == pytest.approx(3.0)

    def test_null_argument_yields_null(self):
        assert FuncCall("cos", (lit(None),)).evaluate({}) is None

    def test_unknown_function_raises(self):
        with pytest.raises(ExecutionError, match="unknown scalar function"):
            FuncCall("fNothing", ()).evaluate({})

    def test_registry_resolution(self):
        from repro.udf.registry import FunctionRegistry, ScalarFunction

        registry = FunctionRegistry()
        registry.register_scalar(
            ScalarFunction("double", ("x",), lambda x: 2 * x)
        )
        expr = FuncCall("double", (lit(21),))
        assert expr.evaluate({"__functions__": registry}) == 42

    def test_domain_error_is_wrapped(self):
        with pytest.raises(ExecutionError):
            FuncCall("sqrt", (lit(-1.0),)).evaluate({})


class TestToSql:
    def test_string_escaping(self):
        assert lit("O'Brien").to_sql() == "'O''Brien'"

    def test_null_literal(self):
        assert lit(None).to_sql() == "NULL"

    def test_nested_expression(self):
        expr = And(
            (
                BinaryOp(BinaryOperator.LT, ColumnRef("g"), lit(20.5)),
                Between(ColumnRef("r"), lit(1), lit(2)),
            )
        )
        assert expr.to_sql() == "((g < 20.5) AND (r BETWEEN 1 AND 2))"

    def test_column_refs_collects_all(self):
        expr = And(
            (
                BinaryOp(BinaryOperator.LT, ColumnRef("p.g"), lit(1)),
                Between(ColumnRef("r"), ColumnRef("lo"), lit(2)),
            )
        )
        assert expr.column_refs() == {"p.g", "r", "lo"}


class TestConjoin:
    def test_empty_is_none(self):
        assert conjoin([]) is None

    def test_single_passes_through(self):
        expr = lit(True)
        assert conjoin([expr]) is expr

    def test_skips_none_parts(self):
        expr = lit(True)
        assert conjoin([None, expr, None]) is expr

    def test_multiple_becomes_and(self):
        combined = conjoin([lit(True), lit(False)])
        assert isinstance(combined, And)
        assert combined.evaluate({}) is False
