"""Schemas and tables."""

import pytest

from repro.relational.errors import SchemaError
from repro.relational.schema import Column, Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType


def people_schema() -> Schema:
    return Schema.of(
        ("id", ColumnType.INT),
        ("name", ColumnType.STR),
        ("age", ColumnType.INT),
    )


class TestSchema:
    def test_position_and_column_lookup(self):
        schema = people_schema()
        assert schema.position("name") == 1
        assert schema.column("AGE").type is ColumnType.INT

    def test_lookup_is_case_insensitive_but_preserves_spelling(self):
        schema = Schema.of(("objID", ColumnType.INT))
        assert schema.has("objid")
        assert schema.names == ("objID",)

    def test_unknown_column_raises_with_candidates(self):
        with pytest.raises(SchemaError, match="id, name, age"):
            people_schema().position("salary")

    def test_duplicate_column_raises(self):
        with pytest.raises(SchemaError):
            Schema.of(("a", ColumnType.INT), ("A", ColumnType.STR))

    def test_invalid_column_name_raises(self):
        with pytest.raises(SchemaError):
            Column("bad name", ColumnType.INT)

    def test_coerce_row_validates_arity(self):
        with pytest.raises(SchemaError):
            people_schema().coerce_row((1, "x"))

    def test_coerce_row_validates_types(self):
        with pytest.raises(SchemaError):
            people_schema().coerce_row((1, "x", "not-an-age"))

    def test_project_preserves_order(self):
        projected = people_schema().project(["age", "id"])
        assert projected.names == ("age", "id")

    def test_concat_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            people_schema().concat(Schema.of(("name", ColumnType.STR)))

    def test_rename_prefix(self):
        renamed = people_schema().rename_prefix("p")
        assert renamed.names == ("p.id", "p.name", "p.age")


class TestTable:
    def test_insert_and_iterate(self):
        table = Table("people", people_schema())
        table.insert((1, "ada", 36))
        table.insert((2, "alan", 41))
        assert len(table) == 2
        assert list(table)[1] == (2, "alan", 41)

    def test_primary_key_lookup(self):
        table = Table("people", people_schema(), primary_key="id")
        table.insert_many([(1, "ada", 36), (2, "alan", 41)])
        assert table.lookup(2) == (2, "alan", 41)
        assert table.lookup(99) is None

    def test_duplicate_primary_key_raises(self):
        table = Table("people", people_schema(), primary_key="id")
        table.insert((1, "ada", 36))
        with pytest.raises(SchemaError):
            table.insert((1, "alan", 41))

    def test_null_primary_key_raises(self):
        table = Table("people", people_schema(), primary_key="id")
        with pytest.raises(SchemaError):
            table.insert((None, "ada", 36))

    def test_lookup_without_primary_key_raises(self):
        table = Table("people", people_schema())
        with pytest.raises(SchemaError):
            table.lookup(1)

    def test_insert_validates_row(self):
        table = Table("people", people_schema())
        with pytest.raises(SchemaError):
            table.insert(("one", "ada", 36))
