"""Aggregates, GROUP BY, and DISTINCT."""

import pytest

from repro.relational.catalog import Catalog
from repro.relational.errors import ExecutionError
from repro.relational.executor import Executor
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.sqlparser.parser import parse_select


@pytest.fixture()
def execute():
    catalog = Catalog()
    sales = Table(
        "Sales",
        Schema.of(
            ("id", ColumnType.INT),
            ("region", ColumnType.STR),
            ("amount", ColumnType.FLOAT),
            ("discount", ColumnType.FLOAT),
        ),
        primary_key="id",
    )
    sales.insert_many(
        [
            (1, "east", 100.0, None),
            (2, "east", 300.0, 10.0),
            (3, "west", 50.0, 5.0),
            (4, "west", 150.0, None),
            (5, "west", 100.0, 20.0),
        ]
    )
    catalog.add_table(sales)
    executor = Executor(catalog)

    def run(sql):
        return executor.execute(parse_select(sql))

    return run


class TestPlainAggregates:
    def test_count_star(self, execute):
        result = execute("SELECT COUNT(*) AS n FROM Sales")
        assert result.rows == [(5,)]
        assert result.schema.column("n").type is ColumnType.INT

    def test_count_ignores_nulls(self, execute):
        result = execute("SELECT COUNT(discount) AS n FROM Sales")
        assert result.rows == [(3,)]

    def test_sum_avg_min_max(self, execute):
        result = execute(
            "SELECT sum(amount) s, avg(amount) a, min(amount) lo, "
            "max(amount) hi FROM Sales"
        )
        assert result.rows == [(700.0, 140.0, 50.0, 300.0)]

    def test_aggregate_over_empty_input(self, execute):
        result = execute(
            "SELECT COUNT(*) n, sum(amount) s FROM Sales WHERE amount > 999"
        )
        assert result.rows == [(0, None)]

    def test_aggregate_of_expression(self, execute):
        result = execute("SELECT sum(amount * 2) AS doubled FROM Sales")
        assert result.rows == [(1400.0,)]

    def test_expression_of_aggregates(self, execute):
        result = execute(
            "SELECT max(amount) - min(amount) AS spread FROM Sales"
        )
        assert result.rows == [(250.0,)]


class TestGroupBy:
    def test_group_with_count_and_avg(self, execute):
        result = execute(
            "SELECT region, COUNT(*) n, avg(amount) mean FROM Sales "
            "GROUP BY region ORDER BY region"
        )
        assert result.rows == [("east", 2, 200.0), ("west", 3, 100.0)]

    def test_order_by_aggregate_output(self, execute):
        result = execute(
            "SELECT region, COUNT(*) n FROM Sales GROUP BY region "
            "ORDER BY n DESC"
        )
        assert [row[0] for row in result.rows] == ["west", "east"]

    def test_group_by_expression(self, execute):
        result = execute(
            "SELECT amount / 100.0 AS bucket, COUNT(*) n FROM Sales "
            "GROUP BY amount / 100.0 ORDER BY bucket"
        )
        assert [row[0] for row in result.rows] == [0.5, 1.0, 1.5, 3.0]

    def test_ungrouped_column_rejected(self, execute):
        with pytest.raises(ExecutionError, match="GROUP BY"):
            execute("SELECT region, amount FROM Sales GROUP BY region")

    def test_where_applies_before_grouping(self, execute):
        result = execute(
            "SELECT region, COUNT(*) n FROM Sales WHERE amount >= 100 "
            "GROUP BY region ORDER BY region"
        )
        assert result.rows == [("east", 2), ("west", 2)]

    def test_top_after_grouping(self, execute):
        result = execute(
            "SELECT TOP 1 region, COUNT(*) n FROM Sales GROUP BY region "
            "ORDER BY n DESC"
        )
        assert result.rows == [("west", 3)]

    def test_select_star_with_group_by_rejected(self, execute):
        with pytest.raises(ExecutionError, match="aggregated"):
            execute("SELECT * FROM Sales GROUP BY region")


class TestDistinct:
    def test_distinct_single_column(self, execute):
        result = execute("SELECT DISTINCT region FROM Sales ORDER BY region")
        assert result.rows == [("east",), ("west",)]

    def test_distinct_tuple(self, execute):
        result = execute(
            "SELECT DISTINCT region, amount FROM Sales "
            "ORDER BY region, amount"
        )
        assert len(result) == 5  # no duplicate (region, amount) pairs

    def test_distinct_with_top(self, execute):
        result = execute(
            "SELECT DISTINCT TOP 1 region FROM Sales ORDER BY region"
        )
        assert result.rows == [("east",)]

    def test_distinct_order_by_must_use_select_list(self, execute):
        with pytest.raises(ExecutionError, match="select list"):
            execute("SELECT DISTINCT region FROM Sales ORDER BY amount")


class TestAggregateErrors:
    def test_count_star_outside_aggregation(self):
        from repro.relational.expressions import CountStar

        with pytest.raises(ExecutionError, match="aggregate context"):
            CountStar().evaluate({})

    def test_aggregate_arity(self, execute):
        with pytest.raises(ExecutionError, match="one argument"):
            execute("SELECT sum(amount, discount) FROM Sales")
