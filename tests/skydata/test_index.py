"""Grid index candidate sets vs brute force."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skydata.generator import SkyCatalogConfig, build_photo_primary
from repro.skydata.index import SkyGridIndex
from repro.skydata.sphere import angular_distance_arcmin

CONFIG = SkyCatalogConfig(
    n_objects=1_500, ra_min=100.0, ra_max=106.0, dec_min=0.0, dec_max=6.0
)


@pytest.fixture(scope="module")
def table():
    return build_photo_primary(CONFIG)


@pytest.fixture(scope="module")
def index(table):
    return SkyGridIndex(table, cell_deg=0.25)


def test_rejects_bad_cell_size(table):
    with pytest.raises(ValueError):
        SkyGridIndex(table, cell_deg=0.0)


def test_rect_candidates_are_superset_of_answers(table, index):
    ra_pos = table.schema.position("ra")
    dec_pos = table.schema.position("dec")
    box = (101.0, 102.0, 1.0, 2.0)
    candidates = set(index.candidates_in_rect(*box))
    for row_index, row in enumerate(table.rows):
        inside = (
            box[0] <= row[ra_pos] <= box[1]
            and box[2] <= row[dec_pos] <= box[3]
        )
        if inside:
            assert row_index in candidates


rect_boxes = st.tuples(
    st.floats(min_value=100.0, max_value=105.0),
    st.floats(min_value=0.1, max_value=1.0),
    st.floats(min_value=0.0, max_value=5.0),
    st.floats(min_value=0.1, max_value=1.0),
)


@given(box=rect_boxes)
@settings(max_examples=50, deadline=None)
def test_rect_candidates_superset_property(box):
    table = build_photo_primary(CONFIG)
    index = SkyGridIndex(table)
    ra_lo, ra_width, dec_lo, dec_width = box
    ra_hi, dec_hi = ra_lo + ra_width, dec_lo + dec_width
    ra_pos = table.schema.position("ra")
    dec_pos = table.schema.position("dec")
    candidates = set(
        index.candidates_in_rect(ra_lo, ra_hi, dec_lo, dec_hi)
    )
    expected = {
        i
        for i, row in enumerate(table.rows)
        if ra_lo <= row[ra_pos] <= ra_hi and dec_lo <= row[dec_pos] <= dec_hi
    }
    assert expected <= candidates


def test_circle_candidates_cover_all_members(table, index):
    ra_pos = table.schema.position("ra")
    dec_pos = table.schema.position("dec")
    center_ra, center_dec, radius = 103.0, 3.0, 45.0
    candidates = set(
        index.candidates_in_circle(center_ra, center_dec, radius)
    )
    for row_index, row in enumerate(table.rows):
        distance = angular_distance_arcmin(
            center_ra, center_dec, row[ra_pos], row[dec_pos]
        )
        if distance <= radius:
            assert row_index in candidates


def test_circle_prunes_far_cells(table, index):
    few = list(index.candidates_in_circle(103.0, 3.0, 5.0))
    assert len(few) < len(table)
