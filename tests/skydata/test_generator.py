"""Synthetic catalog generation."""

import pytest

from repro.relational.errors import CatalogError
from repro.skydata.generator import (
    PHOTO_PRIMARY_SCHEMA,
    SkyCatalogConfig,
    build_photo_primary,
    build_sky_catalog,
    generate_positions,
)
from repro.skydata.sphere import radec_to_unit

SMALL = SkyCatalogConfig(
    n_objects=2_000, ra_min=100.0, ra_max=110.0, dec_min=0.0, dec_max=10.0
)


class TestConfig:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            SkyCatalogConfig(ra_min=10.0, ra_max=10.0)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            SkyCatalogConfig(n_objects=-1)

    def test_rejects_bad_cluster_fraction(self):
        with pytest.raises(ValueError):
            SkyCatalogConfig(cluster_fraction=1.5)

    def test_area(self):
        assert SMALL.area_sq_deg == pytest.approx(100.0)


class TestPositions:
    def test_count_and_window(self):
        positions = generate_positions(SMALL)
        assert len(positions) == 2_000
        assert positions[:, 0].min() >= SMALL.ra_min
        assert positions[:, 0].max() <= SMALL.ra_max
        assert positions[:, 1].min() >= SMALL.dec_min
        assert positions[:, 1].max() <= SMALL.dec_max

    def test_deterministic_by_seed(self):
        a = generate_positions(SMALL)
        b = generate_positions(SMALL)
        assert (a == b).all()

    def test_different_seed_differs(self):
        import dataclasses

        other = dataclasses.replace(SMALL, seed=SMALL.seed + 1)
        assert (generate_positions(SMALL) != generate_positions(other)).any()

    def test_pure_uniform_mixture(self):
        import dataclasses

        uniform = dataclasses.replace(SMALL, cluster_fraction=0.0)
        assert len(generate_positions(uniform)) == SMALL.n_objects


class TestPhotoPrimary:
    def test_schema_and_count(self):
        table = build_photo_primary(SMALL)
        assert table.schema is PHOTO_PRIMARY_SCHEMA
        assert len(table) == SMALL.n_objects

    def test_unit_vectors_match_radec(self):
        table = build_photo_primary(SMALL)
        schema = table.schema
        row = table.rows[123]
        expected = radec_to_unit(
            row[schema.position("ra")], row[schema.position("dec")]
        )
        got = tuple(
            row[schema.position(c)] for c in ("cx", "cy", "cz")
        )
        assert got == pytest.approx(expected)

    def test_magnitudes_in_range(self):
        table = build_photo_primary(SMALL)
        r_pos = table.schema.position("r")
        values = [row[r_pos] for row in table.rows]
        assert min(values) >= 14.0
        assert max(values) <= 24.0

    def test_primary_key_lookup(self):
        table = build_photo_primary(SMALL)
        assert table.lookup(1) is not None
        assert table.lookup(SMALL.n_objects) is not None
        assert table.lookup(SMALL.n_objects + 1) is None


class TestCatalog:
    def test_build_sky_catalog(self):
        catalog = build_sky_catalog(SMALL)
        assert catalog.has_table("photoprimary")
        assert len(catalog.table("PhotoPrimary")) == SMALL.n_objects

    def test_catalog_rejects_duplicate_table(self):
        catalog = build_sky_catalog(SMALL)
        with pytest.raises(CatalogError):
            catalog.add_table(build_photo_primary(SMALL))
