"""Celestial-sphere math."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skydata.sphere import (
    angular_distance_arcmin,
    arcmin_to_chord,
    chord_to_arcmin,
    radec_to_unit,
)

ra_values = st.floats(min_value=0.0, max_value=360.0, allow_nan=False)
dec_values = st.floats(min_value=-89.0, max_value=89.0, allow_nan=False)


class TestUnitVector:
    def test_known_directions(self):
        assert radec_to_unit(0.0, 0.0) == pytest.approx((1.0, 0.0, 0.0))
        assert radec_to_unit(90.0, 0.0) == pytest.approx((0.0, 1.0, 0.0))
        assert radec_to_unit(0.0, 90.0) == pytest.approx((0.0, 0.0, 1.0))

    @given(ra=ra_values, dec=dec_values)
    @settings(max_examples=200, deadline=None)
    def test_always_unit_length(self, ra, dec):
        x, y, z = radec_to_unit(ra, dec)
        assert math.sqrt(x * x + y * y + z * z) == pytest.approx(1.0)


class TestChordConversion:
    def test_inverse_pair(self):
        for arcmin in (0.0, 1.0, 30.0, 600.0):
            assert chord_to_arcmin(arcmin_to_chord(arcmin)) == pytest.approx(
                arcmin
            )

    def test_antipodal_chord(self):
        # 180 degrees = 10800 arcmin subtends the diameter.
        assert arcmin_to_chord(10_800.0) == pytest.approx(2.0)

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            arcmin_to_chord(-1.0)

    def test_chord_out_of_range_raises(self):
        with pytest.raises(ValueError):
            chord_to_arcmin(2.5)

    @given(
        arcmin=st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False)
    )
    @settings(max_examples=200, deadline=None)
    def test_chord_is_monotone(self, arcmin):
        assert arcmin_to_chord(arcmin) <= arcmin_to_chord(arcmin + 1.0)


class TestAngularDistance:
    def test_zero_for_same_point(self):
        assert angular_distance_arcmin(10.0, 20.0, 10.0, 20.0) == (
            pytest.approx(0.0)
        )

    def test_one_degree_of_dec(self):
        assert angular_distance_arcmin(50.0, 0.0, 50.0, 1.0) == (
            pytest.approx(60.0, rel=1e-9)
        )

    def test_ra_shrinks_with_declination(self):
        at_equator = angular_distance_arcmin(10.0, 0.0, 11.0, 0.0)
        at_sixty = angular_distance_arcmin(10.0, 60.0, 11.0, 60.0)
        assert at_sixty == pytest.approx(at_equator / 2.0, rel=1e-3)

    @given(ra1=ra_values, dec1=dec_values, ra2=ra_values, dec2=dec_values)
    @settings(max_examples=200, deadline=None)
    def test_symmetric(self, ra1, dec1, ra2, dec2):
        forward = angular_distance_arcmin(ra1, dec1, ra2, dec2)
        backward = angular_distance_arcmin(ra2, dec2, ra1, dec1)
        assert forward == pytest.approx(backward)

    @given(ra1=ra_values, dec1=dec_values, ra2=ra_values, dec2=dec_values)
    @settings(max_examples=200, deadline=None)
    def test_bounded_by_half_circle(self, ra1, dec1, ra2, dec2):
        assert 0.0 <= angular_distance_arcmin(ra1, dec1, ra2, dec2) <= (
            10_800.0 + 1e-6
        )
