"""Parser behaviour on the function-embedded dialect."""

import pytest

from repro.relational.errors import ExecutionError
from repro.relational.expressions import (
    And,
    Between,
    BinaryOp,
    BinaryOperator,
    ColumnRef,
    Literal,
    Not,
)
from repro.sqlparser.ast import FunctionSource, Parameter, TableSource
from repro.sqlparser.errors import ParseError
from repro.sqlparser.parser import parse_expression, parse_select

RADIAL = (
    "SELECT TOP 100 p.objID, p.ra, p.dec, n.distance "
    "FROM fGetNearbyObjEq(182.5, 10.3, 15.0) n "
    "JOIN PhotoPrimary p ON n.objID = p.objID "
    "WHERE p.g < 20.5 AND p.type = 3 "
    "ORDER BY n.distance DESC, p.objID"
)


class TestSelectStructure:
    def test_full_statement(self):
        stmt = parse_select(RADIAL)
        assert stmt.top == 100
        assert len(stmt.select_items) == 4
        assert isinstance(stmt.source, FunctionSource)
        assert stmt.source.name == "fGetNearbyObjEq"
        assert stmt.source.alias == "n"
        assert stmt.source.argument_values() == [182.5, 10.3, 15.0]
        assert len(stmt.joins) == 1
        assert stmt.joins[0].table == TableSource("PhotoPrimary", "p")
        assert isinstance(stmt.where, And)
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending

    def test_table_source_with_as_alias(self):
        stmt = parse_select("SELECT a FROM t AS x")
        assert stmt.source == TableSource("t", "x")

    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert stmt.star
        assert stmt.select_items == ()

    def test_inner_join_keyword(self):
        stmt = parse_select("SELECT a FROM t INNER JOIN u ON t.a = u.a")
        assert len(stmt.joins) == 1

    def test_function_source_without_args(self):
        stmt = parse_select("SELECT a FROM fEverything()")
        assert isinstance(stmt.source, FunctionSource)
        assert stmt.source.args == ()

    def test_select_item_aliases(self):
        stmt = parse_select("SELECT a AS x, b y, c FROM t")
        assert [item.output_name() for item in stmt.select_items] == [
            "x", "y", "c",
        ]

    def test_qualified_ref_output_name_is_bare(self):
        stmt = parse_select("SELECT p.objID FROM t p")
        assert stmt.select_items[0].output_name() == "objID"


class TestExpressions:
    def test_precedence_and_over_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.to_sql() == "((a = 1) OR ((b = 2) AND (c = 3)))"

    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.evaluate({}) == 7

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.evaluate({}) == 9

    def test_not_in(self):
        expr = parse_expression("a NOT IN (1, 2)")
        assert isinstance(expr, Not)
        assert expr.evaluate({"a": 3}) is True

    def test_not_between(self):
        expr = parse_expression("a NOT BETWEEN 1 AND 2")
        assert isinstance(expr, Not)
        assert isinstance(expr.operand, Between)

    def test_is_not_null(self):
        expr = parse_expression("a IS NOT NULL")
        assert expr.evaluate({"a": 1}) is True
        assert expr.evaluate({"a": None}) is False

    def test_unary_minus(self):
        assert parse_expression("-3 + 1").evaluate({}) == -2

    def test_unary_plus_is_noop(self):
        assert parse_expression("+3").evaluate({}) == 3

    def test_function_call(self):
        expr = parse_expression("sqrt(abs(-16))")
        assert expr.evaluate({}) == pytest.approx(4.0)

    def test_comparison_chain_is_rejected(self):
        # SQL has no chained comparisons; `1 < 2 < 3` parses as
        # predicate then junk.
        with pytest.raises(ParseError):
            parse_expression("1 < 2 < 3")


class TestParameters:
    def test_parameter_in_function_args(self):
        stmt = parse_select("SELECT a FROM f($x, $y) WHERE a < $lim")
        assert stmt.parameter_names() == ["x", "y", "lim"]

    def test_bind_replaces_everywhere(self):
        stmt = parse_select("SELECT a FROM f($x) WHERE a BETWEEN $x AND $y")
        bound = stmt.bind({"x": 1, "y": 2})
        assert bound.parameter_names() == []
        assert "(a BETWEEN 1 AND 2)" in bound.to_sql()

    def test_bind_missing_parameter_raises(self):
        stmt = parse_select("SELECT a FROM f($x)")
        with pytest.raises(ExecutionError, match="missing template"):
            stmt.bind({})

    def test_bind_ignores_extras(self):
        stmt = parse_select("SELECT a FROM f($x)")
        bound = stmt.bind({"x": 1, "unused": 9})
        assert isinstance(bound.source.args[0], Literal)

    def test_unbound_parameter_cannot_evaluate(self):
        with pytest.raises(ExecutionError, match="unbound"):
            Parameter("x").evaluate({})


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t ORDER a",
            "SELECT TOP x a FROM t",
            "SELECT TOP -1 a FROM t",
            "SELECT a FROM f(1",
            "SELECT a FROM t JOIN u",
            "SELECT a FROM t trailing junk (",
            "SELECT a, FROM t",
            "UPDATE t",
        ],
    )
    def test_malformed_statements_raise(self, sql):
        with pytest.raises(ParseError):
            parse_select(sql)

    def test_error_carries_position(self):
        with pytest.raises(ParseError, match="position"):
            parse_select("SELECT a FROM t WHERE !")
