"""Tokenizer behaviour."""

import pytest

from repro.sqlparser.errors import ParseError
from repro.sqlparser.tokens import TokenType, tokenize


def kinds(text):
    return [token.type for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text)][:-1]  # drop END


class TestBasics:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.is_keyword("select") for t in tokens[:3])

    def test_identifier_vs_keyword(self):
        tokens = tokenize("selection")
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "selection"

    def test_end_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.END

    def test_positions_are_recorded(self):
        tokens = tokenize("a  b")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


class TestNumbers:
    def test_integer(self):
        assert values("42") == [42]
        assert isinstance(values("42")[0], int)

    def test_float(self):
        assert values("42.5") == [42.5]

    def test_leading_dot_float(self):
        assert values(".5") == [0.5]

    def test_scientific_notation(self):
        assert values("1e3 2.5E-2") == [1000.0, 0.025]

    def test_qualified_name_is_not_a_decimal(self):
        # "p.objID" must stay identifier-dot-identifier.
        tokens = tokenize("p.objID")
        assert [t.type for t in tokens[:3]] == [
            TokenType.IDENTIFIER, TokenType.PUNCT, TokenType.IDENTIFIER,
        ]

    def test_number_then_dot_identifier(self):
        # "1.e" parses as 1 . e (not a malformed float).
        tokens = tokenize("1.e")
        assert tokens[0].value == 1


class TestStrings:
    def test_simple_string(self):
        assert values("'hello'") == ["hello"]

    def test_escaped_quote(self):
        assert values("'O''Brien'") == ["O'Brien"]

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("'oops")


class TestOperatorsAndParameters:
    def test_two_char_operators(self):
        assert values("<= >= <>") == ["<=", ">=", "<>"]

    def test_bang_equals_normalizes(self):
        assert values("!=") == ["<>"]

    def test_parameter(self):
        tokens = tokenize("$ra")
        assert tokens[0].type is TokenType.PARAMETER
        assert tokens[0].value == "ra"

    def test_bare_dollar_raises(self):
        with pytest.raises(ParseError):
            tokenize("$ + 1")

    def test_line_comment_is_skipped(self):
        assert values("1 -- comment here\n2") == [1, 2]

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a ; b")
