"""Property: rendering a statement to SQL and re-parsing is identity.

The proxy rewrites queries textually (remainder queries travel as SQL
strings to the origin's free-SQL facility), so ``parse(to_sql(x)) == x``
is load-bearing, not cosmetic.

Statements are generated bottom-up from the same node types the parser
produces.  Literal floats use ``repr`` so the round-trip is exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.expressions import (
    And,
    Between,
    BinaryOp,
    BinaryOperator,
    ColumnRef,
    CountStar,
    FuncCall,
    InList,
    IsNull,
    Literal,
    Negate,
    Not,
    Or,
)
from repro.sqlparser.ast import (
    FunctionSource,
    JoinClause,
    OrderItem,
    Parameter,
    SelectItem,
    SelectStatement,
    TableSource,
)
from repro.sqlparser.parser import parse_expression, parse_select

from repro.sqlparser.tokens import KEYWORDS

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).filter(
    # Keywords would tokenize differently.
    lambda s: s not in KEYWORDS
)

qualified = st.builds(
    lambda a, b: f"{a}.{b}", identifiers, identifiers
)

literals = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6).map(Literal),
    st.floats(allow_nan=False, allow_infinity=False).map(Literal),
    st.text(
        alphabet=st.characters(
            codec="ascii", exclude_characters="\0\n\r"
        ),
        max_size=8,
    ).map(Literal),
    st.just(Literal(None)),
)

atoms = st.one_of(
    literals,
    st.one_of(identifiers, qualified).map(ColumnRef),
    identifiers.map(Parameter),
    st.just(CountStar()),
)


def expressions(depth: int = 2):
    if depth == 0:
        return atoms
    inner = expressions(depth - 1)
    return st.one_of(
        atoms,
        st.builds(
            BinaryOp,
            st.sampled_from(list(BinaryOperator)),
            inner,
            inner,
        ),
        st.builds(lambda a, b: And((a, b)), inner, inner),
        st.builds(lambda a, b: Or((a, b)), inner, inner),
        st.builds(Not, inner),
        # Negate over a numeric literal is non-canonical: the parser
        # folds "-1" into Literal(-1), so never generate Negate(number).
        st.builds(
            Negate,
            inner.filter(
                lambda e: not (
                    isinstance(e, Literal)
                    and isinstance(e.value, (int, float))
                    and not isinstance(e.value, bool)
                )
            ),
        ),
        st.builds(Between, inner, inner, inner),
        st.builds(lambda op, neg: IsNull(op, neg), inner, st.booleans()),
        st.builds(
            lambda op, choices: InList(op, tuple(choices)),
            inner,
            st.lists(inner, min_size=1, max_size=3),
        ),
        st.builds(
            lambda name, args: FuncCall(name, tuple(args)),
            identifiers,
            st.lists(inner, min_size=0, max_size=3),
        ),
    )


select_items = st.builds(
    SelectItem,
    expressions(1),
    st.one_of(st.none(), identifiers),
)

sources = st.one_of(
    st.builds(TableSource, identifiers, st.one_of(st.none(), identifiers)),
    st.builds(
        lambda name, args, alias: FunctionSource(name, tuple(args), alias),
        identifiers,
        st.lists(expressions(1), min_size=0, max_size=3),
        st.one_of(st.none(), identifiers),
    ),
)

joins = st.builds(
    JoinClause,
    st.builds(TableSource, identifiers, st.one_of(st.none(), identifiers)),
    expressions(1),
)

statements = st.builds(
    lambda items, source, join_list, where, order, top, star, distinct, \
            group: (
        SelectStatement(
            select_items=() if star else tuple(items),
            source=source,
            joins=tuple(join_list),
            where=where,
            order_by=tuple(order),
            top=top,
            star=star,
            distinct=distinct,
            group_by=() if star else tuple(group),
        )
    ),
    st.lists(select_items, min_size=1, max_size=4),
    sources,
    st.lists(joins, min_size=0, max_size=2),
    st.one_of(st.none(), expressions(2)),
    st.lists(
        st.builds(OrderItem, expressions(1), st.booleans()),
        min_size=0,
        max_size=2,
    ),
    st.one_of(st.none(), st.integers(min_value=0, max_value=1000)),
    st.booleans(),
    st.booleans(),
    st.lists(expressions(1), min_size=0, max_size=2),
)


@given(expr=expressions(3))
@settings(max_examples=300, deadline=None)
def test_expression_roundtrip(expr):
    assert parse_expression(expr.to_sql()) == expr


@given(stmt=statements)
@settings(max_examples=300, deadline=None)
def test_statement_roundtrip(stmt):
    assert parse_select(stmt.to_sql()) == stmt
