"""Trace files."""

import pytest

from repro.workload.trace import Trace, TraceError, TraceQuery


def query(ra=1.0):
    return TraceQuery.of("tpl", {"ra": ra, "dec": 2.0})


class TestTraceQuery:
    def test_equality_is_order_insensitive(self):
        a = TraceQuery.of("t", {"x": 1, "y": 2})
        b = TraceQuery.of("t", {"y": 2, "x": 1})
        assert a == b
        assert hash(a) == hash(b)

    def test_param_dict_roundtrip(self):
        assert query().param_dict() == {"ra": 1.0, "dec": 2.0}


class TestTrace:
    def test_append_len_iter(self):
        trace = Trace()
        trace.append(query())
        trace.append(query(2.0))
        assert len(trace) == 2
        assert list(trace)[1].param_dict()["ra"] == 2.0

    def test_head_and_slicing(self):
        trace = Trace([query(float(i)) for i in range(5)])
        assert len(trace.head(2)) == 2
        assert len(trace[1:4]) == 3
        assert trace[0].param_dict()["ra"] == 0.0

    def test_distinct_count(self):
        trace = Trace([query(1.0), query(1.0), query(2.0)])
        assert trace.distinct_count() == 2

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace([query(1.5), query(2.5)])
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        restored = Trace.load(path)
        assert restored.queries == trace.queries

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"template": "t", "params": {"x": 1}}\n\n'
            '{"template": "t", "params": {"x": 2}}\n'
        )
        assert len(Trace.load(path)) == 2

    def test_load_reports_bad_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError, match="trace.jsonl:1"):
            Trace.load(path)
