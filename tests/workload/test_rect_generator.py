"""Rectangular-form trace generation and mixed-template traces."""

import dataclasses

import pytest

from repro.geometry.relations import RegionRelation, relate
from repro.templates.manager import TemplateManager
from repro.templates.skyserver_templates import (
    RADIAL_TEMPLATE_ID,
    RECT_TEMPLATE_ID,
    register_skyserver_templates,
)
from repro.workload.generator import RadialTraceConfig, generate_radial_trace
from repro.workload.rect_generator import (
    RectTraceConfig,
    generate_rect_trace,
    interleave,
)


@pytest.fixture(scope="module")
def manager():
    manager = TemplateManager()
    register_skyserver_templates(manager)
    return manager


def regions_of(trace, manager):
    return [
        manager.bind(q.template_id, q.param_dict()).region for q in trace
    ]


class TestConfig:
    def test_rejects_bad_sides(self):
        with pytest.raises(ValueError):
            RectTraceConfig(side_min_deg=1.0, side_max_deg=0.5)

    def test_rejects_probability_overflow(self):
        with pytest.raises(ValueError):
            RectTraceConfig(p_repeat=0.9, p_zoom=0.2)


class TestMoves:
    def test_deterministic(self):
        config = RectTraceConfig(n_queries=40)
        assert (
            generate_rect_trace(config).queries
            == generate_rect_trace(config).queries
        )

    def test_all_queries_are_rect_template(self):
        for query in generate_rect_trace(RectTraceConfig(n_queries=20)):
            assert query.template_id == RECT_TEMPLATE_ID
            params = query.param_dict()
            assert params["ra_min"] < params["ra_max"]
            assert params["dec_min"] < params["dec_max"]

    def test_zoom_only_trace_is_all_contained(self, manager):
        config = RectTraceConfig(
            n_queries=50, p_repeat=0.0, p_zoom=1.0, p_pan=0.0,
            p_zoom_out=0.0,
        )
        regions = regions_of(generate_rect_trace(config), manager)
        for i, region in enumerate(regions[1:], start=1):
            assert any(
                relate(region, earlier)
                in (RegionRelation.CONTAINED, RegionRelation.EQUAL)
                for earlier in regions[:i]
            )

    def test_zoom_out_only_trace_contains_parents(self, manager):
        config = RectTraceConfig(
            n_queries=40, p_repeat=0.0, p_zoom=0.0, p_pan=0.0,
            p_zoom_out=1.0,
        )
        regions = regions_of(generate_rect_trace(config), manager)
        containing = sum(
            1
            for i, region in enumerate(regions[1:], start=1)
            if any(
                relate(region, earlier)
                in (RegionRelation.CONTAINS, RegionRelation.EQUAL)
                for earlier in regions[:i]
            )
        )
        assert containing >= 0.9 * (len(regions) - 1)

    def test_pan_only_trace_overlaps(self, manager):
        config = RectTraceConfig(
            n_queries=40, p_repeat=0.0, p_zoom=0.0, p_pan=1.0,
            p_zoom_out=0.0,
        )
        regions = regions_of(generate_rect_trace(config), manager)
        overlapping = sum(
            1
            for i, region in enumerate(regions[1:], start=1)
            if any(
                relate(region, earlier) is RegionRelation.OVERLAP
                for earlier in regions[:i]
            )
        )
        assert overlapping >= 0.9 * (len(regions) - 1)


class TestInterleave:
    def test_preserves_order_and_content(self):
        radial = generate_radial_trace(RadialTraceConfig(n_queries=30))
        rect = generate_rect_trace(RectTraceConfig(n_queries=20))
        merged = interleave([radial, rect], seed=1)
        assert len(merged) == 50
        radial_part = [
            q for q in merged if q.template_id == RADIAL_TEMPLATE_ID
        ]
        rect_part = [q for q in merged if q.template_id == RECT_TEMPLATE_ID]
        assert radial_part == list(radial)
        assert rect_part == list(rect)

    def test_deterministic_by_seed(self):
        radial = generate_radial_trace(RadialTraceConfig(n_queries=15))
        rect = generate_rect_trace(RectTraceConfig(n_queries=15))
        assert (
            interleave([radial, rect], seed=3).queries
            == interleave([radial, rect], seed=3).queries
        )
