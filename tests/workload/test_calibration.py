"""The default trace matches the paper's workload profile.

This test pins the calibration DESIGN.md promises: with an unlimited
cache, roughly half the queries are fully answerable (the paper says
51%), the overlap mass sits near 9%, and the exact-repeat mass sits
near the passive-cache efficiency of Table 1 (~31%).  Tolerances are
generous — the point is to catch calibration regressions, not to chase
decimals.
"""

import dataclasses

import pytest

from repro.harness.config import ExperimentScale
from repro.workload.analyzer import analyze_trace
from repro.workload.generator import generate_radial_trace
from repro.templates.manager import TemplateManager
from repro.templates.skyserver_templates import register_skyserver_templates


@pytest.fixture(scope="module")
def manager():
    manager = TemplateManager()
    register_skyserver_templates(manager)
    return manager


@pytest.fixture(scope="module")
def profile(manager):
    scale = ExperimentScale.quick()
    trace = generate_radial_trace(
        dataclasses.replace(scale.trace, n_queries=1_500)
    )
    return analyze_trace(trace, manager)


class TestCalibration:
    def test_fully_answerable_near_half(self, profile):
        assert 0.44 <= profile.fully_answerable <= 0.60

    def test_exact_mass_near_passive_efficiency(self, profile):
        assert 0.25 <= profile.exact <= 0.37

    def test_containment_mass(self, profile):
        assert 0.15 <= profile.contained <= 0.30

    def test_overlap_mass_near_nine_percent(self, profile):
        assert 0.05 <= profile.overlap <= 0.14

    def test_fractions_partition_the_trace(self, profile):
        total = (
            profile.exact + profile.contained + profile.overlap
            + profile.disjoint
        )
        assert total == pytest.approx(1.0)


class TestAnalyzer:
    def test_empty_trace(self, manager):
        from repro.workload.trace import Trace

        profile = analyze_trace(Trace(), manager)
        assert profile.n_queries == 0

    def test_repeated_single_query(self, manager):
        from repro.workload.trace import Trace, TraceQuery

        query = TraceQuery.of(
            "skyserver.radial",
            {"ra": 164.0, "dec": 8.0, "radius": 5.0,
             "r_min": -9999.0, "r_max": 9999.0},
        )
        profile = analyze_trace(Trace([query, query, query]), manager)
        assert profile.exact == pytest.approx(2 / 3)
        assert profile.disjoint == pytest.approx(1 / 3)

    def test_profile_str_is_readable(self, profile):
        text = str(profile)
        assert "fully answerable" in text
