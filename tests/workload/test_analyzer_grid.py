"""The analyzer's grid prefilter never drops a related region."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.regions import HyperSphere
from repro.workload.analyzer import _RegionSet

coordinate = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)
radius = st.floats(min_value=0.001, max_value=0.5, allow_nan=False)

spheres = st.builds(
    lambda x, y, r: HyperSphere((x, y), r), coordinate, coordinate, radius
)


@given(stored=st.lists(spheres, min_size=1, max_size=25), probe=spheres)
@settings(max_examples=200, deadline=None)
def test_candidates_superset_of_bbox_intersections(stored, probe):
    region_set = _RegionSet(cell=0.05)
    for region in stored:
        region_set.add(region)
    candidates = region_set.candidates(probe)
    probe_box = probe.bounding_box()
    for region in stored:
        if region.bounding_box().intersect(probe_box) is not None:
            assert any(c is region for c in candidates), (
                "grid prefilter dropped an intersecting region"
            )


@given(stored=st.lists(spheres, min_size=1, max_size=10))
@settings(max_examples=100, deadline=None)
def test_candidates_are_deduplicated(stored):
    region_set = _RegionSet(cell=0.05)
    for region in stored:
        region_set.add(region)
    big_probe = HyperSphere((0.0, 0.0), 5.0)
    candidates = region_set.candidates(big_probe)
    assert len({id(c) for c in candidates}) == len(candidates)
