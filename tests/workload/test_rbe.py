"""The browser emulator."""

import dataclasses

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.harness.config import ExperimentScale
from repro.workload.generator import generate_radial_trace
from repro.workload.rbe import BrowserEmulator


@pytest.fixture()
def trace():
    scale = ExperimentScale.quick()
    return generate_radial_trace(
        dataclasses.replace(scale.trace, n_queries=40)
    )


def test_run_replays_whole_trace(origin, trace):
    proxy = FunctionProxy(origin, origin.templates)
    stats = BrowserEmulator(proxy).run(trace)
    assert len(stats) == len(trace)


def test_limit_replays_prefix(origin, trace):
    proxy = FunctionProxy(origin, origin.templates)
    stats = BrowserEmulator(proxy).run(trace, limit=10)
    assert len(stats) == 10


def test_client_time_added_on_top_of_proxy_time(origin, trace):
    proxy = FunctionProxy(origin, origin.templates,
                          scheme=CachingScheme.NO_CACHE)
    stats = BrowserEmulator(proxy).run(trace, limit=5)
    for record in stats.records:
        assert "client" in record.steps_ms
        assert record.response_ms >= record.steps_ms["client"]


def test_think_time_advances_the_simulated_clock(origin, trace):
    proxy = FunctionProxy(origin, origin.templates)
    BrowserEmulator(proxy).run(trace, limit=5, think_time_ms=1_000.0)
    busy_ms = sum(r.response_ms for r in proxy.stats.records)
    # 5 queries incur exactly 4 pauses — between completed responses,
    # never after the last one.
    assert proxy.clock.now_ms == pytest.approx(busy_ms + 4 * 1_000.0)


def test_think_time_pauses_only_between_responses(origin, trace):
    """N queries, N−1 pauses: a single-query replay never thinks."""
    proxy = FunctionProxy(origin, origin.templates)
    BrowserEmulator(proxy).run(trace, limit=1, think_time_ms=60_000.0)
    busy_ms = sum(r.response_ms for r in proxy.stats.records)
    assert proxy.clock.now_ms == pytest.approx(busy_ms)


def test_negative_think_time_rejected(origin, trace):
    proxy = FunctionProxy(origin, origin.templates)
    with pytest.raises(ValueError):
        BrowserEmulator(proxy).run(trace, think_time_ms=-1.0)


def test_progress_callback_fires(origin):
    scale = ExperimentScale.quick()
    trace = generate_radial_trace(
        dataclasses.replace(scale.trace, n_queries=1_000)
    )
    proxy = FunctionProxy(origin, origin.templates,
                          scheme=CachingScheme.PASSIVE)
    calls = []
    BrowserEmulator(proxy).run(
        trace, progress=lambda done, total: calls.append((done, total))
    )
    assert calls and calls[0] == (500, 1_000)
