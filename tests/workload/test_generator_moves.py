"""Generator moves produce the promised region relations."""

import dataclasses

import pytest

from repro.geometry.relations import RegionRelation, relate
from repro.templates.manager import TemplateManager
from repro.templates.skyserver_templates import register_skyserver_templates
from repro.workload.generator import RadialTraceConfig, generate_radial_trace


@pytest.fixture(scope="module")
def manager():
    manager = TemplateManager()
    register_skyserver_templates(manager)
    return manager


def regions_of(trace, manager):
    return [
        manager.bind(q.template_id, q.param_dict()).region for q in trace
    ]


class TestConfigValidation:
    def test_rejects_probability_overflow(self):
        with pytest.raises(ValueError):
            RadialTraceConfig(p_repeat=0.7, p_zoom=0.5)

    def test_rejects_bad_radius_range(self):
        with pytest.raises(ValueError):
            RadialTraceConfig(radius_min_arcmin=5.0, radius_max_arcmin=1.0)

    def test_rejects_zero_queries(self):
        with pytest.raises(ValueError):
            RadialTraceConfig(n_queries=0)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        config = RadialTraceConfig(n_queries=50)
        assert (
            generate_radial_trace(config).queries
            == generate_radial_trace(config).queries
        )

    def test_different_seed_differs(self):
        a = RadialTraceConfig(n_queries=50)
        b = dataclasses.replace(a, seed=a.seed + 1)
        assert (
            generate_radial_trace(a).queries
            != generate_radial_trace(b).queries
        )


class TestMoveGeometry:
    def test_zoom_only_trace_is_all_contained(self, manager):
        config = RadialTraceConfig(
            n_queries=60, p_repeat=0.0, p_zoom=1.0, p_pan=0.0,
            p_zoom_out=0.0,
        )
        trace = generate_radial_trace(config)
        regions = regions_of(trace, manager)
        # Every query after the first fresh one must be contained in
        # some earlier region (its zoom parent).
        for i, region in enumerate(regions[1:], start=1):
            relations = [relate(region, earlier)
                         for earlier in regions[:i]]
            assert any(
                r in (RegionRelation.CONTAINED, RegionRelation.EQUAL)
                for r in relations
            )

    def test_repeat_only_trace_is_all_exact(self):
        config = RadialTraceConfig(
            n_queries=40, p_repeat=1.0, p_zoom=0.0, p_pan=0.0,
            p_zoom_out=0.0,
        )
        trace = generate_radial_trace(config)
        assert trace.distinct_count() == 1

    def test_pan_produces_overlap_with_parent(self, manager):
        config = RadialTraceConfig(
            n_queries=40, p_repeat=0.0, p_zoom=0.0, p_pan=1.0,
            p_zoom_out=0.0,
        )
        trace = generate_radial_trace(config)
        regions = regions_of(trace, manager)
        overlap_count = 0
        for i, region in enumerate(regions[1:], start=1):
            if any(
                relate(region, earlier) is RegionRelation.OVERLAP
                for earlier in regions[:i]
            ):
                overlap_count += 1
        # Pans overlap their parent by construction; a tiny slack
        # covers coordinate-rounding edge cases.
        assert overlap_count >= 0.9 * (len(regions) - 1)

    def test_zoom_out_contains_parent(self, manager):
        config = RadialTraceConfig(
            n_queries=40, p_repeat=0.0, p_zoom=0.0, p_pan=0.0,
            p_zoom_out=1.0,
        )
        trace = generate_radial_trace(config)
        regions = regions_of(trace, manager)
        containing = 0
        for i, region in enumerate(regions[1:], start=1):
            if any(
                relate(region, earlier) in
                (RegionRelation.CONTAINS, RegionRelation.EQUAL)
                for earlier in regions[:i]
            ):
                containing += 1
        assert containing >= 0.9 * (len(regions) - 1)

    def test_fresh_queries_stay_inside_window(self, manager):
        config = RadialTraceConfig(
            n_queries=100, p_repeat=0.0, p_zoom=0.0, p_pan=0.0,
            p_zoom_out=0.0,
        )
        sky = config.sky
        for query in generate_radial_trace(config):
            params = query.param_dict()
            assert sky.ra_min <= params["ra"] <= sky.ra_max
            assert sky.dec_min <= params["dec"] <= sky.dec_max
