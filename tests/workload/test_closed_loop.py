"""The closed-loop driver: determinism, accounting, multi-tenancy."""

import dataclasses

import pytest

from repro.admission import (
    AdmissionConfig,
    AdmissionController,
    TenantQuota,
)
from repro.core.proxy import FunctionProxy
from repro.harness.config import ExperimentScale
from repro.sched import EventLoop, ProxyFrontend
from repro.workload import ClosedLoopConfig, ClosedLoopDriver
from repro.workload.generator import generate_radial_trace


@pytest.fixture()
def trace():
    scale = ExperimentScale.quick()
    return generate_radial_trace(
        dataclasses.replace(scale.trace, n_queries=60)
    )


def make_driver(origin, trace, config, loop_config):
    proxy = FunctionProxy(
        origin,
        origin.templates,
        admission=AdmissionController(config),
    )
    frontend = ProxyFrontend(proxy, EventLoop())
    return ClosedLoopDriver(frontend, trace, loop_config)


class TestClosedLoopDriver:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopConfig(n_clients=0)
        with pytest.raises(ValueError):
            ClosedLoopConfig(queries_per_client=0)
        with pytest.raises(ValueError):
            ClosedLoopConfig(think_time_ms=-1.0)
        with pytest.raises(ValueError):
            ClosedLoopConfig(think_jitter=2.0)
        with pytest.raises(ValueError):
            ClosedLoopConfig(tenants=())

    def test_every_client_query_is_accounted(self, origin, trace):
        config = ClosedLoopConfig(
            n_clients=20, queries_per_client=3, think_time_ms=2_000.0
        )
        driver = make_driver(
            origin,
            trace,
            AdmissionConfig(max_inflight=4, max_queue_depth=8),
            config,
        )
        stats = driver.run()
        expected = config.n_clients * config.queries_per_client
        assert len(stats) == expected
        assert driver.completed_queries() == expected
        counts = driver.outcome_counts()
        assert sum(counts.values()) == expected
        snapshot = driver.frontend.proxy.admission.snapshot()
        assert snapshot["submitted"] == expected
        assert snapshot["inflight"] == 0
        assert snapshot["queue_depth"] == 0

    def test_same_seed_same_run(self, origin, trace):
        def signature():
            driver = make_driver(
                origin,
                trace,
                AdmissionConfig(max_inflight=2, max_queue_depth=4),
                ClosedLoopConfig(
                    n_clients=16, queries_per_client=2, seed=7
                ),
            )
            stats = driver.run()
            return [
                (r.index, r.status.value, r.outcome.value,
                 round(r.response_ms, 6))
                for r in stats.records
            ]

        assert signature() == signature()

    def test_different_seed_changes_think_pacing(self, origin, trace):
        def final_time(seed):
            driver = make_driver(
                origin,
                trace,
                AdmissionConfig(max_inflight=2, max_queue_depth=4),
                ClosedLoopConfig(
                    n_clients=8, queries_per_client=3, seed=seed
                ),
            )
            driver.run()
            return driver.loop.now_ms

        assert final_time(1) != final_time(2)

    def test_tenants_assigned_round_robin(self, origin, trace):
        config = AdmissionConfig(
            max_inflight=4,
            max_queue_depth=8,
            quotas={"metered": TenantQuota(rate_per_s=0.001, burst=1.0)},
        )
        driver = make_driver(
            origin,
            trace,
            config,
            ClosedLoopConfig(
                n_clients=8,
                queries_per_client=2,
                tenants=("metered", "open"),
            ),
        )
        driver.run()
        snapshot = driver.frontend.proxy.admission.snapshot()
        # Four metered clients, one burst token: quota sheds happened
        # and only for the metered tenant.
        assert snapshot["quota_denials"].keys() == {"metered"}
        assert snapshot["quota_denials"]["metered"] >= 1

    def test_until_ms_bounds_the_horizon(self, origin, trace):
        driver = make_driver(
            origin,
            trace,
            AdmissionConfig(max_inflight=2, max_queue_depth=4),
            ClosedLoopConfig(
                n_clients=10,
                queries_per_client=50,
                think_time_ms=1_000.0,
            ),
        )
        driver.run(until_ms=5_000.0)
        assert driver.loop.now_ms <= 5_000.0
        total = 10 * 50
        assert driver.completed_queries() < total
