"""Named locks, guard registrations, and the lock-order sanitizer."""

import random
import threading

import pytest

from repro.locking import (
    GUARDED,
    READ_ONLY,
    UNSHARED,
    LockOrderError,
    NamedLock,
    current_sanitizer,
    disable_lock_sanitizer,
    enable_lock_sanitizer,
    guarded_by,
    named_lock,
    read_only,
    unshared,
)


@pytest.fixture()
def sanitizer():
    installed = enable_lock_sanitizer()
    yield installed
    disable_lock_sanitizer()


class TestNamedLock:
    def test_constructor_returns_a_named_lock(self):
        lock = named_lock("proxy.test")
        assert isinstance(lock, NamedLock)
        assert lock.name == "proxy.test"
        assert "proxy.test" in repr(lock)

    def test_empty_name_is_rejected(self):
        with pytest.raises(ValueError):
            named_lock("")

    def test_reentrant_in_one_thread(self):
        lock = named_lock("proxy.test")
        with lock:
            with lock:  # an RLock: same thread may re-enter
                pass

    def test_mutual_exclusion_across_threads(self):
        lock = named_lock("proxy.test")
        counter = {"value": 0}

        def bump():
            for _ in range(500):
                with lock:
                    counter["value"] += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter["value"] == 2000


class TestRegistrationDecorators:
    def test_guards_are_introspectable(self):
        @guarded_by("proxy.test", "entries", "index")
        @unshared("scratch")
        @read_only("config")
        class Sample:
            pass

        guards = Sample.__concurrency_guards__
        assert guards["entries"] == (GUARDED, "proxy.test")
        assert guards["index"] == (GUARDED, "proxy.test")
        assert guards["scratch"] == (UNSHARED, None)
        assert guards["config"] == (READ_ONLY, None)

    def test_subclass_guards_extend_the_base(self):
        @guarded_by("proxy.test", "entries")
        class Base:
            pass

        @unshared("scratch")
        class Child(Base):
            pass

        assert Child.__concurrency_guards__ == {
            "entries": (GUARDED, "proxy.test"),
            "scratch": (UNSHARED, None),
        }
        # The base class registration is untouched.
        assert Base.__concurrency_guards__ == {
            "entries": (GUARDED, "proxy.test")
        }


class TestLockOrderSanitizer:
    def test_disabled_by_default(self):
        assert current_sanitizer() is None

    def test_enable_installs_and_disable_removes(self, sanitizer):
        assert current_sanitizer() is sanitizer
        disable_lock_sanitizer()
        assert current_sanitizer() is None

    def test_records_acquisition_edges(self, sanitizer):
        outer, inner = named_lock("lock.a"), named_lock("lock.b")
        with outer:
            with inner:
                assert sanitizer.held() == ("lock.a", "lock.b")
        assert sanitizer.held() == ()
        assert sanitizer.observed_edges() == {("lock.a", "lock.b")}

    def test_inversion_raises(self, sanitizer):
        a, b = named_lock("lock.a"), named_lock("lock.b")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderError, match="inversion"):
            with b:
                with a:
                    pass

    def test_same_role_reentry_is_not_an_edge(self, sanitizer):
        # Two same-role locks (e.g. two caches in one process) nest
        # without tripping: reentrancy is by role name.
        first, second = named_lock("proxy.cache"), named_lock("proxy.cache")
        with first:
            with second:
                pass
        assert sanitizer.observed_edges() == set()

    def test_declared_edges_trip_without_a_prior_observation(self):
        enable_lock_sanitizer(edges=[("lock.a", "lock.b")])
        try:
            a, b = named_lock("lock.a"), named_lock("lock.b")
            with pytest.raises(LockOrderError):
                with b:
                    with a:
                        pass
        finally:
            disable_lock_sanitizer()

    def test_assert_consistent_with_accepts_a_superset(self, sanitizer):
        a, b = named_lock("lock.a"), named_lock("lock.b")
        with a:
            with b:
                pass
        sanitizer.assert_consistent_with(
            [("lock.a", "lock.b"), ("lock.a", "lock.c")]
        )

    def test_assert_consistent_with_flags_unpredicted_edges(
        self, sanitizer
    ):
        a, b = named_lock("lock.a"), named_lock("lock.b")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderError, match="lock.a"):
            sanitizer.assert_consistent_with([("lock.b", "lock.a")])

    def test_failed_nonblocking_acquire_unwinds_the_stack(
        self, sanitizer
    ):
        lock = named_lock("lock.a")
        grabbed = threading.Event()
        release = threading.Event()

        def hold():
            with lock:
                grabbed.set()
                release.wait(timeout=5)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert grabbed.wait(timeout=5)
            assert lock.acquire(blocking=False) is False
            assert sanitizer.held() == ()
        finally:
            release.set()
            holder.join()

    def test_failed_nonblocking_acquire_retracts_its_edges(
        self, sanitizer
    ):
        """An ordering that was never established (the acquire failed)
        must not survive in the observed set — it would later flag the
        legitimate opposite order as an inversion."""
        a, b = named_lock("lock.a"), named_lock("lock.b")
        grabbed = threading.Event()
        release = threading.Event()

        def hold():
            with b:
                grabbed.set()
                release.wait(timeout=5)

        holder = threading.Thread(target=hold)
        holder.start()
        try:
            assert grabbed.wait(timeout=5)
            with a:
                assert b.acquire(blocking=False) is False
            assert sanitizer.observed_edges() == set()
        finally:
            release.set()
            holder.join()
        # The opposite order is now the first real ordering: no error.
        with b:
            with a:
                pass
        assert sanitizer.observed_edges() == {("lock.b", "lock.a")}

    def test_rejected_acquisition_commits_no_partial_edges(self):
        """Validate-then-commit: when a later edge of the same attempt
        is an inversion, the earlier edges must not have been recorded
        (they would be orderings that never happened)."""
        enable_lock_sanitizer(edges=[("lock.c", "lock.b")])
        try:
            sanitizer = current_sanitizer()
            a, b, c = (
                named_lock("lock.a"),
                named_lock("lock.b"),
                named_lock("lock.c"),
            )
            with pytest.raises(LockOrderError, match="inversion"):
                with a:
                    with b:
                        with c:  # (b, c) inverts the declared (c, b)
                            pass
            observed = sanitizer.observed_edges()
            assert ("lock.a", "lock.c") not in observed
            assert observed == {
                ("lock.c", "lock.b"),  # declared
                ("lock.a", "lock.b"),  # the one real acquisition
            }
        finally:
            disable_lock_sanitizer()


class TestTwoThreadStress:
    def test_seeded_out_of_order_acquisition_is_caught(self, sanitizer):
        """Two threads take {A, B} in opposite orders; the sanitizer
        must raise in one of them instead of letting the schedule
        decide between silence and deadlock.

        Non-blocking inner acquires keep the test deadlock-free even
        on interleavings where both threads hold their outer lock; the
        sanitizer check runs before the acquire, so inversions are
        still detected.
        """
        a, b = named_lock("stress.a"), named_lock("stress.b")
        errors = []
        barrier = threading.Barrier(2)

        def worker(seed, outer, inner):
            rng = random.Random(seed)
            barrier.wait(timeout=5)
            try:
                for _ in range(50):
                    with outer:
                        for _ in range(rng.randrange(32)):
                            pass  # seeded jitter without sleeping
                        if inner.acquire(blocking=False):
                            inner.release()
            except LockOrderError as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(11, a, b)),
            threading.Thread(target=worker, args=(23, b, a)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(errors) == 1
        assert "inversion" in str(errors[0])
        # Exactly one order survived in the observed-edge set.
        observed = sanitizer.observed_edges()
        assert len(observed) == 1
        assert observed <= {("stress.a", "stress.b"),
                            ("stress.b", "stress.a")}
