"""Concurrent ``serve()`` calls: consistency plus lock-order validation.

The serve-path refactor's contract is that two interleaved ``serve()``
calls from separate threads leave the proxy in a consistent state —
distinct query indices, every record accounted for, and a cache that
still answers exactly.  With the runtime sanitizer installed, the same
runs also validate the static analysis: every lock-acquisition edge
observed at runtime must appear in the analyzer's static lock-order
graph (the graph is a superset by construction).
"""

import pathlib
import threading

import pytest

from repro.analysis.concurrency import build_lock_graph
from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryStatus
from repro.locking import disable_lock_sanitizer, enable_lock_sanitizer
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID

SRC_REPRO = (
    pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
)


@pytest.fixture()
def sanitizer():
    installed = enable_lock_sanitizer()
    yield installed
    disable_lock_sanitizer()


@pytest.fixture()
def make_proxy(origin):
    def build(**kwargs):
        return FunctionProxy(origin, origin.templates, **kwargs)

    return build


@pytest.fixture()
def bind(templates):
    def run(ra=164.0, radius=10.0):
        return templates.bind(
            RADIAL_TEMPLATE_ID,
            {
                "ra": ra,
                "dec": 8.0,
                "radius": radius,
                "r_min": -9999.0,
                "r_max": 9999.0,
            },
        )

    return run


def serve_in_threads(proxy, queries):
    """One thread per query, started together; returns responses."""
    barrier = threading.Barrier(len(queries))
    responses = [None] * len(queries)
    failures = []

    def run(slot, bound):
        try:
            barrier.wait(timeout=10)
            responses[slot] = proxy.serve(bound)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            failures.append(exc)

    threads = [
        threading.Thread(target=run, args=(slot, bound))
        for slot, bound in enumerate(queries)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    if failures:
        raise failures[0]
    return responses


class TestInterleavedServes:
    def test_two_threads_reach_a_consistent_cache(self, make_proxy, bind):
        proxy = make_proxy()
        left, right = bind(ra=162.0, radius=4.0), bind(ra=166.5, radius=4.0)
        first, second = serve_in_threads(proxy, [left, right])

        # Both queries were answered and recorded, under distinct
        # indices, and both landed in the cache.
        assert first is not None and second is not None
        records = proxy.stats.records
        assert len(records) == 2
        assert {r.index for r in records} == {1, 2}
        assert all(r.outcome.value == "served" for r in records)
        assert len(proxy.cache) == 2

        # The cache is consistent: re-serving each query is an exact
        # hit returning the same rows the origin produced.
        for bound, response in ((left, first), (right, second)):
            replay = proxy.serve(bound)
            assert replay.record.status is QueryStatus.EXACT
            assert not replay.record.contacted_origin
            assert replay.result.rows == response.result.rows

    def test_many_interleaved_serves_account_for_every_query(
        self, make_proxy, bind
    ):
        proxy = make_proxy()
        queries = [
            bind(ra=161.0 + 0.9 * i, radius=3.0) for i in range(8)
        ]
        serve_in_threads(proxy, queries)
        records = proxy.stats.records
        assert len(records) == 8
        assert {r.index for r in records} == set(range(1, 9))
        assert all(r.answered for r in records)

    def test_threaded_serves_under_eviction_pressure(
        self, make_proxy, bind, origin
    ):
        """With a byte budget, every admission can evict while other
        threads are mid-lookup (REVIEW: the eviction path was untested
        under concurrency).  Serve must keep its never-raises contract
        and leave the budget respected."""
        # Four disjoint queries whose results can never all fit: the
        # budget is their total minus half the smallest, so admissions
        # keep evicting for as long as the threads keep serving.
        distinct = [
            bind(ra=161.0 + 2.0 * i, radius=1.0) for i in range(4)
        ]
        sizes = [
            origin.execute_bound(q).result.byte_size() for q in distinct
        ]
        budget = sum(sizes) - min(sizes) // 2
        proxy = make_proxy(cache_bytes=budget)
        queries = [distinct[i % 4] for i in range(12)]
        serve_in_threads(proxy, queries)

        records = proxy.stats.records
        assert len(records) == 12
        assert {r.index for r in records} == set(range(1, 13))
        assert all(r.answered for r in records)
        assert proxy.cache.evictions > 0
        assert proxy.cache.current_bytes <= budget
        # The survivor entries still answer exactly.
        for bound in distinct:
            entry = proxy.cache.exact_match(bound)
            if entry is not None:
                replay = proxy.serve(bound)
                assert replay.record.status is QueryStatus.EXACT

    def test_runtime_lock_order_matches_the_static_graph(
        self, sanitizer, tmp_path, make_proxy, bind
    ):
        from repro.persistence.persister import CachePersister

        # Persistence makes the deepest nesting reachable: every admit
        # journals under the cache lock (proxy.cache ->
        # persistence.journal -> persistence.journal.file).
        proxy = make_proxy(
            persistence=CachePersister(tmp_path / "state"),
            recover=False,
        )
        queries = [bind(ra=162.0 + i, radius=5.0) for i in range(4)]
        serve_in_threads(proxy, queries)
        # Re-serve one query from the main thread too (exact-hit path).
        proxy.serve(queries[0])

        graph = build_lock_graph([SRC_REPRO])
        assert graph.cycles == []
        sanitizer.assert_consistent_with(graph.edge_set())
        # The serve path exercised the predicted journaling nesting.
        assert (
            "proxy.cache",
            "persistence.journal",
        ) in sanitizer.observed_edges()

    def test_admission_gate_under_threads_matches_the_static_graph(
        self, sanitizer, make_proxy, bind
    ):
        """The admission gate's locking, validated at runtime: the
        controller nests the breaker's event clock under its own lock
        (``proxy.admission -> proxy.clock``), and every edge the
        sanitizer observes must already be in the static graph."""
        from repro.admission import AdmissionConfig, AdmissionController
        from repro.core.stats import QueryOutcome

        proxy = make_proxy(
            admission=AdmissionController(
                AdmissionConfig(max_inflight=2, max_queue_depth=2)
            )
        )
        # Pre-occupy every capacity slot so the whole thread burst
        # overflows (thread staggering under the GIL can otherwise
        # serialize the serves and never overlap them).
        holds = 0
        while proxy.admission.try_admit(
            "default", proxy.clock.now_ms
        ).admitted:
            holds += 1
        queries = [bind(ra=161.0 + 0.7 * i, radius=3.0) for i in range(10)]
        serve_in_threads(proxy, queries)
        for _ in range(holds):
            proxy.admission.release()
        # Two more admissions from the main thread.  The first serve
        # advances the work clock with its stage charges; the second's
        # admission then fast-forwards the breaker's event clock under
        # the controller lock — the proxy.admission -> proxy.clock
        # edge asserted below.
        proxy.serve(queries[0])
        proxy.serve(queries[1])

        records = proxy.stats.records
        assert len(records) == 12
        assert {r.index for r in records} == set(range(1, 13))
        counts = {
            outcome: sum(1 for r in records if r.outcome is outcome)
            for outcome in (QueryOutcome.SERVED, QueryOutcome.SHED)
        }
        # The barrier releases all ten against a full gate: every
        # threaded call sheds structurally, the follow-ups serve.
        assert counts[QueryOutcome.SHED] == 10
        assert counts[QueryOutcome.SERVED] == 2
        assert proxy.admission.inflight == 0

        graph = build_lock_graph([SRC_REPRO])
        assert graph.cycles == []
        sanitizer.assert_consistent_with(graph.edge_set())
        assert (
            "proxy.admission",
            "proxy.clock",
        ) in sanitizer.observed_edges()

    def test_threaded_serves_with_persistence_keep_the_journal_sound(
        self, tmp_path, make_proxy, bind
    ):
        from repro.persistence.persister import CachePersister

        proxy = make_proxy(
            persistence=CachePersister(tmp_path / "state"),
            recover=False,
        )
        queries = [bind(ra=161.5 + i, radius=3.5) for i in range(4)]
        serve_in_threads(proxy, queries)
        assert len(proxy.stats.records) == 4
        # Every admitted entry was journaled exactly once: a warm
        # restart into a fresh proxy restores the same cache.
        restarted = make_proxy(
            persistence=CachePersister(tmp_path / "state"),
            recover=True,
        )
        assert len(restarted.cache) == len(proxy.cache)
