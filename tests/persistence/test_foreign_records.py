"""Recovery vs foreign-shard records: skip and count, never re-admit.

A shard's journal tags every admit with the shard's id.  When a
persistence directory ends up under the *wrong* shard — a copied
directory, or a handoff file replayed by recovery instead of the
cluster's explicit :func:`~repro.cluster.replay_records` — recovery
must skip those records (the ring owner serves them now) and report
them as ``entries_foreign`` rather than silently duplicating cache
state across the tier.
"""

from __future__ import annotations

import pytest

from repro.core.cache import CacheManager
from repro.core.description import ArrayDescription
from repro.network.clock import SimulatedClock
from repro.persistence import CachePersister, recover_cache
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


def make_shard_rig(directory, origin, shard_id):
    """A cache + persister pair journaling under ``shard_id``."""
    clock = SimulatedClock()
    persister = CachePersister(directory, shard_id=shard_id)
    cache = CacheManager(ArrayDescription())
    persister.bind(cache, clock, version_of=lambda: origin.data_version)
    cache.mutation_log = persister
    return cache, persister


@pytest.fixture()
def bind(templates, radial_params):
    def run(**overrides):
        return templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, **overrides)
        )

    return run


def admit(origin, cache, bound):
    result = origin.execute_bound(bound).result
    return cache.store(bound, result, "", False)


class TestForeignRecovery:
    def test_foreign_records_skipped_and_counted(
        self, tmp_path, origin, templates, bind
    ):
        cache, persister = make_shard_rig(tmp_path, origin, "shard-a")
        admit(origin, cache, bind())
        admit(origin, cache, bind(ra=166.0, radius=2.0))

        # The same directory restarted under a different shard id: the
        # ring owns those entries elsewhere now.
        fresh_cache, restarted = make_shard_rig(
            tmp_path, origin, "shard-b"
        )
        report = recover_cache(restarted, fresh_cache, templates)
        assert report.entries_foreign == 2
        assert report.entries_restored == 0
        assert len(fresh_cache.entries()) == 0

    def test_matching_shard_id_restores(
        self, tmp_path, origin, templates, bind
    ):
        cache, persister = make_shard_rig(tmp_path, origin, "shard-a")
        admit(origin, cache, bind())

        fresh_cache, restarted = make_shard_rig(
            tmp_path, origin, "shard-a"
        )
        report = recover_cache(restarted, fresh_cache, templates)
        assert report.entries_foreign == 0
        assert report.entries_restored == 1
        assert len(fresh_cache.entries()) == 1

    def test_untagged_records_restore_anywhere(
        self, tmp_path, origin, templates, bind
    ):
        """Pre-sharding journals (shard=None) predate the tier: any
        shard may restore them."""
        cache, persister = make_shard_rig(tmp_path, origin, None)
        admit(origin, cache, bind())

        fresh_cache, restarted = make_shard_rig(
            tmp_path, origin, "shard-b"
        )
        report = recover_cache(restarted, fresh_cache, templates)
        assert report.entries_foreign == 0
        assert report.entries_restored == 1

    def test_foreign_count_in_report_dict(
        self, tmp_path, origin, templates, bind
    ):
        cache, persister = make_shard_rig(tmp_path, origin, "shard-a")
        admit(origin, cache, bind())
        fresh_cache, restarted = make_shard_rig(
            tmp_path, origin, "shard-b"
        )
        report = recover_cache(restarted, fresh_cache, templates)
        assert report.to_dict()["entries_foreign"] == 1
