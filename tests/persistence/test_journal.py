"""The append-only journal: streaming reads and damaged tails.

Covers the edge cases the wire format was designed around: an empty or
missing journal, a record ending exactly on the read-buffer boundary,
a record straddling it, CRC failure in the *middle* of a file (replay
must stop there, not skip over), and trailing garbage.
"""

import dataclasses

from repro.persistence.journal import READ_BUFFER_SIZE, Journal
from repro.persistence.records import (
    AdmitRecord,
    EvictRecord,
    HEADER_SIZE,
    encode_record,
)


def admit(entry_id=1, pad: str = "") -> AdmitRecord:
    return AdmitRecord(
        entry_id=entry_id,
        template_id="radial",
        params={"ra": 1.0},
        region={"shape": "hypersphere", "center": [0.0, 0.0], "radius": 1.0},
        signature="",
        truncated=False,
        result_xml=pad,
        data_version=1,
        ts_ms=0.0,
    )


def sized_admit(entry_id: int, frame_size: int) -> AdmitRecord:
    """An admit record whose encoded frame is exactly ``frame_size``.

    Padding goes through ``result_xml`` with JSON-neutral characters,
    so every padding character is exactly one payload byte.
    """
    base = admit(entry_id)
    shortfall = frame_size - len(encode_record(base))
    assert shortfall >= 0, "frame_size smaller than the minimal record"
    record = dataclasses.replace(base, result_xml="x" * shortfall)
    assert len(encode_record(record)) == frame_size
    return record


class TestEmptyJournals:
    def test_missing_file_reads_empty_and_clean(self, tmp_path):
        result = Journal(tmp_path / "journal.bin").read()
        assert result.records == []
        assert result.clean
        assert result.bytes_total == 0

    def test_zero_byte_file_reads_empty_and_clean(self, tmp_path):
        path = tmp_path / "journal.bin"
        path.write_bytes(b"")
        result = Journal(path).read()
        assert result.records == []
        assert result.clean

    def test_reset_truncates(self, tmp_path):
        journal = Journal(tmp_path / "journal.bin")
        journal.append(admit(1))
        assert journal.size_bytes > 0
        journal.reset()
        assert journal.size_bytes == 0
        assert journal.records_appended == 0
        assert journal.read().records == []


class TestAppendAndRead:
    def test_round_trips_mixed_records(self, tmp_path):
        journal = Journal(tmp_path / "journal.bin")
        records = [
            admit(1),
            EvictRecord(entry_id=1, reason="evict", data_version=1,
                        ts_ms=2.0),
            admit(2),
        ]
        for record in records:
            journal.append(record)
        result = journal.read()
        assert result.records == records
        assert result.clean
        assert result.bytes_replayed == result.bytes_total

    def test_append_returns_frame_size(self, tmp_path):
        journal = Journal(tmp_path / "journal.bin")
        record = admit(1)
        assert journal.append(record) == len(encode_record(record))


class TestBufferBoundaries:
    def test_record_ending_exactly_on_buffer_boundary(self, tmp_path):
        """First frame fills the read buffer exactly; the next frame
        must still be decoded from the following chunk."""
        journal = Journal(tmp_path / "journal.bin")
        first = sized_admit(1, READ_BUFFER_SIZE)
        second = admit(2)
        journal.append(first)
        journal.append(second)
        result = journal.read()
        assert result.records == [first, second]
        assert result.clean

    def test_record_straddling_the_buffer_boundary(self, tmp_path):
        """The second frame's header is split across two read chunks —
        the reader must wait for more data, not call it torn."""
        journal = Journal(tmp_path / "journal.bin")
        first = sized_admit(1, READ_BUFFER_SIZE - HEADER_SIZE // 2)
        second = admit(2)
        journal.append(first)
        journal.append(second)
        result = journal.read()
        assert result.records == [first, second]
        assert result.clean

    def test_many_records_across_many_buffers(self, tmp_path):
        journal = Journal(tmp_path / "journal.bin")
        records = [sized_admit(i, 900) for i in range(1, 21)]
        for record in records:
            journal.append(record)
        assert journal.size_bytes > READ_BUFFER_SIZE * 4
        result = journal.read()
        assert result.records == records


class TestDamagedTails:
    def test_torn_final_record(self, tmp_path):
        journal = Journal(tmp_path / "journal.bin")
        journal.append(admit(1))
        journal.append(admit(2))
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[:-7])
        result = journal.read()
        assert [r.entry_id for r in result.records] == [1]
        assert result.stop_reason == "torn"
        assert result.bytes_replayed < result.bytes_total

    def test_trailing_garbage_shorter_than_a_header(self, tmp_path):
        journal = Journal(tmp_path / "journal.bin")
        journal.append(admit(1))
        with open(journal.path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        result = journal.read()
        assert [r.entry_id for r in result.records] == [1]
        assert result.stop_reason == "torn"

    def test_crc_failure_mid_file_stops_replay_there(self, tmp_path):
        """A corrupt record in the middle hides everything after it —
        replay must never resynchronize past damage."""
        journal = Journal(tmp_path / "journal.bin")
        first, second, third = admit(1), admit(2), admit(3)
        journal.append(first)
        offset_second = journal.size_bytes
        journal.append(second)
        journal.append(third)
        data = bytearray(journal.path.read_bytes())
        data[offset_second + HEADER_SIZE + 2] ^= 0x40  # payload byte
        journal.path.write_bytes(bytes(data))
        result = journal.read()
        assert result.records == [first]
        assert result.stop_reason == "corrupt"
        assert "CRC32" in result.stop_detail
