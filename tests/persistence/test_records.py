"""Journal records: region codec, framing, and wire-format fencing."""

import json
import struct
import zlib

import pytest

from repro.geometry.regions import (
    ConvexPolytope,
    Halfspace,
    HyperRect,
    HyperSphere,
)
from repro.persistence.errors import PersistenceError
from repro.persistence.records import (
    AdmitRecord,
    ClearRecord,
    EvictRecord,
    HEADER_SIZE,
    WIRE_FORMAT_VERSION,
    encode_record,
    iter_frames,
    parse_payload,
    region_from_dict,
    region_to_dict,
)


def admit(entry_id=1, **overrides):
    fields = dict(
        entry_id=entry_id,
        template_id="radial",
        params={"ra": 164.0, "dec": 8.0},
        region=region_to_dict(HyperSphere((164.0, 8.0), 2.0)),
        signature="r >= -9999",
        truncated=False,
        result_xml="<result/>",
        data_version=1,
        ts_ms=12.5,
    )
    fields.update(overrides)
    return AdmitRecord(**fields)


class TestRegionCodec:
    @pytest.mark.parametrize(
        "region",
        [
            HyperSphere((164.0, 8.0), 2.5),
            HyperRect((0.0, -1.0), (3.0, 4.0)),
            ConvexPolytope(
                halfspaces=(
                    Halfspace((1.0, 0.0), 5.0),
                    Halfspace((-1.0, 0.0), 0.0),
                    Halfspace((0.0, 1.0), 5.0),
                    Halfspace((0.0, -1.0), 0.0),
                ),
                bbox=HyperRect((0.0, 0.0), (5.0, 5.0)),
            ),
        ],
        ids=["hypersphere", "hyperrect", "polytope"],
    )
    def test_round_trip(self, region):
        payload = region_to_dict(region)
        # The payload must survive JSON, like it does inside a frame.
        rebuilt = region_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt == region

    def test_unknown_shape_rejected(self):
        with pytest.raises(PersistenceError, match="unknown region shape"):
            region_from_dict({"shape": "torus"})

    def test_malformed_payload_rejected(self):
        with pytest.raises(PersistenceError, match="malformed region"):
            region_from_dict({"shape": "hypersphere"})


class TestRecordRoundTrip:
    @pytest.mark.parametrize(
        "record",
        [
            admit(),
            admit(data_version=None, truncated=True),
            EvictRecord(
                entry_id=7, reason="consolidate", data_version=3, ts_ms=1.0
            ),
            ClearRecord(data_version=None, removed=12, ts_ms=9.25),
        ],
        ids=["admit", "admit-unversioned", "evict", "clear"],
    )
    def test_frame_round_trip(self, record):
        frame = encode_record(record)
        assert parse_payload(frame[HEADER_SIZE:]) == record

    def test_future_wire_version_refused(self):
        payload = admit().to_payload()
        payload["v"] = WIRE_FORMAT_VERSION + 1
        raw = json.dumps(payload).encode()
        with pytest.raises(PersistenceError, match="wire format version"):
            parse_payload(raw)

    def test_unknown_record_type_refused(self):
        payload = admit().to_payload()
        payload["type"] = "merge"
        raw = json.dumps(payload).encode()
        with pytest.raises(PersistenceError, match="unknown record type"):
            parse_payload(raw)

    def test_non_object_payload_refused(self):
        with pytest.raises(PersistenceError, match="not a JSON object"):
            parse_payload(b"[1, 2, 3]")


class TestFrameWalk:
    def test_walks_consecutive_frames(self):
        records = [admit(1), admit(2), admit(3)]
        data = b"".join(encode_record(r) for r in records)
        outcomes = list(iter_frames(data))
        assert [o.record for o in outcomes] == records
        assert sum(o.consumed for o in outcomes) == len(data)

    def test_truncated_header_is_torn(self):
        data = encode_record(admit()) + b"\x03\x00"
        outcomes = list(iter_frames(data))
        assert outcomes[-1].stop_reason == "torn"
        assert "header" in outcomes[-1].detail

    def test_truncated_payload_is_torn(self):
        frame = encode_record(admit())
        outcomes = list(iter_frames(frame[:-5]))
        assert outcomes[-1].stop_reason == "torn"
        assert "cut short" in outcomes[-1].detail

    def test_crc_mismatch_is_corrupt(self):
        frame = bytearray(encode_record(admit()))
        frame[-1] ^= 0xFF
        outcomes = list(iter_frames(bytes(frame)))
        assert outcomes[-1].stop_reason == "corrupt"
        assert "CRC32" in outcomes[-1].detail

    def test_valid_crc_but_unparseable_payload_is_corrupt(self):
        payload = b"not json at all"
        frame = (
            struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        )
        outcomes = list(iter_frames(frame))
        assert outcomes[-1].stop_reason == "corrupt"
