"""Atomic whole-file writes: temp + rename, no partial states."""

import os

import pytest

from repro.persistence.atomic import atomic_write_bytes, atomic_write_text


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "artifact.json"
        target.write_bytes(b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_leaves_no_temp_files_behind(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_text(target, "x" * 10_000)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "artifact.json"
        ]

    def test_durable_flag_writes_identically(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write_bytes(target, b"\x00\x01\x02", durable=True)
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_failed_replace_preserves_original_and_cleans_up(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "artifact.json"
        target.write_text("original")

        def boom(src, dst):
            raise OSError("injected replace failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="injected"):
            atomic_write_text(target, "replacement")
        # The reader's view never changed, and the temp file is gone.
        assert target.read_text() == "original"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]
