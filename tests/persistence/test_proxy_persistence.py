"""Persistence wired through the full proxy: warm restarts, crashes,
version fencing against a live origin, and the observability surface."""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryStatus
from repro.faults.crash import CrashPlan
from repro.faults.errors import SimulatedCrash
from repro.obs import ProxyInstrumentation
from repro.persistence import CachePersister
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


def build_proxy(origin, directory, **kwargs):
    return FunctionProxy(
        origin,
        origin.templates,
        persistence=CachePersister(directory),
        **kwargs,
    )


@pytest.fixture()
def bind(origin, radial_params):
    def run(**overrides):
        return origin.templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, **overrides)
        )

    return run


class TestProxyWarmRestart:
    def test_restart_turns_a_miss_into_an_exact_hit(
        self, origin, tmp_path, bind
    ):
        first = build_proxy(origin, tmp_path)
        assert first.recovery_report.clean
        assert first.serve(bind()).record.contacted_origin
        restarted = build_proxy(origin, tmp_path)
        assert restarted.recovery_report.entries_restored == 1
        response = restarted.serve(bind())
        assert response.record.status is QueryStatus.EXACT
        assert not response.record.contacted_origin
        assert response.result.to_xml() == (
            origin.execute_bound(bind()).result.to_xml()
        )

    def test_cold_start_skips_recovery(self, origin, tmp_path, bind):
        warm = build_proxy(origin, tmp_path)
        warm.serve(bind())
        cold = build_proxy(origin, tmp_path, recover=False)
        assert cold.recovery_report is None
        assert cold.serve(bind()).record.contacted_origin

    def test_no_persister_means_no_report(self, origin):
        proxy = FunctionProxy(origin, origin.templates)
        assert proxy.persistence is None
        assert proxy.recovery_report is None

    def test_version_bump_fences_the_restart(self, origin, tmp_path, bind):
        warm = build_proxy(origin, tmp_path)
        warm.serve(bind())
        origin.bump_data_version()
        try:
            restarted = build_proxy(origin, tmp_path)
            report = restarted.recovery_report
            assert report.entries_stale == 1
            assert report.entries_restored == 0
            assert restarted.serve(bind()).record.contacted_origin
        finally:
            # The origin fixture is session-scoped; put its version back.
            origin.data_version -= 1


class TestProxyCrash:
    def test_simulated_crash_escapes_serve(self, origin, tmp_path, bind):
        proxy = build_proxy(origin, tmp_path)
        proxy.persistence.install_crash_plan(
            CrashPlan(seed=5, crash_after_records=(2,))
        )
        proxy.serve(bind())
        with pytest.raises(SimulatedCrash):
            proxy.serve(bind(ra=166.0))
        # The crash model: recover in a fresh process, prefix intact.
        restarted = build_proxy(origin, tmp_path)
        report = restarted.recovery_report
        assert report.stop_reason == "torn"
        assert report.entries_restored == 1


class TestObservability:
    def test_journal_and_recovery_metrics(self, origin, tmp_path, bind):
        warm = build_proxy(origin, tmp_path)
        warm.serve(bind())
        warm.serve(bind(ra=166.0))
        obs = ProxyInstrumentation()
        restarted = FunctionProxy(
            origin,
            origin.templates,
            persistence=CachePersister(tmp_path),
            instrumentation=obs,
        )
        assert restarted.recovery_report.entries_restored == 2
        text = obs.registry.exposition()
        assert (
            'journal_records_total{type="admit",direction="replay"} 2'
            in text
        )
        assert 'recovery_entries_total{disposition="restored"} 2' in text
        assert "snapshot_age_seconds" in text


flask = pytest.importorskip("flask")

from repro.webapp.proxy_app import create_proxy_app  # noqa: E402


class TestPersistenceEndpoint:
    def test_disabled_when_proxy_has_no_persister(self, origin):
        client = create_proxy_app(
            FunctionProxy(origin, origin.templates)
        ).test_client()
        payload = client.get("/persistence").get_json()
        assert payload == {
            "enabled": False,
            "reason": "proxy was built without a persister",
        }

    def test_status_and_recovery_shape(self, origin, tmp_path, bind):
        warm = build_proxy(origin, tmp_path)
        warm.serve(bind())
        restarted = build_proxy(origin, tmp_path)
        payload = (
            create_proxy_app(restarted)
            .test_client()
            .get("/persistence")
            .get_json()
        )
        assert payload["enabled"] is True
        assert payload["journal"]["size_bytes"] == 0  # post-recovery ckpt
        assert payload["snapshot"]["exists"] is True
        assert payload["recovery"]["entries_restored"] == 1
        assert payload["recovery"]["stop_reason"] is None
        assert payload["last_recovery"] == payload["recovery"]
