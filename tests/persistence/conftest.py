"""Fixtures for the persistence tests.

The *rig* is a cache wired to a persister exactly the way
:class:`~repro.core.proxy.FunctionProxy` wires them (mutation-log
hook, simulated clock, mutable data version), minus the proxy itself —
so journal/snapshot/recovery behaviour can be driven one mutation at a
time.
"""

from __future__ import annotations

import pytest

from repro.core.cache import CacheManager
from repro.core.description import ArrayDescription
from repro.network.clock import SimulatedClock
from repro.persistence import CachePersister
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


class PersistenceRig:
    """A cache + persister pair over one persistence directory."""

    def __init__(
        self,
        directory,
        origin,
        templates,
        snapshot_every: int = 1_000,
        max_bytes: int | None = None,
        policy=None,
        crash_plan=None,
        recovered: bool = False,
    ) -> None:
        self.origin = origin
        self.templates = templates
        self.clock = SimulatedClock()
        self.data_version = 1
        self.persister = CachePersister(
            directory, snapshot_every=snapshot_every, crash_plan=crash_plan
        )
        self.cache = CacheManager(
            ArrayDescription(), max_bytes=max_bytes, policy=policy
        )
        self.persister.bind(
            self.cache, self.clock, version_of=lambda: self.data_version
        )
        self.cache.mutation_log = self.persister
        self.recovery_report = None
        if recovered:
            from repro.persistence import recover_cache

            self.recovery_report = recover_cache(
                self.persister, self.cache, self.templates
            )

    def admit(self, bound, signature: str = "", truncated: bool = False):
        """Run one query at the origin and store its result."""
        result = self.origin.execute_bound(bound).result
        return self.cache.store(bound, result, signature, truncated)


@pytest.fixture()
def bind_radial(templates, radial_params):
    def run(**overrides):
        return templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, **overrides)
        )

    return run


@pytest.fixture()
def make_rig(tmp_path, origin, templates):
    """Build rigs over (by default) one shared persistence directory,
    so a second rig models a process restart over the first one's
    files."""

    def build(directory=None, **kwargs) -> PersistenceRig:
        return PersistenceRig(
            directory if directory is not None else tmp_path,
            origin,
            templates,
            **kwargs,
        )

    return build
