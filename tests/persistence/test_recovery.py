"""Warm-restart recovery: replay, fencing, and damaged tails.

Every test drives two (or three) rigs over one persistence directory:
the first rig is the process that journaled, each later rig is a
restart recovering from the first one's files.
"""

import pytest

from repro.core.replacement import ALL_POLICIES
from repro.persistence import recover_cache
from repro.persistence.records import AdmitRecord


def cache_keys(cache):
    return {entry.cache_key for entry in cache.entries()}


class TestWarmRestart:
    def test_restores_journaled_entries(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.admit(bind_radial(ra=166.0))
        restarted = make_rig(recovered=True)
        report = restarted.recovery_report
        assert report.clean
        assert report.entries_restored == 2
        assert report.records_replayed == 2
        assert report.record_counts == {"admit": 2}
        assert cache_keys(restarted.cache) == cache_keys(rig.cache)
        # Regions came back through the codec, not approximately.
        assert {e.region for e in restarted.cache.entries()} == {
            e.region for e in rig.cache.entries()
        }

    def test_restored_results_are_byte_identical(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        entry, _ = rig.admit(bind_radial())
        restarted = make_rig(recovered=True)
        (restored,) = restarted.cache.entries()
        assert restored.result.to_xml() == entry.result.to_xml()
        assert restored.row_count == entry.row_count
        assert restored.byte_size == entry.byte_size

    def test_report_lands_on_the_persister(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        restarted = make_rig(recovered=True)
        stored = restarted.persister.last_recovery
        assert stored == restarted.recovery_report.to_dict()
        assert stored["entries_restored"] == 1

    def test_recovery_checkpoints_the_restored_state(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        rig.admit(bind_radial())
        restarted = make_rig(recovered=True)
        # The restore became the new snapshot; the journal is empty.
        assert restarted.persister.journal.size_bytes == 0
        snapshot = restarted.persister.load_snapshot()
        assert len(snapshot.entries) == 1

    def test_empty_state_recovers_to_empty_cache(self, make_rig):
        restarted = make_rig(recovered=True)
        report = restarted.recovery_report
        assert report.clean
        assert not report.snapshot_loaded
        assert report.entries_restored == 0
        assert list(restarted.cache.entries()) == []


class TestReplaySemantics:
    def test_snapshot_only_recovery(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.admit(bind_radial(ra=166.0))
        rig.persister.checkpoint()
        restarted = make_rig(recovered=True)
        report = restarted.recovery_report
        assert report.snapshot_loaded
        assert report.snapshot_entries == 2
        assert report.records_replayed == 0
        assert report.entries_restored == 2

    def test_snapshot_plus_journal_tail(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.persister.checkpoint()
        rig.admit(bind_radial(ra=166.0))
        restarted = make_rig(recovered=True)
        report = restarted.recovery_report
        assert report.snapshot_entries == 1
        assert report.records_replayed == 1
        assert report.entries_restored == 2

    def test_duplicate_admit_after_evict_restores_one(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.admit(bind_radial())  # replace: evict + fresh admit
        restarted = make_rig(recovered=True)
        report = restarted.recovery_report
        assert report.record_counts == {"admit": 2, "evict": 1}
        assert report.entries_restored == 1
        assert len(list(restarted.cache.entries())) == 1

    def test_clear_record_empties_the_image(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.admit(bind_radial(ra=166.0))
        rig.cache.clear()
        restarted = make_rig(recovered=True)
        report = restarted.recovery_report
        assert report.record_counts == {"admit": 2, "clear": 1}
        assert report.entries_restored == 0
        assert list(restarted.cache.entries()) == []


class TestVersionFencing:
    def test_stale_versions_are_fenced_out(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.admit(bind_radial(ra=166.0))
        restarted = make_rig()
        restarted.data_version = 2  # the origin moved on while we were down
        report = recover_cache(
            restarted.persister, restarted.cache, restarted.templates
        )
        assert report.entries_stale == 2
        assert report.entries_restored == 0
        assert list(restarted.cache.entries()) == []

    def test_mixed_versions_keep_only_current(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.data_version = 2  # bump mid-run: later admits carry v2
        rig.admit(bind_radial(ra=166.0))
        restarted = make_rig()
        restarted.data_version = 2
        report = recover_cache(
            restarted.persister, restarted.cache, restarted.templates
        )
        assert report.entries_stale == 1
        assert report.entries_restored == 1

    def test_versionless_origin_restores_everything(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        rig.admit(bind_radial())
        restarted = make_rig()
        restarted.data_version = None  # immutable origin: nothing to fence
        report = recover_cache(
            restarted.persister, restarted.cache, restarted.templates
        )
        assert report.entries_stale == 0
        assert report.entries_restored == 1


class TestDamagedState:
    def test_torn_tail_restores_the_prefix(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.admit(bind_radial(ra=166.0))
        rig.admit(bind_radial(ra=162.0))
        path = rig.persister.journal.path
        path.write_bytes(path.read_bytes()[:-7])
        restarted = make_rig(recovered=True)
        report = restarted.recovery_report
        assert report.stop_reason == "torn"
        assert not report.clean
        assert report.entries_restored == 2
        assert report.bytes_replayed < report.bytes_total

    def test_second_restart_after_tear_is_clean(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.admit(bind_radial(ra=166.0))
        path = rig.persister.journal.path
        path.write_bytes(path.read_bytes()[:-7])
        first_restart = make_rig(recovered=True)
        assert first_restart.recovery_report.stop_reason == "torn"
        # recover_cache re-checkpointed: the tear is repaired on disk.
        second_restart = make_rig(recovered=True)
        report = second_restart.recovery_report
        assert report.clean
        assert report.snapshot_loaded
        assert report.entries_restored == 1

    def test_garbage_snapshot_is_diagnosed_not_fatal(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.persister.snapshot_path.write_text("not json {")
        restarted = make_rig(recovered=True)
        report = restarted.recovery_report
        assert not report.snapshot_loaded
        assert report.snapshot_error != ""
        # The journal alone still restores the entry.
        assert report.entries_restored == 1


class TestMaterializeFailures:
    def test_oversized_entry_is_rejected(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        restarted = make_rig(max_bytes=10, recovered=True)
        report = restarted.recovery_report
        assert report.entries_rejected == 1
        assert report.entries_restored == 0
        assert list(restarted.cache.entries()) == []

    def test_unknown_template_is_an_error_not_a_crash(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        rig.admit(bind_radial())
        record = rig.persister.journal.read().records[0]
        assert isinstance(record, AdmitRecord)
        rig.persister.journal.append(
            AdmitRecord(
                entry_id=999,
                template_id="retired_template",
                params=record.params,
                region=record.region,
                signature=record.signature,
                truncated=False,
                result_xml=record.result_xml,
                data_version=1,
                ts_ms=0.0,
            )
        )
        restarted = make_rig(recovered=True)
        report = restarted.recovery_report
        assert report.entries_error == 1
        assert report.entries_restored == 1
        assert any("retired_template" in e for e in report.errors)

    @pytest.mark.parametrize(
        "policy_cls", ALL_POLICIES, ids=lambda c: c.name
    )
    def test_budgeted_recovery_evicts_with_rationale(
        self, make_rig, bind_radial, policy_cls
    ):
        """A byte-budgeted restart evicts during restore exactly as it
        would during traffic — and the report names each victim with
        the policy's rationale (the explain layer's contract)."""
        rig = make_rig()
        sizes = []
        for ra in (164.0, 166.0, 162.0):
            entry, _ = rig.admit(bind_radial(ra=ra))
            sizes.append(entry.byte_size)
        # Every entry fits alone, but not all three together.
        budget = sum(sizes) - min(sizes)
        restarted = make_rig(
            max_bytes=budget, policy=policy_cls(), recovered=True
        )
        report = restarted.recovery_report
        assert report.entries_evicted >= 1
        assert report.entries_rejected == 0
        assert report.entries_restored == 3
        # Live entries = every restore minus the evictions made for room.
        assert (
            len(list(restarted.cache.entries()))
            == 3 - report.entries_evicted
        )
        for eviction in report.evictions:
            assert eviction["policy"] == policy_cls.name
            assert eviction["rationale"]
