"""Admission control against the persistence layer: turned-away
queries leave no trace in the journal, and the data-version fence
survives a saturated run."""

import dataclasses

import pytest

from repro.admission import AdmissionConfig, AdmissionController
from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryOutcome
from repro.harness.config import ExperimentScale
from repro.persistence import CachePersister
from repro.sched import EventLoop, ProxyFrontend
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID
from repro.workload import ClosedLoopConfig, ClosedLoopDriver
from repro.workload.generator import generate_radial_trace


@pytest.fixture()
def bind(origin, radial_params):
    def run(**overrides):
        return origin.templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, **overrides)
        )

    return run


def build_proxy(origin, directory, config, **kwargs):
    return FunctionProxy(
        origin,
        origin.templates,
        persistence=CachePersister(directory),
        admission=AdmissionController(config),
        **kwargs,
    )


class TestShedQueriesLeaveNoJournalTrace:
    def test_shed_writes_no_journal_records(self, origin, tmp_path, bind):
        proxy = build_proxy(
            origin,
            tmp_path,
            AdmissionConfig(max_inflight=1, max_queue_depth=1),
        )
        # Exhaust capacity so every serve is turned away at admission.
        while proxy.admission.try_admit(
            "default", proxy.clock.now_ms
        ).admitted:
            pass
        for index in range(3):
            response = proxy.serve(bind(ra=162.0 + index))
            assert response.record.outcome is QueryOutcome.SHED
        assert proxy.persistence.journal.size_bytes == 0
        assert len(proxy.cache) == 0
        # A restart confirms it: nothing to recover.
        restarted = build_proxy(
            origin,
            tmp_path,
            AdmissionConfig(max_inflight=1, max_queue_depth=1),
        )
        assert restarted.recovery_report.entries_restored == 0

    def test_queued_timeout_writes_no_journal_records(
        self, origin, tmp_path, bind
    ):
        config = AdmissionConfig(
            max_inflight=1,
            max_queue_depth=4,
            queue_deadline_ms=50.0,
        )
        proxy = build_proxy(origin, tmp_path, config)
        frontend = ProxyFrontend(proxy, EventLoop())
        records = []
        for index in range(3):
            frontend.submit(
                bind(ra=162.0 + index),
                on_done=lambda r: records.append(r.record),
            )
        frontend.loop.run()
        outcomes = [record.outcome for record in records]
        assert outcomes.count(QueryOutcome.SERVED) == 1
        assert outcomes.count(QueryOutcome.QUEUED_TIMEOUT) == 2
        # Only the served query reached the cache and thus the journal.
        restarted = build_proxy(origin, tmp_path, config)
        assert restarted.recovery_report.entries_restored == 1


class TestSaturatedWarmRestart:
    def test_version_bump_fences_a_saturated_run(self, origin, tmp_path):
        scale = ExperimentScale.quick()
        trace = generate_radial_trace(
            dataclasses.replace(scale.trace, n_queries=40)
        )
        config = AdmissionConfig(max_inflight=2, max_queue_depth=2)
        proxy = build_proxy(origin, tmp_path, config)
        frontend = ProxyFrontend(proxy, EventLoop())
        driver = ClosedLoopDriver(
            frontend,
            trace,
            ClosedLoopConfig(
                n_clients=12, queries_per_client=2, think_time_ms=500.0
            ),
        )
        stats = driver.run()
        counts = {
            outcome.value: count
            for outcome, count in stats.outcome_counts().items()
        }
        # The run actually saturated: a mix of served and shed, every
        # submission accounted for, and some entries persisted.
        assert counts.get("served", 0) >= 1
        assert counts.get("shed", 0) >= 1
        assert sum(counts.values()) == 24
        assert len(proxy.cache) >= 1

        origin.bump_data_version()
        try:
            restarted = build_proxy(origin, tmp_path, config)
            report = restarted.recovery_report
            # Every persisted entry predates the new data version: the
            # fence drops them all, saturated workload or not.
            assert report.entries_restored == 0
            assert report.entries_stale >= 1
            replay = restarted.serve(
                origin.templates.bind(
                    trace[0].template_id, trace[0].param_dict()
                )
            )
            assert replay.record.contacted_origin
        finally:
            # The origin fixture is session-scoped; put its version back.
            origin.data_version -= 1
