"""The cache persister: mutation hooks, snapshot cadence, crashes."""

import pytest

from repro.faults.crash import CrashPlan
from repro.faults.errors import SimulatedCrash
from repro.persistence import (
    AdmitRecord,
    CachePersister,
    ClearRecord,
    EvictRecord,
)
from repro.persistence.errors import PersistenceError


def journal_types(rig):
    return [r.type for r in rig.persister.journal.read().records]


class TestMutationHooks:
    def test_admission_journals_an_admit_record(self, make_rig, bind_radial):
        rig = make_rig()
        entry, _ = rig.admit(bind_radial())
        records = rig.persister.journal.read().records
        assert len(records) == 1
        record = records[0]
        assert isinstance(record, AdmitRecord)
        assert record.entry_id == entry.entry_id
        assert record.template_id == entry.template_id
        assert record.data_version == 1
        assert record.params == dict(bind_radial().params)

    def test_replace_journals_evict_then_admit(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.admit(bind_radial())  # identical query replaces the entry
        records = rig.persister.journal.read().records
        assert [r.type for r in records] == ["admit", "evict", "admit"]
        assert records[1].reason == "replace"

    def test_consolidation_journals_evict(self, make_rig, bind_radial):
        rig = make_rig()
        entry, _ = rig.admit(bind_radial(radius=4.0))
        rig.cache.remove(entry)
        records = rig.persister.journal.read().records
        assert records[-1] == EvictRecord(
            entry_id=entry.entry_id,
            reason="consolidate",
            data_version=1,
            ts_ms=records[-1].ts_ms,
        )

    def test_budget_eviction_journals_evict(self, make_rig, bind_radial):
        rig = make_rig(max_bytes=None)
        first, _ = rig.admit(bind_radial(radius=4.0))
        # Shrink the budget so the next admission must evict.
        rig.cache.max_bytes = first.byte_size + 10
        rig.admit(bind_radial(ra=166.5, radius=4.0))
        evicts = [
            r
            for r in rig.persister.journal.read().records
            if isinstance(r, EvictRecord)
        ]
        assert [r.reason for r in evicts] == ["evict"]
        assert evicts[0].entry_id == first.entry_id

    def test_clear_journals_one_clear_record(self, make_rig, bind_radial):
        rig = make_rig()
        rig.admit(bind_radial())
        rig.admit(bind_radial(ra=166.0))
        removed = rig.cache.clear()
        records = rig.persister.journal.read().records
        assert [r.type for r in records] == ["admit", "admit", "clear"]
        assert records[-1] == ClearRecord(
            data_version=1, removed=removed, ts_ms=records[-1].ts_ms
        )

    def test_suspended_hooks_journal_nothing(self, make_rig, bind_radial):
        rig = make_rig()
        rig.persister.suspended = True
        rig.admit(bind_radial())
        rig.cache.clear()
        assert rig.persister.journal.read().records == []

    def test_unknown_removal_reason_rejected(self, make_rig, bind_radial):
        rig = make_rig()
        entry, _ = rig.admit(bind_radial())
        with pytest.raises(PersistenceError, match="unknown removal"):
            rig.persister.removed(entry, "rebalance")

    def test_timestamps_come_from_the_simulated_clock(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        rig.clock.advance(1234.0)
        rig.admit(bind_radial())
        record = rig.persister.journal.read().records[0]
        assert record.ts_ms == 1234.0


class TestSnapshotCadence:
    def test_checkpoint_fires_every_snapshot_every_records(
        self, make_rig, bind_radial
    ):
        rig = make_rig(snapshot_every=2)
        rig.admit(bind_radial())
        assert not rig.persister.snapshot_path.exists()
        rig.admit(bind_radial(ra=166.0))
        # Cadence hit: snapshot written, journal truncated.
        assert rig.persister.snapshot_path.exists()
        assert rig.persister.journal.size_bytes == 0
        snapshot = rig.persister.load_snapshot()
        assert len(snapshot.entries) == 2
        assert rig.persister.total_records == 2  # lifetime, not reset

    def test_manual_checkpoint_captures_live_entries(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        entry, _ = rig.admit(bind_radial())
        rig.admit(bind_radial(ra=166.0))
        snapshot = rig.persister.checkpoint()
        assert [e.entry_id for e in snapshot.entries] == sorted(
            e.entry_id for e in rig.cache.entries()
        )
        assert snapshot.data_version == 1
        assert rig.persister.journal.read().records == []
        assert entry.entry_id in {e.entry_id for e in snapshot.entries}

    def test_checkpoint_requires_bind(self, tmp_path):
        persister = CachePersister(tmp_path)
        with pytest.raises(PersistenceError, match="not bound"):
            persister.checkpoint()

    def test_snapshot_every_must_be_positive(self, tmp_path):
        with pytest.raises(PersistenceError, match="snapshot_every"):
            CachePersister(tmp_path, snapshot_every=0)


class TestStatus:
    def test_status_reports_journal_and_snapshot(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        rig.admit(bind_radial())
        status = rig.persister.status()
        assert status["journal"]["records_since_snapshot"] == 1
        assert status["journal"]["size_bytes"] > 0
        assert status["total_records"] == 1
        assert status["snapshot"]["exists"] is False
        assert status["crash_plan"] is None
        rig.persister.checkpoint()
        status = rig.persister.status()
        assert status["snapshot"]["exists"] is True
        assert status["journal"]["size_bytes"] == 0

    def test_status_carries_installed_crash_plan(self, make_rig):
        rig = make_rig(
            crash_plan=CrashPlan(seed=3, crash_after_records=(5,))
        )
        assert rig.persister.status()["crash_plan"] == {
            "seed": 3,
            "crash_after_records": [5],
            "damage": "truncate",
            "tail_window_bytes": 64,
        }


class TestCrashInjection:
    def test_scheduled_crash_raises_after_damage(
        self, make_rig, bind_radial
    ):
        rig = make_rig(
            crash_plan=CrashPlan(
                seed=3, crash_after_records=(2,), damage="truncate"
            )
        )
        rig.admit(bind_radial())
        intact_size = rig.persister.journal.size_bytes
        with pytest.raises(SimulatedCrash) as excinfo:
            rig.admit(bind_radial(ra=166.0))
        assert excinfo.value.records_appended == 2
        assert excinfo.value.damage == "truncate"
        # Damage landed before the exception: the tail is torn.
        assert rig.persister.journal.size_bytes > intact_size
        read = rig.persister.journal.read()
        assert read.stop_reason == "torn"
        assert len(read.records) == 1

    def test_clean_kill_leaves_journal_intact(self, make_rig, bind_radial):
        rig = make_rig(
            crash_plan=CrashPlan(crash_after_records=(1,), damage="none")
        )
        with pytest.raises(SimulatedCrash):
            rig.admit(bind_radial())
        read = rig.persister.journal.read()
        assert read.clean
        assert len(read.records) == 1

    def test_install_crash_plan_arms_and_disarms(
        self, make_rig, bind_radial
    ):
        rig = make_rig()
        rig.persister.install_crash_plan(
            CrashPlan(crash_after_records=(1,))
        )
        with pytest.raises(SimulatedCrash):
            rig.admit(bind_radial())
        rig.persister.install_crash_plan(None)
        rig.admit(bind_radial(ra=166.0))  # no crash
        assert rig.persister.crash_session is None
