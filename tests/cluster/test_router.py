"""The shard router: placement, failover, crash handling, drain."""

from __future__ import annotations

import pytest

from repro.cluster import (
    REASON_SHARD_DOWN,
    RouterConfig,
    ShardRouter,
)
from repro.core.stats import QueryOutcome
from repro.faults.shard import ShardCrashPlan, ShardFaultWindow
from repro.obs.events import EventRecorder
from repro.obs.health import UNHEALTHY
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


class TestConstruction:
    def test_needs_shards(self):
        with pytest.raises(ValueError, match="at least one shard"):
            ShardRouter([])

    def test_rejects_duplicate_ids(self, make_tier, origin):
        from repro.cluster import Shard
        from repro.core.proxy import FunctionProxy

        proxy = FunctionProxy(origin, origin.templates)
        with pytest.raises(ValueError, match="duplicate shard ids"):
            ShardRouter([Shard("a", proxy), Shard("a", proxy)])

    def test_region_partition_cell_must_be_positive(self):
        with pytest.raises(ValueError, match="must be positive"):
            RouterConfig(region_partitions={"t": 0.0})


class TestPlacement:
    def test_same_template_same_shard(self, make_tier, bind):
        router = make_tier(persist=False)
        shards = {
            router.route(bind(ra=160.0 + i), 0.0).dispatched
            for i in range(5)
        }
        assert len(shards) == 1

    def test_region_partition_spreads_one_template(self, make_tier, bind):
        config = RouterConfig(
            region_partitions={RADIAL_TEMPLATE_ID: 0.02}
        )
        router = make_tier(persist=False, config=config)
        keys = {
            router.route_key(bind(ra=160.0 + offset, dec=5.0 + offset))
            for offset in (0.0, 1.0, 2.0, 3.0, 4.0, 5.0)
        }
        assert len(keys) > 1
        for key in keys:
            assert key.startswith(f"{RADIAL_TEMPLATE_ID}@")

    def test_unpartitioned_key_is_the_template_id(self, make_tier, bind):
        router = make_tier(persist=False)
        assert router.route_key(bind()) == RADIAL_TEMPLATE_ID

    def test_serve_lands_on_the_routed_shard(self, make_tier, bind):
        router = make_tier(persist=False)
        response, decision = router.serve_routed(bind())
        assert decision.dispatched is not None
        shard = router.shard(decision.dispatched)
        assert len(shard.proxy.stats.records) == 1
        assert response.record.outcome is QueryOutcome.SERVED


class TestFailover:
    def _crash_primary(self, router, bind):
        primary = router.ring.primary(router.route_key(bind()))
        return primary, ShardCrashPlan(
            seed=3, faults=(ShardFaultWindow(primary, "crash", 0.0),)
        )

    def test_crashed_primary_reroutes(self, make_tier, bind):
        probe = make_tier(persist=False)
        primary, plan = self._crash_primary(probe, bind)
        router = make_tier(
            persist=False, crash_plan=plan, events=EventRecorder()
        )
        response, decision = router.serve_routed(bind())
        assert decision.primary == primary
        assert decision.dispatched is not None
        assert decision.dispatched != primary
        assert decision.rerouted
        assert decision.attempts[0].fate == "crash"
        assert response.record.answered
        codes = router.events.counts()
        assert codes.get("EV12") == 1
        assert codes.get("EV13", 0) >= 1

    def test_no_failover_control_sheds(self, make_tier, bind):
        probe = make_tier(persist=False)
        primary, plan = self._crash_primary(probe, bind)
        router = make_tier(
            persist=False,
            fallback=False,
            config=RouterConfig(failover=False, handoff_on_crash=False),
            crash_plan=plan,
        )
        response, decision = router.serve_routed(bind())
        assert decision.dispatched is None
        assert len(decision.attempts) == 1
        assert response.record.outcome is QueryOutcome.SHED
        assert response.record.failure_reason == REASON_SHARD_DOWN
        # The shed is recorded against the primary shard's stats.
        assert len(router.shard(primary).proxy.stats.records) == 1

    def test_all_shards_down_tunnels_to_fallback(self, make_tier, bind):
        plan = ShardCrashPlan(
            faults=tuple(
                ShardFaultWindow(f"shard-{i}", "crash", 0.0)
                for i in range(3)
            )
        )
        router = make_tier(persist=False, crash_plan=plan)
        response, decision = router.serve_routed(bind())
        assert decision.dispatched is None
        assert response.record.answered
        assert response.record.contacted_origin
        tunnel = router.registry.get("router_tunnel_total")
        assert tunnel.total() == 1.0

    def test_unhealthy_status_skips_the_shard(self, make_tier, bind):
        router = make_tier(persist=False)
        primary = router.ring.primary(router.route_key(bind()))
        statuses = {sid: "healthy" for sid in router.shard_ids}
        statuses[primary] = UNHEALTHY
        decision = router.route(bind(), 0.0, statuses)
        assert decision.attempts[0].fate == "unhealthy"
        assert decision.dispatched != primary

    def test_slow_window_charges_the_record(self, make_tier, bind):
        probe = make_tier(persist=False)
        primary = probe.ring.primary(probe.route_key(bind()))
        plan = ShardCrashPlan(
            faults=(
                ShardFaultWindow(primary, "slow", 0.0, factor=4.0),
            )
        )
        router = make_tier(persist=False, crash_plan=plan)
        response, decision = router.serve_routed(bind())
        assert decision.dispatched == primary
        assert decision.slowdown == pytest.approx(4.0)
        assert response.record.steps_ms["router.slow"] > 0.0


class TestCrashHandoff:
    def test_crash_clears_memory_and_hands_off_disk(self, make_tier, bind):
        probe = make_tier(persist=False)
        primary = probe.ring.primary(probe.route_key(bind()))
        plan = ShardCrashPlan(
            faults=(ShardFaultWindow(primary, "crash", 5_000.0),)
        )
        router = make_tier(crash_plan=plan, events=EventRecorder())
        # Warm the primary's cache (and its journal) before the crash.
        router.serve(bind())
        victim = router.shard(primary).proxy
        assert len(victim.cache.entries()) == 1
        router.clock.advance(6_000.0)
        router.check_faults(router.clock.now_ms)
        assert len(victim.cache.entries()) == 0
        assert len(router.handoffs) == 1
        report = router.handoffs[0]
        assert report.source == primary
        assert report.entries == 1
        assert report.replayed == 1
        successor = router.shard(report.target).proxy
        assert len(successor.cache.entries()) == 1
        assert router.events.counts().get("EV14") == 1
        # The durable image survived the clear: the journal still
        # holds the admit (suspended persister => no spurious clear).
        assert victim.persistence.status()["total_records"] >= 1

    def test_crash_without_persister_moves_nothing(self, make_tier, bind):
        probe = make_tier(persist=False)
        primary = probe.ring.primary(probe.route_key(bind()))
        plan = ShardCrashPlan(
            faults=(ShardFaultWindow(primary, "crash", 5_000.0),)
        )
        router = make_tier(persist=False, crash_plan=plan)
        router.serve(bind())
        router.clock.advance(6_000.0)
        router.check_faults(router.clock.now_ms)
        assert router.handoffs == []

    def test_handoff_disabled_still_clears(self, make_tier, bind):
        probe = make_tier(persist=False)
        primary = probe.ring.primary(probe.route_key(bind()))
        plan = ShardCrashPlan(
            faults=(ShardFaultWindow(primary, "crash", 5_000.0),)
        )
        router = make_tier(
            crash_plan=plan,
            config=RouterConfig(handoff_on_crash=False),
        )
        router.serve(bind())
        router.clock.advance(6_000.0)
        router.check_faults(router.clock.now_ms)
        assert len(router.shard(primary).proxy.cache.entries()) == 0
        assert router.handoffs == []

    def test_hang_keeps_the_cache(self, make_tier, bind):
        probe = make_tier(persist=False)
        primary = probe.ring.primary(probe.route_key(bind()))
        plan = ShardCrashPlan(
            faults=(ShardFaultWindow(primary, "hang", 5_000.0, 9_000.0),)
        )
        router = make_tier(persist=False, crash_plan=plan)
        router.serve(bind())
        router.clock.advance(6_000.0)
        router.check_faults(router.clock.now_ms)
        # Hung, not crashed: memory intact, no handoff, not dispatchable.
        assert len(router.shard(primary).proxy.cache.entries()) == 1
        assert router.handoffs == []
        decision = router.route(bind(), router.clock.now_ms)
        assert decision.attempts[0].fate == "hang"
        assert decision.dispatched != primary


class TestDrain:
    def test_drain_moves_the_live_cache(self, make_tier, bind):
        router = make_tier(persist=False)
        router.serve(bind())
        primary = router.ring.primary(router.route_key(bind()))
        report = router.drain(primary)
        assert report is not None
        assert report.source == primary
        assert report.replayed == 1
        assert router.drained() == (primary,)
        successor = router.shard(report.target).proxy
        assert len(successor.cache.entries()) == 1
        # Routing now skips the drained shard without a fault draw.
        # (The reroute target is the key's next preference, which need
        # not coincide with the shard's ring successor.)
        decision = router.route(bind(), router.clock.now_ms)
        assert decision.attempts[0].fate == "drained"
        assert decision.dispatched is not None
        assert decision.dispatched != primary

    def test_double_drain_returns_none(self, make_tier):
        router = make_tier(persist=False)
        assert router.drain("shard-0") is not None
        assert router.drain("shard-0") is None

    def test_unknown_shard_raises(self, make_tier):
        router = make_tier(persist=False)
        with pytest.raises(ValueError, match="unknown shard"):
            router.drain("ghost")

    def test_drain_with_no_live_successor_moves_nothing(
        self, make_tier, bind
    ):
        router = make_tier(n_shards=2, persist=False)
        router.serve(bind())
        router.drain("shard-0")
        report = router.drain("shard-1")
        assert report is not None
        assert report.target == ""
        assert report.replayed == 0


class TestStatusAndHealth:
    def test_status_payload(self, make_tier, bind):
        router = make_tier(persist=False)
        router.serve(bind())
        payload = router.status()
        assert {s["shard_id"] for s in payload["shards"]} == set(
            router.shard_ids
        )
        assert payload["ring"]["nodes"] == list(router.shard_ids)
        assert payload["failover"] is True
        assert payload["fallback"] is True
        assert payload["decisions_total"] == 1
        assert sum(s["queries"] for s in payload["shards"]) == 1

    def test_health_reports_shards_down(self, make_tier):
        plan = ShardCrashPlan(
            faults=(ShardFaultWindow("shard-0", "crash", 0.0),)
        )
        router = make_tier(persist=False, crash_plan=plan)
        report = router.health(10.0)
        assert report["shards_total"] == 3
        assert report["shards_up"] == 2
        assert report["shards"]["shard-0"] == "unreachable"
        assert router.shards_up(10.0) == 2
