"""Warm handoff: export, wire round trip, replay, fencing."""

from __future__ import annotations

import pytest

from repro.cluster import (
    decode_handoff,
    encode_handoff,
    export_records,
    persisted_records,
    replay_records,
)
from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryStatus
from repro.persistence import CachePersister
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


@pytest.fixture()
def warm_proxy(origin, bind):
    """A proxy with two distinct cached radial results."""
    proxy = FunctionProxy(origin, origin.templates)
    proxy.serve(bind())
    proxy.serve(bind(ra=166.0, radius=2.0))
    assert len(proxy.cache.entries()) == 2
    return proxy


class TestExport:
    def test_live_export_is_tagged_and_ordered(self, warm_proxy):
        records = export_records(warm_proxy, "shard-a", 1_000.0)
        assert len(records) == 2
        assert [r.entry_id for r in records] == sorted(
            r.entry_id for r in records
        )
        for record in records:
            assert record.shard == "shard-a"
            assert record.template_id == RADIAL_TEMPLATE_ID
            assert record.data_version == warm_proxy.origin.data_version

    def test_export_deterministic(self, warm_proxy):
        first = encode_handoff(
            export_records(warm_proxy, "shard-a", 1_000.0)
        )
        second = encode_handoff(
            export_records(warm_proxy, "shard-a", 1_000.0)
        )
        assert first == second


class TestWireRoundTrip:
    def test_encode_decode(self, warm_proxy):
        records = export_records(warm_proxy, "shard-a", 1_000.0)
        data = encode_handoff(records)
        assert decode_handoff(data) == records

    def test_torn_transfer_loses_only_the_tail(self, warm_proxy):
        records = export_records(warm_proxy, "shard-a", 1_000.0)
        data = encode_handoff(records)
        first_len = len(encode_handoff(records[:1]))
        torn = data[: first_len + 7]  # mid-frame cut in the second record
        assert decode_handoff(torn) == records[:1]

    def test_corrupt_frame_stops_cleanly(self, warm_proxy):
        records = export_records(warm_proxy, "shard-a", 1_000.0)
        data = bytearray(encode_handoff(records))
        data[12] ^= 0xFF  # flip a payload byte in the first frame
        assert decode_handoff(bytes(data)) == ()

    def test_empty_stream(self):
        assert decode_handoff(b"") == ()


class TestReplay:
    def test_replay_restores_exact_hits(self, origin, warm_proxy, bind):
        records = export_records(warm_proxy, "shard-a", 1_000.0)
        successor = FunctionProxy(origin, origin.templates)
        report = replay_records(
            records, successor, source="shard-a", target="shard-b"
        )
        assert report.entries == 2
        assert report.replayed == 2
        assert report.stale == report.errors == report.rejected == 0
        # The successor now answers without the origin.
        response = successor.serve(bind())
        assert response.record.status is QueryStatus.EXACT
        assert not response.record.contacted_origin

    def test_foreign_tag_is_accepted_by_replay(self, origin, warm_proxy):
        """Replay (unlike recovery) takes records tagged with another
        shard's id: the successor stores them as its own."""
        records = export_records(warm_proxy, "shard-a", 1_000.0)
        assert all(r.shard == "shard-a" for r in records)
        successor = FunctionProxy(origin, origin.templates)
        report = replay_records(
            records, successor, source="shard-a", target="shard-b"
        )
        assert report.replayed == len(records)

    def test_version_fence_drops_stale_entries(self, origin, warm_proxy):
        records = export_records(warm_proxy, "shard-a", 1_000.0)
        successor = FunctionProxy(origin, origin.templates)
        origin.bump_data_version()
        report = replay_records(
            records, successor, source="shard-a", target="shard-b"
        )
        assert report.stale == len(records)
        assert report.replayed == 0
        assert len(successor.cache.entries()) == 0

    def test_malformed_record_never_aborts(self, origin, warm_proxy):
        records = export_records(warm_proxy, "shard-a", 1_000.0)
        broken = records[0].__class__(
            **{
                **records[0].__dict__,
                "template_id": "no.such.template",
            }
        )
        successor = FunctionProxy(origin, origin.templates)
        report = replay_records(
            (broken, records[1]),
            successor,
            source="shard-a",
            target="shard-b",
        )
        assert report.errors == 1
        assert report.replayed == 1

    def test_successor_rejournals_under_its_own_id(
        self, origin, warm_proxy, tmp_path
    ):
        records = export_records(warm_proxy, "shard-a", 1_000.0)
        successor = FunctionProxy(
            origin,
            origin.templates,
            persistence=CachePersister(tmp_path / "b", shard_id="shard-b"),
        )
        replay_records(
            records, successor, source="shard-a", target="shard-b"
        )
        journaled = persisted_records(successor.persistence)
        assert len(journaled) == len(records)
        assert all(r.shard == "shard-b" for r in journaled)


class TestPersistedRecords:
    def test_image_follows_the_journal(self, origin, bind, tmp_path):
        proxy = FunctionProxy(
            origin,
            origin.templates,
            persistence=CachePersister(tmp_path, shard_id="shard-a"),
        )
        proxy.serve(bind())
        proxy.serve(bind(ra=166.0, radius=2.0))
        image = persisted_records(proxy.persistence)
        assert len(image) == 2
        assert all(r.shard == "shard-a" for r in image)
        # A clear empties the durable image too.
        proxy.cache.clear()
        assert persisted_records(proxy.persistence) == ()
