"""The cluster frontend and the tier's determinism contract."""

from __future__ import annotations

import json

import pytest

from repro.admission import AdmissionConfig
from repro.cluster import ClusterFrontend, RouterConfig
from repro.core.stats import QueryOutcome
from repro.faults.shard import ShardCrashPlan, ShardFaultWindow
from repro.obs.events import EventRecorder
from repro.sched import EventLoop
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID
from repro.workload.closed_loop import ClosedLoopConfig, ClosedLoopDriver

ADMISSION = AdmissionConfig(max_inflight=2, max_queue_depth=8)


class TestClusterFrontend:
    def test_submit_routes_and_completes(self, make_tier, bind):
        router = make_tier(persist=False, admission=ADMISSION)
        frontend = ClusterFrontend(router, EventLoop())
        done = []
        decision = frontend.submit(bind(), on_done=done.append)
        assert decision.dispatched is not None
        frontend.loop.run()
        assert len(done) == 1
        assert done[0].record.outcome is QueryOutcome.SERVED
        assert frontend.completed == 1
        assert frontend.rejected == 0

    def test_rebinds_router_clock_to_the_loop(self, make_tier):
        router = make_tier(persist=False, admission=ADMISSION)
        loop = EventLoop()
        frontend = ClusterFrontend(router, loop)
        assert router.clock is loop
        assert frontend.templates is not None

    def test_undispatchable_submission_still_completes(
        self, make_tier, bind
    ):
        plan = ShardCrashPlan(
            faults=tuple(
                ShardFaultWindow(f"shard-{i}", "crash", 0.0)
                for i in range(3)
            )
        )
        router = make_tier(
            persist=False, admission=ADMISSION, crash_plan=plan
        )
        frontend = ClusterFrontend(router, EventLoop())
        done = []
        decision = frontend.submit(bind(), on_done=done.append)
        assert decision.dispatched is None
        frontend.loop.run()
        # Tunnelled to the origin fallback: answered, counted complete.
        assert len(done) == 1
        assert done[0].record.answered
        assert frontend.completed == 1

    def test_shed_counts_as_rejected(self, make_tier, bind):
        plan = ShardCrashPlan(
            faults=tuple(
                ShardFaultWindow(f"shard-{i}", "crash", 0.0)
                for i in range(3)
            )
        )
        router = make_tier(
            persist=False,
            admission=ADMISSION,
            fallback=False,
            config=RouterConfig(failover=False, handoff_on_crash=False),
            crash_plan=plan,
        )
        frontend = ClusterFrontend(router, EventLoop())
        done = []
        frontend.submit(bind(), on_done=done.append)
        frontend.loop.run()
        assert len(done) == 1
        assert done[0].record.outcome is QueryOutcome.SHED
        assert frontend.rejected == 1


def _run_tier(make_tier, trace_binds, crash_plan):
    """One complete event-loop run; returns (records, decisions)."""
    router = make_tier(
        persist=False,
        admission=ADMISSION,
        crash_plan=crash_plan,
        events=EventRecorder(),
    )
    frontend = ClusterFrontend(router, EventLoop())
    responses = []
    for offset_ms, bound in trace_binds:
        frontend.loop.at(
            offset_ms,
            lambda b=bound: frontend.submit(b, on_done=responses.append),
        )
    frontend.loop.run()
    records = [r.record.to_dict(include_wall=False) for r in responses]
    decisions = [d.to_dict() for d in router.recent_decisions()]
    return records, decisions, router.events.counts()


@pytest.fixture()
def trace_binds(bind):
    """A deterministic little trace straddling the crash instant."""
    binds = []
    for index in range(12):
        binds.append(
            (
                500.0 * index,
                bind(ra=160.0 + (index % 4), radius=2.0),
            )
        )
    return binds


class TestDeterminism:
    CRASH = ShardCrashPlan(
        seed=11,
        error_rate=0.1,
        faults=(ShardFaultWindow("shard-1", "crash", 2_000.0),),
    )

    def test_same_seed_byte_identical_runs(self, make_tier, trace_binds):
        first = _run_tier(make_tier, trace_binds, self.CRASH)
        second = _run_tier(make_tier, trace_binds, self.CRASH)
        for a, b in zip(first, second):
            assert json.dumps(a, sort_keys=True) == json.dumps(
                b, sort_keys=True
            )

    def test_closed_loop_driver_deterministic(self, make_tier, origin):
        """The full stacked pipeline — seeded clients, router, fault
        session, admission queues, one event loop — replays exactly."""
        from repro.workload.trace import Trace, TraceQuery

        def run():
            router = make_tier(
                persist=False,
                admission=ADMISSION,
                crash_plan=self.CRASH,
                config=RouterConfig(
                    region_partitions={RADIAL_TEMPLATE_ID: 0.02}
                ),
            )
            trace = Trace(
                tuple(
                    TraceQuery(
                        RADIAL_TEMPLATE_ID,
                        (
                            ("ra", 160.0 + index),
                            ("dec", 8.0),
                            ("radius", 2.0),
                            ("r_min", -9999.0),
                            ("r_max", 9999.0),
                        ),
                    )
                    for index in range(6)
                )
            )
            frontend = ClusterFrontend(router, EventLoop())
            driver = ClosedLoopDriver(
                frontend,
                trace,
                ClosedLoopConfig(
                    n_clients=6,
                    queries_per_client=3,
                    think_time_ms=1_000.0,
                    seed=23,
                ),
            )
            stats = driver.run()
            return (
                json.dumps(
                    [
                        record.to_dict(include_wall=False)
                        for record in stats.records
                    ],
                    sort_keys=True,
                ),
                json.dumps(
                    [d.to_dict() for d in router.recent_decisions()],
                    sort_keys=True,
                ),
                stats.outcome_counts(),
            )

        first = run()
        second = run()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]

    def test_plan_variant_changes_only_the_injected_shard(
        self, make_tier, trace_binds
    ):
        """Draw alignment end to end: disabling the crash must not
        reshuffle the transient-error stream (same seed, same
        error_rate) — only shard-1's fates may change."""
        no_crash = ShardCrashPlan(seed=11, error_rate=0.1)
        _, with_crash_decisions, _ = _run_tier(
            make_tier, trace_binds, self.CRASH
        )
        _, without_decisions, _ = _run_tier(
            make_tier, trace_binds, no_crash
        )
        assert len(with_crash_decisions) == len(without_decisions)
        for crashed, clean in zip(with_crash_decisions, without_decisions):
            crash_fates = {
                a["shard_id"]: a["fate"] for a in crashed["attempts"]
            }
            clean_fates = {
                a["shard_id"]: a["fate"] for a in clean["attempts"]
            }
            for shard_id, fate in crash_fates.items():
                if shard_id == "shard-1" or fate == "dispatched":
                    continue
                assert clean_fates.get(shard_id, fate) == fate

    def test_events_deterministic(self, make_tier, trace_binds):
        first = _run_tier(make_tier, trace_binds, self.CRASH)[2]
        second = _run_tier(make_tier, trace_binds, self.CRASH)[2]
        assert first == second
        assert first.get("EV12") == 1
