"""The consistent-hash ring: stability, balance, failover chains."""

from __future__ import annotations

import pytest

from repro.cluster import HashRing, ring_hash


class TestRingHash:
    def test_stable_across_calls(self):
        assert ring_hash("skyserver.radial") == ring_hash("skyserver.radial")

    def test_pinned_value(self):
        """MD5-based positions are process-independent; pin one so an
        accidental hash swap (e.g. to salted ``hash()``) fails loudly."""
        assert ring_hash("shard-0#0") == 0x42FA7B14711F95AD


class TestConstruction:
    def test_needs_nodes(self):
        with pytest.raises(ValueError, match="at least one node"):
            HashRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            HashRing(["a", "b", "a"])

    def test_rejects_nonpositive_vnodes(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(["a"], vnodes=0)

    def test_nodes_sorted(self):
        assert HashRing(["c", "a", "b"]).nodes == ("a", "b", "c")


class TestPreference:
    def test_every_node_exactly_once(self):
        ring = HashRing([f"shard-{i}" for i in range(5)])
        order = ring.preference("some-key")
        assert sorted(order) == sorted(ring.nodes)

    def test_primary_is_first(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.primary("k") == ring.preference("k")[0]

    def test_deterministic(self):
        nodes = [f"shard-{i}" for i in range(4)]
        first = HashRing(nodes).preference("skyserver.radial@3,5,-2")
        second = HashRing(nodes).preference("skyserver.radial@3,5,-2")
        assert first == second

    def test_single_node_ring(self):
        ring = HashRing(["only"])
        assert ring.preference("anything") == ("only",)
        assert ring.successors("only") == ()

    def test_roughly_balanced(self):
        """With vnodes, 1000 distinct keys should not collapse onto
        one node (a loose bound; the exact split is hash-determined)."""
        ring = HashRing([f"shard-{i}" for i in range(4)], vnodes=64)
        counts: dict[str, int] = {}
        for index in range(1000):
            owner = ring.primary(f"key-{index}")
            counts[owner] = counts.get(owner, 0) + 1
        assert len(counts) == 4
        assert max(counts.values()) < 2.5 * min(counts.values())

    def test_minimal_disruption_on_node_loss(self):
        """Keys not owned by a removed node keep their primary — the
        consistent-hashing property the failover chain relies on."""
        before = HashRing(["a", "b", "c", "d"])
        after = HashRing(["a", "b", "c"])
        for index in range(300):
            key = f"key-{index}"
            if before.primary(key) != "d":
                assert after.primary(key) == before.primary(key)


class TestSuccessors:
    def test_unknown_node_raises(self):
        with pytest.raises(ValueError, match="unknown ring node"):
            HashRing(["a"]).successors("ghost")

    def test_excludes_self_and_covers_rest(self):
        ring = HashRing(["a", "b", "c", "d"])
        chain = ring.successors("b")
        assert "b" not in chain
        assert sorted(chain) == ["a", "c", "d"]
