"""Fixtures for the sharded-tier tests.

A *tier* is N full-semantic shard proxies (each with its own
persistence directory under ``tmp_path``) behind a
:class:`~repro.cluster.ShardRouter`, plus an optional cache-less
origin-tunnel fallback — the same wiring the shard-availability
harness uses, sized for unit tests.
"""

from __future__ import annotations

import pytest

from repro.admission import AdmissionConfig, AdmissionController
from repro.cluster import RouterConfig, Shard, ShardRouter
from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.persistence import CachePersister
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


@pytest.fixture()
def bind(templates, radial_params):
    def run(**overrides):
        return templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, **overrides)
        )

    return run


@pytest.fixture()
def make_tier(tmp_path, origin):
    """Build a router over fresh shard proxies.

    ``persist=False`` skips the per-shard persister (for tests that
    only exercise routing); ``fallback=False`` drops the origin
    tunnel so undispatchable queries shed.
    """

    def build(
        n_shards: int = 3,
        persist: bool = True,
        fallback: bool = True,
        admission: AdmissionConfig | None = None,
        config: RouterConfig | None = None,
        **router_kwargs,
    ) -> ShardRouter:
        shards = []
        for index in range(n_shards):
            shard_id = f"shard-{index}"
            kwargs = {}
            if persist:
                kwargs["persistence"] = CachePersister(
                    tmp_path / shard_id, shard_id=shard_id
                )
            if admission is not None:
                kwargs["admission"] = AdmissionController(admission)
            shards.append(
                Shard(
                    shard_id,
                    FunctionProxy(origin, origin.templates, **kwargs),
                )
            )
        tunnel = (
            FunctionProxy(
                origin, origin.templates, scheme=CachingScheme.NO_CACHE
            )
            if fallback
            else None
        )
        return ShardRouter(
            shards, fallback=tunnel, config=config, **router_kwargs
        )

    return build
