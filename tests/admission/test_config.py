"""AdmissionConfig / TenantQuota validation and derived values."""

import pytest

from repro.admission import AdmissionConfig, TenantQuota


class TestTenantQuota:
    def test_defaults(self):
        quota = TenantQuota()
        assert quota.rate_per_s == 10.0
        assert quota.burst == 20.0

    @pytest.mark.parametrize(
        "kwargs",
        [{"rate_per_s": 0.0}, {"rate_per_s": -1.0}, {"burst": 0.5}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestAdmissionConfig:
    def test_defaults_are_valid(self):
        config = AdmissionConfig()
        assert config.capacity == config.max_inflight + config.max_queue_depth
        assert config.watermark_depth == int(
            config.degrade_watermark * config.max_queue_depth
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"max_queue_depth": 0},
            {"discipline": "priority"},
            {"queue_deadline_ms": 0.0},
            {"shed_policy": "drop-oldest"},
            {"degrade_watermark": 1.5},
            {"degrade_watermark": -0.1},
            {"overload_threshold": 0},
            {"overload_cooldown_ms": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionConfig(**kwargs)

    def test_watermark_depth_floors(self):
        config = AdmissionConfig(max_queue_depth=10, degrade_watermark=0.75)
        assert config.watermark_depth == 7
