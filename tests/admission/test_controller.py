"""AdmissionController: gate, queue, quotas, shed policies, overload."""

import pytest

from repro.admission import (
    DISCIPLINE_LIFO,
    REASON_ADMISSION_OPEN,
    REASON_QUEUE_FULL,
    REASON_QUOTA,
    SHED_DEGRADE_TO_TUNNEL,
    SHED_SHED_CHEAPEST,
    AdmissionConfig,
    AdmissionController,
    TenantQuota,
    TokenBucket,
)
from repro.faults.resilience import BreakerState


class Listener:
    """Records every admission hook call."""

    def __init__(self):
        self.depths = []
        self.inflight = []
        self.sheds = []
        self.quota_denied = []
        self.quota_tokens = []
        self.waits = []
        self.overload = []
        self.events = []

    def admission_queue_depth(self, depth):
        self.depths.append(depth)

    def admission_inflight(self, count):
        self.inflight.append(count)

    def admission_shed(self, reason):
        self.sheds.append(reason)

    def admission_quota_denied(self, tenant):
        self.quota_denied.append(tenant)

    def admission_quota_tokens(self, tenant, tokens):
        self.quota_tokens.append((tenant, tokens))

    def admission_queue_wait(self, sim_ms):
        self.waits.append(sim_ms)

    def admission_overload_transition(self, state):
        self.overload.append(state)

    def telemetry_event(self, code, at_ms, trace_id=None,
                        query_index=None, **payload):
        self.events.append((code, at_ms, payload))


def make(
    max_inflight=2,
    max_queue_depth=4,
    overload_threshold=64,
    **kwargs,
):
    config = AdmissionConfig(
        max_inflight=max_inflight,
        max_queue_depth=max_queue_depth,
        overload_threshold=overload_threshold,
        **kwargs,
    )
    return AdmissionController(config)


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(TenantQuota(rate_per_s=1.0, burst=2.0))
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)

    def test_refills_with_event_time(self):
        bucket = TokenBucket(TenantQuota(rate_per_s=2.0, burst=2.0))
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # 2 tokens/s: one token back after 500 simulated ms.
        assert bucket.try_take(500.0)
        assert not bucket.try_take(500.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(TenantQuota(rate_per_s=100.0, burst=3.0))
        for _ in range(3):
            assert bucket.try_take(1_000_000.0)
        assert not bucket.try_take(1_000_000.0)

    def test_time_going_backwards_is_ignored(self):
        bucket = TokenBucket(TenantQuota(rate_per_s=1.0, burst=1.0))
        assert bucket.try_take(5_000.0)
        # An earlier stamp must not mint tokens or rewind the clock.
        assert not bucket.try_take(0.0)
        assert bucket.try_take(6_000.0)


class TestDirectGate:
    def test_admits_up_to_capacity_then_sheds(self):
        controller = make(max_inflight=2, max_queue_depth=2)
        verdicts = [controller.try_admit("t", 0.0) for _ in range(5)]
        assert [v.admitted for v in verdicts] == [
            True, True, True, True, False,
        ]
        assert verdicts[-1].reason == REASON_QUEUE_FULL
        assert controller.inflight == 4
        assert controller.snapshot()["shed_by_reason"] == {
            REASON_QUEUE_FULL: 1
        }

    def test_release_frees_a_slot(self):
        controller = make(max_inflight=1, max_queue_depth=1)
        assert controller.try_admit("t", 0.0).admitted
        assert controller.try_admit("t", 0.0).admitted
        assert not controller.try_admit("t", 0.0).admitted
        controller.release()
        assert controller.try_admit("t", 0.0).admitted

    def test_quota_checked_before_capacity(self):
        controller = make(
            quotas={"metered": TenantQuota(rate_per_s=1.0, burst=1.0)}
        )
        assert controller.try_admit("metered", 0.0).admitted
        verdict = controller.try_admit("metered", 0.0)
        assert not verdict.admitted
        assert verdict.reason == REASON_QUOTA
        # Unmetered tenants are unaffected.
        assert controller.try_admit("other", 0.0).admitted
        assert controller.quota_denials() == {"metered": 1}

    def test_degrade_to_tunnel_past_watermark(self):
        controller = make(
            max_inflight=2,
            max_queue_depth=4,
            shed_policy=SHED_DEGRADE_TO_TUNNEL,
            degrade_watermark=0.5,
        )
        # Slots + backlog below the watermark: full service.
        verdicts = [controller.try_admit("t", 0.0) for _ in range(4)]
        assert all(v.admitted and not v.degrade for v in verdicts)
        # Backlog at the watermark (2 of 4): tunnel mode.
        verdict = controller.try_admit("t", 0.0)
        assert verdict.admitted and verdict.degrade

    def test_degrade_respects_policy_gate(self):
        controller = make(
            max_inflight=1,
            max_queue_depth=2,
            shed_policy=SHED_DEGRADE_TO_TUNNEL,
            degrade_watermark=0.0,
        )
        controller.bind(None, allow_degrade=False)
        verdict = controller.try_admit("t", 0.0)
        assert verdict.admitted and not verdict.degrade


class TestOverloadBreaker:
    def make_overloaded(self, listener=None):
        controller = make(
            max_inflight=1,
            max_queue_depth=1,
            overload_threshold=2,
            overload_cooldown_ms=1_000.0,
        )
        if listener is not None:
            controller.bind(listener)
        # Fill capacity, then shed twice to open the breaker.
        assert controller.try_admit("t", 0.0).admitted
        assert controller.try_admit("t", 0.0).admitted
        for _ in range(2):
            verdict = controller.try_admit("t", 0.0)
            assert verdict.reason == REASON_QUEUE_FULL
        assert controller.overload_state is BreakerState.OPEN
        return controller

    def test_open_breaker_fast_fails_new_arrivals(self):
        controller = self.make_overloaded()
        verdict = controller.try_admit("t", 100.0)
        assert not verdict.admitted
        assert verdict.reason == REASON_ADMISSION_OPEN

    def test_probe_resolves_against_capacity(self):
        controller = self.make_overloaded()
        # Cooldown elapsed but capacity still full: the probe re-tests
        # capacity, fails, and the breaker re-opens.
        verdict = controller.try_admit("t", 1_500.0)
        assert verdict.reason == REASON_QUEUE_FULL
        assert controller.overload_state is BreakerState.OPEN
        # Free a slot; the next cooldown's probe admits and closes.
        controller.release()
        verdict = controller.try_admit("t", 3_000.0)
        assert verdict.admitted
        assert controller.overload_state is BreakerState.CLOSED

    def test_quota_denial_does_not_strand_the_probe(self):
        controller = self.make_overloaded()
        # Rebind with a metered tenant whose bucket is empty.
        metered = make(
            max_inflight=1,
            max_queue_depth=1,
            overload_threshold=2,
            overload_cooldown_ms=1_000.0,
            quotas={"m": TenantQuota(rate_per_s=0.001, burst=1.0)},
        )
        assert metered.try_admit("m", 0.0).admitted  # burst token
        assert metered.try_admit("x", 0.0).admitted
        for _ in range(2):
            metered.try_admit("x", 0.0)
        assert metered.overload_state is BreakerState.OPEN
        metered.release()
        # Quota is checked before the breaker: the denied arrival must
        # not consume the half-open probe...
        denied = metered.try_admit("m", 2_000.0)
        assert denied.reason == REASON_QUOTA
        # ...so an unmetered arrival still gets the probe and closes.
        assert metered.try_admit("x", 2_000.0).admitted
        assert metered.overload_state is BreakerState.CLOSED

    def test_transitions_reach_the_listener(self):
        listener = Listener()
        self.make_overloaded(listener)
        assert listener.overload == [
            BreakerState.CLOSED,  # initial gauge sync on bind
            BreakerState.OPEN,
        ]


class TestQueue:
    def test_enqueue_then_fifo_dequeue(self):
        controller = make(max_inflight=1, max_queue_depth=4)
        for name in ("a", "b", "c"):
            verdict, evicted = controller.enqueue(name, "t", 0.0)
            assert verdict.admitted and evicted is None
        assert controller.queue_depth == 3
        got, waited, expired = controller.dequeue(250.0)
        assert got.item == "a"
        assert waited == pytest.approx(250.0)
        assert expired == []
        # The slot is taken; nothing dispatches until release.
        assert controller.dequeue(300.0)[0] is None
        controller.release()
        assert controller.dequeue(300.0)[0].item == "b"

    def test_lifo_discipline(self):
        controller = make(
            max_inflight=1, max_queue_depth=4, discipline=DISCIPLINE_LIFO
        )
        for name in ("a", "b", "c"):
            controller.enqueue(name, "t", 0.0)
        assert controller.dequeue(10.0)[0].item == "c"

    def test_full_queue_sheds_reject_new(self):
        controller = make(max_inflight=1, max_queue_depth=2)
        controller.enqueue("a", "t", 0.0)
        controller.enqueue("b", "t", 0.0)
        verdict, evicted = controller.enqueue("c", "t", 0.0)
        assert not verdict.admitted
        assert verdict.reason == REASON_QUEUE_FULL
        assert evicted is None
        assert controller.queue_depth == 2

    def test_shed_cheapest_evicts_cheaper_queued_work(self):
        controller = make(
            max_inflight=1,
            max_queue_depth=2,
            shed_policy=SHED_SHED_CHEAPEST,
        )
        controller.enqueue("cheap", "t", 0.0, cost_hint=1.0)
        controller.enqueue("mid", "t", 0.0, cost_hint=5.0)
        verdict, evicted = controller.enqueue(
            "dear", "t", 0.0, cost_hint=9.0
        )
        assert verdict.admitted
        assert evicted is not None and evicted.item == "cheap"
        items = [controller.dequeue(1.0)[0].item]
        controller.release()
        items.append(controller.dequeue(1.0)[0].item)
        assert items == ["mid", "dear"]

    def test_shed_cheapest_rejects_incoming_when_it_is_cheapest(self):
        controller = make(
            max_inflight=1,
            max_queue_depth=1,
            shed_policy=SHED_SHED_CHEAPEST,
        )
        controller.enqueue("queued", "t", 0.0, cost_hint=5.0)
        verdict, evicted = controller.enqueue(
            "cheap", "t", 0.0, cost_hint=1.0
        )
        assert not verdict.admitted
        assert verdict.reason == REASON_QUEUE_FULL
        assert evicted is None

    def test_deadline_expires_at_dispatch(self):
        controller = make(
            max_inflight=1, max_queue_depth=4, queue_deadline_ms=100.0
        )
        controller.enqueue("old", "t", 0.0)
        controller.enqueue("fresh", "t", 150.0)
        got, waited, expired = controller.dequeue(200.0)
        assert [e.item for e in expired] == ["old"]
        assert got.item == "fresh"
        assert waited == pytest.approx(50.0)
        assert controller.snapshot()["timeouts"] == 1

    def test_degrade_watermark_marks_queued_requests(self):
        controller = make(
            max_inflight=1,
            max_queue_depth=4,
            shed_policy=SHED_DEGRADE_TO_TUNNEL,
            degrade_watermark=0.5,
        )
        for name in ("a", "b", "c", "d"):
            controller.enqueue(name, "t", 0.0)
        # Depth at enqueue time: 0, 1, 2 (watermark), 3.
        queued = []
        while True:
            got, _, _ = controller.dequeue(0.0)
            if got is None:
                break
            queued.append(got)
            controller.release()
        degrades = [q.degrade for q in queued]
        assert degrades == [False, False, True, True]

    def test_queue_full_sheds_feed_the_overload_breaker(self):
        controller = make(
            max_inflight=1,
            max_queue_depth=1,
            overload_threshold=2,
            overload_cooldown_ms=1_000.0,
        )
        controller.enqueue("a", "t", 0.0)
        for _ in range(2):
            controller.enqueue("x", "t", 0.0)
        assert controller.overload_state is BreakerState.OPEN
        verdict, _ = controller.enqueue("y", "t", 500.0)
        assert verdict.reason == REASON_ADMISSION_OPEN


class TestListenerHooks:
    def test_shed_and_depth_hooks(self):
        listener = Listener()
        controller = make(max_inflight=1, max_queue_depth=1)
        controller.bind(listener)
        controller.enqueue("a", "t", 0.0)
        controller.enqueue("b", "t", 0.0)  # full -> shed
        assert listener.sheds == [REASON_QUEUE_FULL]
        assert listener.depths == [1, 1]
        controller.dequeue(40.0)
        assert listener.waits == [pytest.approx(40.0)]
        assert listener.depths == [1, 1, 0]

    def test_quota_hook_names_the_tenant(self):
        listener = Listener()
        controller = make(
            quotas={"m": TenantQuota(rate_per_s=1.0, burst=1.0)}
        )
        controller.bind(listener)
        controller.try_admit("m", 0.0)
        controller.try_admit("m", 0.0)
        assert listener.sheds == [REASON_QUOTA]
        assert listener.quota_denied == ["m"]


class TestSnapshot:
    def test_snapshot_shape(self):
        controller = make(
            quotas={"m": TenantQuota()},
        )
        controller.try_admit("m", 0.0)
        snapshot = controller.snapshot()
        assert snapshot["config"]["tenants"] == ["m"]
        assert snapshot["submitted"] == 1
        assert snapshot["admitted"] == 1
        assert snapshot["overload_state"] == "closed"
        assert snapshot["overload_opens"] == 0


class TestGaugeBackfill:
    """The inflight and quota-token gauges mirror the controller."""

    def test_inflight_hook_tracks_admit_and_release(self):
        controller = make(max_inflight=2)
        listener = Listener()
        controller.bind(listener)
        controller.try_admit("t", 0.0)
        controller.try_admit("t", 0.0)
        controller.release()
        assert listener.inflight[-3:] == [1, 2, 1]

    def test_quota_tokens_hook_fires_on_every_take(self):
        controller = make(
            quotas={"m": TenantQuota(rate_per_s=1.0, burst=2.0)}
        )
        listener = Listener()
        controller.bind(listener)
        controller.try_admit("m", 0.0)
        controller.try_admit("m", 0.0)
        assert listener.quota_tokens == [("m", 1.0), ("m", 0.0)]

    def test_snapshot_reports_quota_tokens(self):
        controller = make(
            quotas={
                "m": TenantQuota(rate_per_s=1.0, burst=2.0),
                "idle": TenantQuota(rate_per_s=1.0, burst=3.0),
            }
        )
        controller.try_admit("m", 0.0)
        snapshot = controller.snapshot()
        assert snapshot["quota_tokens"] == {"idle": 3.0, "m": 1.0}
        assert snapshot["inflight"] == 1
