"""The offline telemetry dashboard renderer and its CLI."""

import json

import pytest

from repro.obs.report import GAP, SPARKS, main, render, sparkline


def timeseries_doc(samples=None, health=None):
    doc = {
        "enabled": True,
        "clock": "sim-ms",
        "interval_ms": 1_000.0,
        "capacity": 8,
        "lanes": {
            "rates": ["throughput_qps"],
            "gauges": ["queue_depth"],
            "quantiles": ["response_ms"],
        },
        "samples": samples if samples is not None else [
            {
                "t_ms": float(step * 1_000),
                "rates": {"throughput_qps": float(step)},
                "gauges": {"queue_depth": 0.0},
                "quantiles": {
                    "response_ms": {"p50": 10.0, "p95": None}
                },
            }
            for step in range(1, 4)
        ],
    }
    if health is not None:
        doc["health"] = health
    return doc


def events_doc():
    return {
        "enabled": True,
        "clock": "sim-ms",
        "capacity": 4,
        "total": 5,
        "counts": {"EV01": 5},
        "events": [
            {"code": "EV01", "name": "breaker-open", "at_ms": 1_000.0,
             "payload": {"failures": 5}},
        ],
    }


class TestSparkline:
    def test_scales_to_the_full_alphabet(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == SPARKS[0]
        assert line[-1] == SPARKS[-1]
        assert len(line) == 4

    def test_missing_points_render_as_gaps(self):
        assert sparkline([None, 1.0, None]) == f"{GAP}{SPARKS[0]}{GAP}"
        assert sparkline([None, None]) == GAP * 2

    def test_flat_series_uses_the_lowest_glyph(self):
        assert sparkline([5.0, 5.0]) == SPARKS[0] * 2


class TestRender:
    def test_all_sections_present(self):
        text = render(timeseries_doc(), events_doc())
        assert "Time series" in text
        assert "throughput_qps (rate)" in text
        assert "queue_depth (gauge)" in text
        assert "response_ms p50" in text
        assert "Health" in text
        assert "Event timeline" in text
        assert "EV01  breaker-open" in text
        assert "failures=5" in text

    def test_health_reevaluated_offline_when_not_embedded(self):
        text = render(timeseries_doc())
        # evaluate_samples runs over the samples: all five rules show.
        assert "verdict: healthy" in text
        for rule_id in ("HR01", "HR02", "HR03", "HR04", "HR05"):
            assert rule_id in text

    def test_embedded_health_wins(self):
        health = {
            "status": "degraded",
            "windows": 3,
            "rules": [
                {"id": "HR05", "name": "breaker-open",
                 "status": "degraded", "detail": "origin breaker open"},
            ],
        }
        text = render(timeseries_doc(health=health))
        assert "verdict: degraded" in text

    def test_empty_inputs(self):
        assert render(None, None) == "nothing to render (no artifacts given)\n"
        assert "(no samples)" in render(timeseries_doc(samples=[]))

    def test_markdown_tables(self):
        text = render(timeseries_doc(), events_doc(), markdown=True)
        assert "## Time series" in text
        assert "| lane | trend | summary |" in text
        assert "| t_ms | code | event | details |" in text
        assert "| rule | name | status | detail |" in text


class TestMain:
    def test_renders_artifacts_from_disk(self, tmp_path, capsys):
        series_path = tmp_path / "timeseries-run.json"
        events_path = tmp_path / "events-run.json"
        series_path.write_text(json.dumps(timeseries_doc()))
        events_path.write_text(json.dumps(events_doc()))
        assert main([
            "--timeseries", str(series_path),
            "--events", str(events_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Time series" in out
        assert "Event timeline" in out

    def test_events_only(self, tmp_path, capsys):
        events_path = tmp_path / "events-run.json"
        events_path.write_text(json.dumps(events_doc()))
        assert main(["--events", str(events_path)]) == 0
        out = capsys.readouterr().out
        assert "Event timeline" in out
        assert "Time series" not in out

    def test_offline_rule_config_flags(self, tmp_path, capsys):
        saturated = timeseries_doc(samples=[
            {
                "t_ms": float(step * 1_000),
                "rates": {"throughput_qps": 1.0},
                "gauges": {"queue_depth": 10.0},
                "quantiles": {"response_ms": {"p50": None, "p95": None}},
            }
            for step in range(3)
        ])
        series_path = tmp_path / "timeseries-run.json"
        series_path.write_text(json.dumps(saturated))
        main(["--timeseries", str(series_path), "--queue-limit", "10"])
        assert "verdict: unhealthy" in capsys.readouterr().out

    def test_no_artifacts_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_non_object_artifact_is_rejected(self, tmp_path):
        bad = tmp_path / "timeseries-bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(SystemExit):
            main(["--timeseries", str(bad)])
