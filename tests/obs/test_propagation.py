"""W3C traceparent propagation: formatting, parsing, id generation."""

import pytest

from repro.obs.propagation import IdGenerator, TraceContext, parse_traceparent
from repro.obs.spans import SpanTracer

TRACE = "0af7651916cd43dd8448eb211c80319c"
SPAN = "b7ad6b7169203331"


class TestTraceContext:
    def test_to_traceparent_sampled(self):
        context = TraceContext(trace_id=TRACE, span_id=SPAN)
        assert context.to_traceparent() == f"00-{TRACE}-{SPAN}-01"

    def test_to_traceparent_unsampled(self):
        context = TraceContext(trace_id=TRACE, span_id=SPAN, sampled=False)
        assert context.to_traceparent() == f"00-{TRACE}-{SPAN}-00"

    def test_round_trip(self):
        context = TraceContext(trace_id=TRACE, span_id=SPAN)
        parsed = parse_traceparent(context.to_traceparent())
        assert parsed == context


class TestParseTraceparent:
    def test_valid_header(self):
        parsed = parse_traceparent(f"00-{TRACE}-{SPAN}-01")
        assert parsed is not None
        assert parsed.trace_id == TRACE
        assert parsed.span_id == SPAN
        assert parsed.sampled

    def test_unsampled_flags(self):
        parsed = parse_traceparent(f"00-{TRACE}-{SPAN}-00")
        assert parsed is not None
        assert not parsed.sampled

    def test_future_version_accepted(self):
        assert parse_traceparent(f"01-{TRACE}-{SPAN}-01") is not None

    def test_uppercase_hex_normalized(self):
        # Forgiving parse: uppercase hex is lowered, not rejected.
        parsed = parse_traceparent(f"00-{TRACE.upper()}-{SPAN}-01")
        assert parsed is not None
        assert parsed.trace_id == TRACE

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            f"00-{TRACE}-{SPAN}",  # missing flags
            f"00-{TRACE}-{SPAN}-01-extra",
            f"00-{TRACE[:-1]}-{SPAN}-01",  # short trace id
            f"00-{TRACE}-{SPAN[:-1]}-01",  # short span id
            f"00-{TRACE[:-1]}g-{SPAN}-01",  # non-hex
            f"ff-{TRACE}-{SPAN}-01",  # version ff reserved
            f"00-{'0' * 32}-{SPAN}-01",  # all-zero trace id
            f"00-{TRACE}-{'0' * 16}-01",  # all-zero span id
        ],
    )
    def test_malformed_headers_yield_none(self, header):
        assert parse_traceparent(header) is None


class TestIdGenerator:
    def test_shapes(self):
        ids = IdGenerator(seed=1)
        trace_id = ids.trace_id()
        span_id = ids.span_id()
        assert len(trace_id) == 32 and int(trace_id, 16) != 0
        assert len(span_id) == 16 and int(span_id, 16) != 0

    def test_seeded_generators_are_deterministic(self):
        a, b = IdGenerator(seed=7), IdGenerator(seed=7)
        assert [a.trace_id() for _ in range(3)] == [
            b.trace_id() for _ in range(3)
        ]
        assert a.span_id() == b.span_id()

    def test_different_seeds_diverge(self):
        assert IdGenerator(seed=1).trace_id() != IdGenerator(seed=2).trace_id()


class TestTracerPropagation:
    def test_spans_carry_ids(self):
        tracer = SpanTracer(ids=IdGenerator(seed=3))
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                assert child.trace_id == parent.trace_id
                assert child.parent_id == parent.span_id
        assert parent.parent_id is None

    def test_current_traceparent_inside_span(self):
        tracer = SpanTracer(ids=IdGenerator(seed=3))
        assert tracer.current_traceparent() is None
        with tracer.span("serve") as span:
            header = tracer.current_traceparent()
            parsed = parse_traceparent(header)
            assert parsed is not None
            assert parsed.trace_id == span.trace_id
            assert parsed.span_id == span.span_id
        assert tracer.current_traceparent() is None

    def test_remote_context_adopts_incoming_trace(self):
        tracer = SpanTracer(ids=IdGenerator(seed=3))
        incoming = TraceContext(trace_id=TRACE, span_id=SPAN)
        with tracer.remote_context(incoming):
            with tracer.span("execute") as span:
                assert span.trace_id == TRACE
                assert span.parent_id == SPAN
        # Outside the context the tracer is back to minting fresh traces.
        with tracer.span("later") as span:
            assert span.trace_id != TRACE

    def test_remote_context_none_is_a_noop(self):
        tracer = SpanTracer(ids=IdGenerator(seed=3))
        with tracer.remote_context(None):
            with tracer.span("execute") as span:
                assert span.trace_id != TRACE
                assert span.parent_id is None

    def test_export_includes_ids(self):
        tracer = SpanTracer(ids=IdGenerator(seed=3))
        with tracer.span("serve"):
            with tracer.span("check"):
                pass
        [root] = tracer.recent(1)
        assert set(root) >= {"trace_id", "span_id"}
        assert "parent_id" not in root  # roots omit the absent parent
        [child] = root["children"]
        assert child["parent_id"] == root["span_id"]
        assert child["trace_id"] == root["trace_id"]
