"""Span tracer: nesting, ordering, ring buffer, JSONL, null mode."""

import json

import pytest

from repro.obs.spans import NULL_SPAN, NullTracer, SpanTracer


class FakeClock:
    """A deterministic perf_counter: advances a fixed step per call."""

    def __init__(self, step_s: float = 0.001) -> None:
        self.now = 0.0
        self.step = step_s

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestSpanTracer:
    def test_nesting_and_ordering(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("query", index=1):
            with tracer.span("check"):
                with tracer.span("relate"):
                    pass
            with tracer.span("origin"):
                pass
        [root] = tracer.recent()
        assert root["name"] == "query"
        assert root["attrs"] == {"index": 1}
        children = [child["name"] for child in root["children"]]
        assert children == ["check", "origin"]
        assert root["children"][0]["children"][0]["name"] == "relate"

    def test_wall_clock_measured(self):
        tracer = SpanTracer(clock=FakeClock(step_s=0.001))
        with tracer.span("work"):
            pass
        [root] = tracer.recent()
        # One clock call on enter, one on exit: exactly one step = 1 ms.
        assert root["wall_ms"] == pytest.approx(1.0)

    def test_charge_accumulates_simulated_ms(self):
        tracer = SpanTracer()
        with tracer.span("origin") as span:
            span.charge(100.0)
            span.charge(50.0)
        [root] = tracer.recent()
        assert root["sim_ms"] == pytest.approx(150.0)

    def test_event_is_a_zero_duration_child(self):
        tracer = SpanTracer(clock=FakeClock(step_s=0.0))
        with tracer.span("query"):
            tracer.event("parse", sim_ms=2.0)
        [root] = tracer.recent()
        [child] = root["children"]
        assert child["name"] == "parse"
        assert child["sim_ms"] == 2.0
        assert child["wall_ms"] == 0.0

    def test_exception_annotates_and_unwinds(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("query"):
                with tracer.span("origin"):
                    raise RuntimeError("origin down")
        [root] = tracer.recent()
        assert root["attrs"]["error"] == "RuntimeError"
        assert root["children"][0]["attrs"]["error"] == "RuntimeError"

    def test_ring_buffer_keeps_most_recent(self):
        tracer = SpanTracer(capacity=3)
        for i in range(10):
            with tracer.span("query", index=i):
                pass
        roots = tracer.recent()
        assert [r["attrs"]["index"] for r in roots] == [7, 8, 9]
        assert [r["attrs"]["index"] for r in tracer.recent(2)] == [8, 9]

    def test_recent_nonpositive_limits_yield_nothing(self):
        tracer = SpanTracer()
        with tracer.span("query"):
            pass
        assert tracer.recent(0) == []
        assert tracer.recent(-5) == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)

    def test_jsonl_export_round_trips(self, tmp_path):
        tracer = SpanTracer()
        for i in range(3):
            with tracer.span("query", index=i):
                with tracer.span("check"):
                    pass
        lines = tracer.export_jsonl().splitlines()
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert [p["attrs"]["index"] for p in parsed] == [0, 1, 2]

        path = tmp_path / "trace.spans.jsonl"
        assert tracer.write_jsonl(path) == 3
        assert tracer.write_jsonl(path) == 3  # appends
        assert len(path.read_text().splitlines()) == 6

    def test_clear(self):
        tracer = SpanTracer()
        with tracer.span("query"):
            pass
        tracer.clear()
        assert tracer.recent() == []


class TestNullTracer:
    def test_emits_nothing_and_adds_no_spans(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("query", index=1) as span:
            span.charge(10.0).annotate(status="exact")
            with tracer.span("check"):
                tracer.event("parse", sim_ms=2.0)
        assert tracer.spans_started == 0
        assert tracer.recent() == []
        assert tracer.export_jsonl() == ""
        assert list(tracer.iter_jsonl()) == []

    def test_hands_out_the_shared_singleton(self):
        tracer = NullTracer()
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b") is NULL_SPAN

    def test_write_jsonl_writes_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert NullTracer().write_jsonl(path) == 0
        assert not path.exists()
