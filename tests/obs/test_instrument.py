"""Instrumentation threaded through proxy, cache, origin, network."""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.harness.config import ExperimentScale
from repro.harness.runner import ExperimentRunner
from repro.obs import (
    MetricsRegistry,
    OriginInstrumentation,
    ProxyInstrumentation,
    SpanTracer,
)


def build_proxy(origin, tracer=None, **kwargs):
    obs = ProxyInstrumentation(tracer=tracer)
    return FunctionProxy(
        origin, origin.templates, instrumentation=obs, **kwargs
    )


def serve(proxy, templates, params):
    return proxy.serve(templates.bind("skyserver.radial", params))


class TestTracedProxy:
    def test_query_lifecycle_spans_nest(self, origin, radial_params):
        proxy = build_proxy(origin, tracer=SpanTracer())
        serve(proxy, origin.templates, radial_params)  # disjoint
        serve(proxy, origin.templates, radial_params)  # exact
        serve(
            proxy,
            origin.templates,
            dict(radial_params, radius=4.0),
        )  # contained

        disjoint, exact, contained = proxy.tracer.recent()
        names = [c["name"] for c in disjoint["children"]]
        assert names == ["parse", "check", "origin", "transfer",
                         "maintenance"]
        assert disjoint["attrs"]["status"] == "disjoint"
        # The relation check nests inside the description check.
        check = disjoint["children"][1]
        assert [c["name"] for c in check["children"]] == ["relate"]

        assert [c["name"] for c in exact["children"]] == ["parse", "read"]
        assert exact["attrs"]["status"] == "exact"
        assert contained["attrs"]["status"] == "contained"
        assert "local_eval" in [c["name"] for c in contained["children"]]

    def test_span_sim_charges_match_record_steps(self, origin,
                                                 radial_params):
        proxy = build_proxy(origin, tracer=SpanTracer())
        response = serve(proxy, origin.templates, radial_params)
        [root] = proxy.tracer.recent()
        by_name: dict[str, float] = {}
        for child in root["children"]:
            by_name[child["name"]] = (
                by_name.get(child["name"], 0.0) + child["sim_ms"]
            )
        for step, sim_ms in response.record.steps_ms.items():
            # Span dicts round sim_ms to 6 decimals for JSONL export.
            assert by_name[step] == pytest.approx(sim_ms, abs=1e-5), step

    def test_serve_form_emits_bind_span(self, origin):
        proxy = build_proxy(origin, tracer=SpanTracer())
        proxy.serve_form(
            "Radial", {"ra": "164", "dec": "8", "radius": "10"}
        )
        names = [root["name"] for root in proxy.tracer.recent()]
        assert names == ["bind", "query"]


class TestNullModeProxy:
    def test_default_proxy_traces_nothing(self, origin, radial_params):
        proxy = FunctionProxy(origin, origin.templates)
        assert not proxy.tracer.enabled
        serve(proxy, origin.templates, radial_params)
        serve(proxy, origin.templates, radial_params)
        assert proxy.tracer.spans_started == 0
        assert proxy.tracer.recent() == []
        assert proxy.tracer.export_jsonl() == ""

    def test_null_mode_still_measures_check_wall(self, origin,
                                                 radial_params):
        proxy = FunctionProxy(origin, origin.templates)
        serve(proxy, origin.templates, radial_params)
        record = serve(
            proxy, origin.templates, dict(radial_params, radius=4.0)
        ).record
        assert "check" in record.steps_ms
        assert record.check_wall_ms > 0.0

    def test_null_mode_still_counts_metrics(self, origin, radial_params):
        proxy = FunctionProxy(origin, origin.templates)
        serve(proxy, origin.templates, radial_params)
        serve(proxy, origin.templates, radial_params)
        exposition = proxy.metrics.exposition()
        assert (
            'proxy_queries_total{status="exact",'
            'template="skyserver.radial"} 1' in exposition
        )
        assert (
            'proxy_queries_total{status="disjoint",'
            'template="skyserver.radial"} 1' in exposition
        )


class TestProxyMetrics:
    def test_cache_occupancy_gauges_track_manager(self, origin,
                                                  radial_params):
        proxy = build_proxy(origin)
        serve(proxy, origin.templates, radial_params)
        serve(
            proxy, origin.templates, dict(radial_params, ra=166.0)
        )
        assert proxy.obs.cache_bytes.value == proxy.cache.current_bytes
        assert proxy.obs.cache_entries.value == len(proxy.cache)
        assert proxy.obs.cache_insertions.value == proxy.cache.insertions

    def test_eviction_counter(self, origin, radial_params):
        proxy = build_proxy(origin, cache_bytes=2_000)
        for ra in (161.0, 163.0, 165.0, 167.0):
            serve(proxy, origin.templates, dict(radial_params, ra=ra,
                                                radius=6.0))
        assert proxy.cache.evictions > 0
        assert proxy.obs.cache_evictions.value == proxy.cache.evictions

    def test_invalidation_counter(self, origin, radial_params):
        proxy = build_proxy(origin)
        serve(proxy, origin.templates, radial_params)
        origin.bump_data_version()
        try:
            serve(proxy, origin.templates, radial_params)
        finally:
            origin.data_version = 1
            origin.instrumentation.data_version.set(1)
        assert proxy.invalidations == 1
        assert proxy.obs.cache_invalidations.value == 1

    def test_origin_and_network_accounting(self, origin, radial_params):
        proxy = build_proxy(origin)
        record = serve(proxy, origin.templates, radial_params).record
        assert record.contacted_origin
        assert proxy.obs.origin_requests.value == 1
        assert proxy.obs.origin_bytes.value == record.origin_bytes
        hop = proxy.obs.transfer_bytes.labels(hop="origin")
        assert hop.value == record.origin_bytes + proxy.topology.request_bytes

    def test_step_histogram_covers_all_steps(self, origin, radial_params):
        proxy = build_proxy(origin)
        record = serve(proxy, origin.templates, radial_params).record
        for step in record.steps_ms:
            assert proxy.obs.step_ms.labels(step=step).count == 1

    def test_check_wall_histogram_only_for_checked_queries(
        self, origin, radial_params
    ):
        proxy = build_proxy(origin)
        serve(proxy, origin.templates, radial_params)  # disjoint: checked
        serve(proxy, origin.templates, radial_params)  # exact: no check
        assert proxy.obs.check_wall_ms.total_count == 1


class TestOriginInstrumentation:
    def test_request_kinds_counted(self, origin, radial_params):
        before = origin.instrumentation.requests.labels(kind="form").value
        origin.execute_form(
            "Radial", {"ra": "164", "dec": "8", "radius": "5"}
        )
        after = origin.instrumentation.requests.labels(kind="form").value
        assert after == before + 1

    def test_origin_spans_when_traced(self):
        from repro.server.origin import OriginServer
        from repro.skydata.generator import SkyCatalogConfig

        traced = OriginServer.skyserver(
            SkyCatalogConfig(
                n_objects=500, ra_min=160.0, ra_max=168.0,
                dec_min=5.0, dec_max=11.0, seed=7,
            )
        )
        traced.instrumentation = OriginInstrumentation(tracer=SpanTracer())
        traced.execute_sql("SELECT TOP 2 objID FROM PhotoPrimary")
        [root] = traced.instrumentation.tracer.recent()
        assert root["name"] == "origin.sql"
        assert root["attrs"]["rows"] == 2


class TestSharedRegistry:
    def test_proxy_and_origin_can_share_one_registry(self, origin,
                                                     radial_params):
        registry = MetricsRegistry()
        obs = ProxyInstrumentation(registry=registry)
        # Registering origin families alongside proxy families works
        # because the name spaces are disjoint.
        OriginInstrumentation(registry=registry)
        proxy = FunctionProxy(
            origin, origin.templates, instrumentation=obs
        )
        serve(proxy, origin.templates, radial_params)
        exposition = registry.exposition()
        assert "proxy_queries_total" in exposition
        assert "origin_requests_total" in exposition


class TestRunnerSnapshots:
    def test_run_result_carries_and_writes_snapshot(self, tmp_path):
        scale = ExperimentScale.quick().with_trace_length(30)
        runner = ExperimentRunner(scale, snapshot_dir=tmp_path)
        result = runner.run(
            CachingScheme.FULL_SEMANTIC, "array", cache_fraction=None
        )
        snapshot = result.metrics_snapshot
        assert snapshot["proxy_queries_total"]["type"] == "counter"
        total = sum(snapshot["proxy_queries_total"]["values"].values())
        assert total == len(result.stats)

        path = tmp_path / f"metrics-{result.label()}.json"
        assert path.exists()
        import json

        on_disk = json.loads(path.read_text())
        assert on_disk == snapshot
