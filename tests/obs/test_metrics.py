"""Metrics registry: instruments, bucket edges, exposition format."""

import json
import re

import pytest

from repro.obs.metrics import (
    MetricError,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc(self, registry):
        counter = registry.counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_labels_create_children(self, registry):
        counter = registry.counter("queries_total", "", ("status",))
        counter.labels(status="exact").inc()
        counter.labels(status="exact").inc()
        counter.labels(status="overlap").inc()
        assert counter.labels(status="exact").value == 2
        assert counter.labels(status="overlap").value == 1

    def test_negative_inc_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("c_total").inc(-1)

    def test_unlabeled_use_of_labeled_family_rejected(self, registry):
        counter = registry.counter("c_total", "", ("status",))
        with pytest.raises(MetricError):
            counter.inc()

    def test_wrong_label_names_rejected(self, registry):
        counter = registry.counter("c_total", "", ("status",))
        with pytest.raises(MetricError):
            counter.labels(nope="x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("occupancy_bytes", "Bytes.")
        gauge.set(100)
        gauge.inc(20)
        gauge.dec(50)
        assert gauge.value == pytest.approx(70.0)


class TestHistogramBuckets:
    def test_edge_values_are_inclusive(self, registry):
        histogram = registry.histogram("ms", "", buckets=(1.0, 5.0, 10.0))
        for value in (1.0, 5.0, 10.0):  # exactly on each edge
            histogram.observe(value)
        child = histogram.labels()
        assert child.counts == [1, 1, 1, 0]  # le semantics: v <= bound
        assert child.cumulative() == [1, 2, 3, 3]

    def test_overflow_lands_in_inf(self, registry):
        histogram = registry.histogram("ms", "", buckets=(1.0, 5.0))
        histogram.observe(5.0001)
        histogram.observe(99.0)
        assert histogram.labels().counts == [0, 0, 2]

    def test_sum_and_count(self, registry):
        histogram = registry.histogram("ms", "", buckets=(10.0,))
        histogram.observe(2.0)
        histogram.observe(30.0)
        child = histogram.labels()
        assert child.count == 2
        assert child.sum == pytest.approx(32.0)

    def test_buckets_sorted_and_deduped(self, registry):
        histogram = registry.histogram(
            "ms", "", buckets=(10.0, 1.0, float("inf"))
        )
        assert histogram.buckets == (1.0, 10.0)  # +Inf is implicit
        with pytest.raises(MetricError):
            registry.histogram("dupes", "", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("empty", "", buckets=())


class TestRegistry:
    def test_reregistration_returns_same_family(self, registry):
        first = registry.counter("c_total", "Help.", ("a",))
        second = registry.counter("c_total", "Help.", ("a",))
        assert first is second

    def test_type_conflict_rejected(self, registry):
        registry.counter("c_total")
        with pytest.raises(MetricError):
            registry.gauge("c_total")

    def test_label_conflict_rejected(self, registry):
        registry.counter("c_total", "", ("a",))
        with pytest.raises(MetricError):
            registry.counter("c_total", "", ("b",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("2bad")
        with pytest.raises(MetricError):
            registry.counter("ok_total", "", ("bad-label",))

    def test_snapshot_is_json_able(self, registry):
        registry.counter("c_total", "C.", ("k",)).labels(k="v").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h_ms", "", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["c_total"]["values"]['{k="v"}'] == 3
        assert snapshot["g"]["values"][""] == 1.5
        assert snapshot["h_ms"]["values"][""]["buckets"] == {
            "1": 1, "+Inf": 1
        }


SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? -?[0-9.+eEInf]+$"
)


class TestExposition:
    def test_full_format(self, registry):
        queries = registry.counter(
            "proxy_queries_total", "Queries by status.", ("status",)
        )
        queries.labels(status="exact").inc(3)
        registry.gauge("proxy_cache_bytes", "Occupancy.").set(2048)
        histogram = registry.histogram(
            "proxy_step_sim_ms", "Step latency.", ("step",), buckets=(1.0, 5.0)
        )
        histogram.labels(step="check").observe(0.5)
        histogram.labels(step="check").observe(7.0)

        text = registry.exposition()
        lines = text.splitlines()
        assert text.endswith("\n")
        assert "# HELP proxy_queries_total Queries by status." in lines
        assert "# TYPE proxy_queries_total counter" in lines
        assert 'proxy_queries_total{status="exact"} 3' in lines
        assert "# TYPE proxy_cache_bytes gauge" in lines
        assert "proxy_cache_bytes 2048" in lines
        assert "# TYPE proxy_step_sim_ms histogram" in lines
        assert 'proxy_step_sim_ms_bucket{step="check",le="1"} 1' in lines
        assert 'proxy_step_sim_ms_bucket{step="check",le="5"} 1' in lines
        assert 'proxy_step_sim_ms_bucket{step="check",le="+Inf"} 2' in lines
        assert 'proxy_step_sim_ms_sum{step="check"} 7.5' in lines
        assert 'proxy_step_sim_ms_count{step="check"} 2' in lines

        # Every non-comment line must parse as a valid sample.
        for line in lines:
            if not line.startswith("#"):
                assert SAMPLE_LINE.match(line), line

    def test_label_values_escaped(self, registry):
        counter = registry.counter("c_total", "", ("q",))
        counter.labels(q='say "hi"\n\\end').inc()
        [line] = [
            ln for ln in registry.exposition().splitlines()
            if not ln.startswith("#")
        ]
        assert line == 'c_total{q="say \\"hi\\"\\n\\\\end"} 1'

    def test_empty_registry_renders_empty(self, registry):
        assert registry.exposition() == ""

    def test_empty_registry_renders_empty_with_exemplars(self, registry):
        assert registry.exposition(exemplars=True) == ""

    def test_content_type_constant(self):
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")


class TestExpositionEdgeCases:
    """Text-exposition corners: escaping, non-finite values, exemplars."""

    def _sample_lines(self, registry, **kwargs):
        return [
            line
            for line in registry.exposition(**kwargs).splitlines()
            if not line.startswith("#")
        ]

    def test_backslash_escaped(self, registry):
        registry.counter("c_total", "", ("path",)).labels(
            path="a\\b"
        ).inc()
        [line] = self._sample_lines(registry)
        assert line == 'c_total{path="a\\\\b"} 1'

    def test_newline_escaped(self, registry):
        registry.counter("c_total", "", ("q",)).labels(q="a\nb").inc()
        [line] = self._sample_lines(registry)
        assert line == 'c_total{q="a\\nb"} 1'
        assert "\n" not in line

    def test_quote_escaped(self, registry):
        registry.counter("c_total", "", ("q",)).labels(q='a"b').inc()
        [line] = self._sample_lines(registry)
        assert line == 'c_total{q="a\\"b"} 1'

    def test_positive_infinity_value(self, registry):
        registry.gauge("g", "").set(float("inf"))
        [line] = self._sample_lines(registry)
        assert line == "g +Inf"

    def test_negative_infinity_value(self, registry):
        registry.gauge("g", "").set(float("-inf"))
        [line] = self._sample_lines(registry)
        assert line == "g -Inf"

    def test_nan_value(self, registry):
        registry.gauge("g", "").set(float("nan"))
        [line] = self._sample_lines(registry)
        assert line == "g NaN"

    def test_histogram_exemplars_off_by_default(self, registry):
        histogram = registry.histogram("h_ms", "", buckets=(1.0,))
        histogram.observe(0.5, trace_id="0af7651916cd43dd8448eb211c80319c")
        text = registry.exposition()
        assert "trace_id" not in text
        for line in text.splitlines():
            if not line.startswith("#"):
                assert SAMPLE_LINE.match(line), line

    def test_histogram_exemplars_opt_in(self, registry):
        histogram = registry.histogram("h_ms", "", buckets=(1.0, 5.0))
        histogram.observe(0.5, trace_id="0af7651916cd43dd8448eb211c80319c")
        histogram.observe(3.0)
        lines = self._sample_lines(registry, exemplars=True)
        [bucket_1] = [ln for ln in lines if 'le="1"' in ln]
        assert bucket_1 == (
            'h_ms_bucket{le="1"} 1 '
            '# {trace_id="0af7651916cd43dd8448eb211c80319c"} 0.5'
        )
        # Buckets without a recorded exemplar stay plain samples.
        [bucket_5] = [ln for ln in lines if 'le="5"' in ln]
        assert bucket_5 == 'h_ms_bucket{le="5"} 2'

    def test_exemplar_keeps_latest_observation(self, registry):
        histogram = registry.histogram("h_ms", "", buckets=(10.0,))
        histogram.observe(1.0, trace_id="a" * 32)
        histogram.observe(2.0, trace_id="b" * 32)
        [bucket] = [
            ln
            for ln in self._sample_lines(registry, exemplars=True)
            if 'le="10"' in ln
        ]
        assert f'trace_id="{"b" * 32}"' in bucket
        assert bucket.endswith("} 2")

    def test_exemplars_survive_snapshot(self, registry):
        histogram = registry.histogram("h_ms", "", buckets=(1.0,))
        histogram.observe(0.5, trace_id="c" * 32)
        snapshot = registry.snapshot()
        exemplars = snapshot["h_ms"]["values"][""]["exemplars"]
        assert exemplars == {"1": {"value": 0.5, "trace_id": "c" * 32}}
        json.dumps(snapshot)
