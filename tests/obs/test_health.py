"""The health rules over synthetic samples, and EV11 on flips."""

from repro.obs.events import EventRecorder
from repro.obs.health import (
    DEGRADED,
    HEALTH_RULES,
    HEALTHY,
    NULL_HEALTH,
    HealthMonitor,
    NullHealthMonitor,
    UNHEALTHY,
    evaluate_samples,
    strictest_latency_objective,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloObjective, SloTracker


def sample(
    t_ms=0.0,
    throughput=10.0,
    origin=1.0,
    shed=0.0,
    queue=0.0,
    breaker=0.0,
    p95=None,
):
    return {
        "t_ms": t_ms,
        "rates": {
            "throughput_qps": throughput,
            "origin_per_s": origin,
            "shed_per_s": shed,
        },
        "gauges": {"queue_depth": queue, "breaker_state": breaker},
        "quantiles": {"response_ms": {"p50": p95, "p95": p95}},
    }


def rule(report, rule_id):
    (match,) = [r for r in report["rules"] if r["id"] == rule_id]
    return match


class TestRegistryGolden:
    def test_rule_ids_are_pinned(self):
        assert dict(HEALTH_RULES) == {
            "HR01": "hit-ratio-collapse",
            "HR02": "shed-spike",
            "HR03": "latency-slo",
            "HR04": "queue-saturation",
            "HR05": "breaker-open",
            "HR06": "shard-down",
        }


class TestHitRatioCollapse:
    def baseline(self, n=4):
        # hit ratio 0.9 per window (origin 1 of throughput 10).
        return [sample(t_ms=i * 1_000.0) for i in range(n)]

    def test_insufficient_windows_is_healthy(self):
        report = evaluate_samples(self.baseline(3))
        assert rule(report, "HR01")["status"] == HEALTHY

    def test_collapse_to_half_is_degraded(self):
        samples = self.baseline() + [sample(origin=6.0)]  # ratio 0.4
        report = evaluate_samples(samples)
        assert rule(report, "HR01")["status"] == DEGRADED

    def test_collapse_to_quarter_is_unhealthy(self):
        samples = self.baseline() + [sample(origin=9.0)]  # ratio 0.1
        report = evaluate_samples(samples)
        assert rule(report, "HR01")["status"] == UNHEALTHY
        assert report["status"] == UNHEALTHY

    def test_cold_cache_baseline_is_not_judged(self):
        # Baseline hit ratio 0.1 sits below the judgment floor: a
        # cache that never hit has no ratio to lose.
        samples = [sample(origin=9.0) for _ in range(5)]
        report = evaluate_samples(samples)
        assert rule(report, "HR01")["status"] == HEALTHY

    def test_idle_windows_do_not_dilute_the_baseline(self):
        samples = self.baseline() + [sample(throughput=0.0, origin=0.0)]
        report = evaluate_samples(samples)
        assert rule(report, "HR01")["status"] == HEALTHY


class TestShedSpike:
    def test_only_the_newest_window_is_judged(self):
        samples = [sample(shed=9.0, throughput=1.0), sample()]
        report = evaluate_samples(samples)
        assert rule(report, "HR02")["status"] == HEALTHY

    def test_thresholds(self):
        mild = evaluate_samples([sample(shed=2.0, throughput=8.0)])
        assert rule(mild, "HR02")["status"] == DEGRADED
        severe = evaluate_samples([sample(shed=5.0, throughput=5.0)])
        assert rule(severe, "HR02")["status"] == UNHEALTHY


class TestLatencySlo:
    def test_inactive_without_an_objective(self):
        report = evaluate_samples([sample(p95=9_999.0)])
        assert rule(report, "HR03")["status"] == HEALTHY

    def test_empty_window_is_not_a_violation(self):
        report = evaluate_samples([sample(p95=None)], latency_slo_ms=100.0)
        assert rule(report, "HR03")["status"] == HEALTHY

    def test_thresholds(self):
        over = evaluate_samples([sample(p95=150.0)], latency_slo_ms=100.0)
        assert rule(over, "HR03")["status"] == DEGRADED
        far_over = evaluate_samples(
            [sample(p95=250.0)], latency_slo_ms=100.0
        )
        assert rule(far_over, "HR03")["status"] == UNHEALTHY


class TestQueueSaturation:
    def test_inactive_without_a_limit(self):
        report = evaluate_samples([sample(queue=100.0)] * 5)
        assert rule(report, "HR04")["status"] == HEALTHY

    def test_three_consecutive_near_limit_windows_degrade(self):
        samples = [sample(queue=9.0)] * 3
        report = evaluate_samples(samples, queue_limit=10)
        assert rule(report, "HR04")["status"] == DEGRADED

    def test_pinned_at_the_limit_is_unhealthy(self):
        report = evaluate_samples([sample(queue=10.0)] * 3, queue_limit=10)
        assert rule(report, "HR04")["status"] == UNHEALTHY

    def test_one_dip_resets_the_streak(self):
        samples = [sample(queue=10.0), sample(queue=0.0), sample(queue=10.0)]
        report = evaluate_samples(samples, queue_limit=10)
        assert rule(report, "HR04")["status"] == HEALTHY


class TestBreakerOpen:
    def test_open_and_half_open_degrade(self):
        for state in (1.0, 2.0):
            report = evaluate_samples([sample(breaker=state)])
            assert rule(report, "HR05")["status"] == DEGRADED

    def test_closed_is_healthy(self):
        report = evaluate_samples([sample(breaker=0.0)])
        assert rule(report, "HR05")["status"] == HEALTHY

    def test_worst_rule_wins_overall(self):
        report = evaluate_samples([sample(breaker=2.0)])
        assert report["status"] == DEGRADED
        assert report["windows"] == 1


class TestShardDown:
    def test_inactive_without_a_shard_tier(self):
        report = evaluate_samples([sample()])
        assert rule(report, "HR06")["status"] == HEALTHY

    def test_all_shards_up_is_healthy(self):
        report = evaluate_samples([sample()], shards_down=0, shards_total=4)
        assert rule(report, "HR06")["status"] == HEALTHY

    def test_one_shard_down_degrades(self):
        report = evaluate_samples([sample()], shards_down=1, shards_total=4)
        assert rule(report, "HR06")["status"] == DEGRADED
        assert report["status"] == DEGRADED

    def test_every_shard_down_is_unhealthy(self):
        report = evaluate_samples([sample()], shards_down=4, shards_total=4)
        assert rule(report, "HR06")["status"] == UNHEALTHY


class TestStrictestLatencyObjective:
    def test_none_without_per_template_overrides(self):
        assert strictest_latency_objective(None) is None
        tracker = SloTracker(MetricsRegistry())
        # The blanket default objective exists on every proxy and
        # must not activate HR03 by itself.
        assert strictest_latency_objective(tracker) is None

    def test_minimum_override_wins(self):
        tracker = SloTracker(
            MetricsRegistry(),
            overrides={
                "a": SloObjective(latency_objective_ms=500.0),
                "b": SloObjective(latency_objective_ms=200.0),
            },
        )
        assert strictest_latency_objective(tracker) == 200.0


class FixedSeries:
    def __init__(self, samples):
        self._samples = samples

    def samples(self):
        return self._samples


class TestHealthMonitor:
    def test_first_healthy_verdict_is_silent(self):
        events = EventRecorder()
        monitor = HealthMonitor(FixedSeries([sample()]), events)
        report = monitor.evaluate(1_000.0)
        assert report["status"] == HEALTHY
        assert events.total == 0

    def test_verdict_flip_fires_ev11(self):
        series = FixedSeries([sample()])
        events = EventRecorder()
        monitor = HealthMonitor(series, events)
        monitor.evaluate(1_000.0)
        series._samples = [sample(breaker=2.0)]
        monitor.evaluate(2_000.0)
        monitor.evaluate(3_000.0)  # unchanged verdict: no second event
        (event,) = events.recent()
        assert event["code"] == "EV11"
        assert event["at_ms"] == 2_000.0
        assert event["payload"] == {
            "status": DEGRADED, "previous": HEALTHY,
        }

    def test_first_verdict_already_degraded_fires_ev11(self):
        events = EventRecorder()
        monitor = HealthMonitor(FixedSeries([sample(breaker=2.0)]), events)
        monitor.evaluate(500.0)
        (event,) = events.recent()
        assert event["payload"]["previous"] is None

    def test_report_carries_config_fields(self):
        monitor = HealthMonitor(
            FixedSeries([sample(queue=10.0)] * 3), latency_slo_ms=100.0
        )
        monitor.set_queue_limit(10)
        report = monitor.evaluate(1_000.0)
        assert report["enabled"] is True
        assert report["at_ms"] == 1_000.0
        assert report["latency_slo_ms"] == 100.0
        assert report["queue_limit"] == 10
        assert report["status"] == UNHEALTHY

    def test_null_monitor_is_always_healthy(self):
        null = NullHealthMonitor()
        null.set_queue_limit(5)
        report = null.evaluate(42.0)
        assert report["enabled"] is False
        assert report["status"] == HEALTHY
        assert NULL_HEALTH.enabled is False
