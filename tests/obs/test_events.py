"""EventRecorder: pinned codes, validation, wraparound accounting."""

import pytest

from repro.obs.events import (
    BREAKER_EVENT_CODES,
    EVENT_CODES,
    EV_BREAKER_OPEN,
    EV_SHED_ACTIVATED,
    NULL_EVENTS,
    EventRecorder,
    NullEventRecorder,
    SHED_POLICY_EVENT_CODES,
)


class TestRegistryGolden:
    """The EV registry is a stable contract, like the FP codes."""

    def test_codes_are_pinned(self):
        assert dict(EVENT_CODES) == {
            "EV01": "breaker-open",
            "EV02": "breaker-half-open",
            "EV03": "breaker-closed",
            "EV04": "shed-policy-activated",
            "EV05": "shed-policy-deactivated",
            "EV06": "data-version-flush",
            "EV07": "recovery-completed",
            "EV08": "queue-deadline-drops",
            "EV09": "eviction-storm",
            "EV10": "snapshot-checkpoint",
            "EV11": "health-state-change",
            "EV12": "shard-crash",
            "EV13": "failover-reroute",
            "EV14": "handoff-completed",
        }

    def test_breaker_states_map_to_breaker_codes(self):
        assert dict(BREAKER_EVENT_CODES) == {
            "open": "EV01", "half-open": "EV02", "closed": "EV03",
        }

    def test_shed_policy_map_skips_half_open(self):
        # Half-open is probing: the policy is neither active nor
        # lifted, so no shed event fires on that transition.
        assert dict(SHED_POLICY_EVENT_CODES) == {
            "open": "EV04", "closed": "EV05",
        }


class TestEmit:
    def test_unknown_code_is_a_loud_error(self):
        recorder = EventRecorder()
        with pytest.raises(ValueError, match="EV99"):
            recorder.emit("EV99", at_ms=0.0)
        assert recorder.total == 0

    def test_record_shape_with_optional_fields(self):
        recorder = EventRecorder()
        recorder.emit(EV_BREAKER_OPEN, at_ms=10)
        recorder.emit(
            EV_SHED_ACTIVATED,
            at_ms=20.0,
            trace_id="t1",
            query_index=7,
            reason="queue-full",
        )
        bare, rich = recorder.recent()
        assert bare == {
            "code": "EV01", "name": "breaker-open", "at_ms": 10.0,
        }
        assert rich == {
            "code": "EV04",
            "name": "shed-policy-activated",
            "at_ms": 20.0,
            "trace_id": "t1",
            "query_index": 7,
            "payload": {"reason": "queue-full"},
        }

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventRecorder(capacity=0)


class TestRingBuffer:
    def test_wraparound_keeps_counting(self):
        recorder = EventRecorder(capacity=3)
        for step in range(5):
            recorder.emit(EV_BREAKER_OPEN, at_ms=float(step))
        recorder.emit(EV_SHED_ACTIVATED, at_ms=5.0)
        # Only the newest three survive, but total/counts remember
        # everything, so the snapshot says how much was dropped.
        assert [e["at_ms"] for e in recorder.recent()] == [3.0, 4.0, 5.0]
        assert recorder.total == 6
        assert recorder.counts() == {"EV01": 5, "EV04": 1}
        snapshot = recorder.snapshot()
        assert snapshot["total"] == 6
        assert snapshot["capacity"] == 3
        assert len(snapshot["events"]) == 3

    def test_recent_limits(self):
        recorder = EventRecorder()
        for step in range(4):
            recorder.emit(EV_BREAKER_OPEN, at_ms=float(step))
        assert [e["at_ms"] for e in recorder.recent(2)] == [2.0, 3.0]
        assert recorder.recent(0) == []
        assert len(recorder.recent(99)) == 4


class TestNullRecorder:
    def test_null_recorder_is_inert(self):
        null = NullEventRecorder()
        null.emit("totally-bogus", at_ms=0.0)  # validates nothing
        assert null.recent() == []
        assert null.counts() == {}
        assert null.snapshot() == {
            "enabled": False,
            "clock": "sim-ms",
            "capacity": 0,
            "total": 0,
            "counts": {},
            "events": [],
        }
        assert NULL_EVENTS.enabled is False
