"""TimeSeriesRecorder: alignment, clamping, wraparound, quantiles."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    NULL_TIMESERIES,
    ORIGIN_LANES,
    PROXY_LANES,
    CounterLane,
    GaugeLane,
    LaneSet,
    NullTimeSeries,
    QuantileLane,
    TimeSeriesRecorder,
)

LANES = LaneSet(
    counters=(CounterLane("served_per_s", "served_total"),),
    gauges=(GaugeLane("depth", "depth_gauge"),),
    quantiles=(QuantileLane("latency_ms", "latency_hist"),),
)


def make(interval_ms=1_000.0, capacity=8):
    registry = MetricsRegistry()
    counter = registry.counter("served_total")
    gauge = registry.gauge("depth_gauge")
    hist = registry.histogram(
        "latency_hist", buckets=(10.0, 100.0, 1_000.0)
    )
    recorder = TimeSeriesRecorder(
        interval_ms=interval_ms, capacity=capacity, lanes=LANES
    )
    recorder.bind(registry)
    return recorder, registry, counter, gauge, hist


class TestSampling:
    def test_unbound_recorder_never_samples(self):
        recorder = TimeSeriesRecorder(lanes=LANES)
        assert recorder.maybe_sample(0.0) is None
        assert recorder.maybe_sample(5_000.0) is None
        assert recorder.samples() == []

    def test_first_call_only_seeds_baselines(self):
        recorder, _, counter, _, _ = make()
        counter.inc(100.0)  # pre-existing traffic, not a window delta
        assert recorder.maybe_sample(250.0) is None
        counter.inc(5.0)
        sample = recorder.maybe_sample(1_000.0)
        # Only the post-seed increments count toward the first rate.
        assert sample["rates"]["served_per_s"] == 5.0

    def test_no_sample_inside_the_window(self):
        recorder, _, counter, _, _ = make()
        recorder.maybe_sample(0.0)
        counter.inc()
        assert recorder.maybe_sample(400.0) is None
        assert recorder.maybe_sample(999.9) is None
        # Time standing still or running backwards never samples.
        assert recorder.maybe_sample(0.0) is None
        assert recorder.samples() == []

    def test_samples_align_to_the_interval_grid(self):
        recorder, _, counter, _, _ = make()
        recorder.maybe_sample(123.4)
        counter.inc()
        first = recorder.maybe_sample(1_234.5)
        counter.inc()
        second = recorder.maybe_sample(2_999.9)
        assert first["t_ms"] == 1_000.0
        assert second["t_ms"] == 2_000.0

    def test_multi_interval_jump_averages_into_one_sample(self):
        recorder, _, counter, _, _ = make()
        recorder.maybe_sample(0.0)
        counter.inc(10.0)
        sample = recorder.maybe_sample(5_000.0)
        # One sample covers the whole gap; the rate is averaged over
        # the five simulated seconds, and the buffer holds one entry.
        assert sample["t_ms"] == 5_000.0
        assert sample["rates"]["served_per_s"] == 2.0
        assert len(recorder.samples()) == 1

    def test_gauge_lane_is_a_point_sample(self):
        recorder, _, _, gauge, _ = make()
        recorder.maybe_sample(0.0)
        gauge.set(7.0)
        sample = recorder.maybe_sample(1_000.0)
        assert sample["gauges"]["depth"] == 7.0


class TestRingBuffer:
    def test_wraparound_keeps_the_newest_samples(self):
        recorder, _, counter, _, _ = make(capacity=3)
        recorder.maybe_sample(0.0)
        for step in range(1, 6):
            counter.inc()
            recorder.maybe_sample(step * 1_000.0)
        retained = recorder.samples()
        assert [s["t_ms"] for s in retained] == [
            3_000.0, 4_000.0, 5_000.0,
        ]
        assert len(recorder.snapshot()["samples"]) == 3


class TestCounterReset:
    def test_rebind_clamps_the_rate_to_zero(self):
        recorder, _, counter, _, _ = make()
        recorder.maybe_sample(0.0)
        counter.inc(50.0)
        assert (
            recorder.maybe_sample(1_000.0)["rates"]["served_per_s"] == 50.0
        )
        # A warm restart swaps in a fresh registry: the counter total
        # drops from 50 to 0.  The delta clamps to a flat zero sample
        # rather than a negative spike.
        fresh = MetricsRegistry()
        fresh.counter("served_total")
        fresh.gauge("depth_gauge")
        fresh.histogram("latency_hist", buckets=(10.0, 100.0, 1_000.0))
        recorder.bind(fresh)
        sample = recorder.maybe_sample(2_000.0)
        assert sample["rates"]["served_per_s"] == 0.0


class TestWindowQuantiles:
    def test_empty_window_reports_none(self):
        recorder, _, _, _, hist = make()
        recorder.maybe_sample(0.0)
        hist.observe(50.0)
        busy = recorder.maybe_sample(1_000.0)
        assert busy["quantiles"]["latency_ms"]["p50"] == 100.0
        # The next window has no observations: None, not a stale value.
        idle = recorder.maybe_sample(2_000.0)
        assert idle["quantiles"]["latency_ms"] == {"p50": None, "p95": None}

    def test_quantiles_diff_only_the_window(self):
        recorder, _, _, _, hist = make()
        for _ in range(10):
            hist.observe(5.0)  # pre-window history, all fast
        recorder.maybe_sample(0.0)
        hist.observe(500.0)
        sample = recorder.maybe_sample(1_000.0)
        # Only the window's single slow observation is ranked.
        assert sample["quantiles"]["latency_ms"]["p50"] == 1_000.0
        assert sample["quantiles"]["latency_ms"]["p95"] == 1_000.0

    def test_mixed_window_ranks_by_bucket_bound(self):
        recorder, _, _, _, hist = make()
        recorder.maybe_sample(0.0)
        for value in (5.0, 50.0, 500.0):
            hist.observe(value)
        quantiles = recorder.maybe_sample(1_000.0)["quantiles"]["latency_ms"]
        assert quantiles["p50"] == 100.0
        assert quantiles["p95"] == 1_000.0


class TestWireShape:
    def test_snapshot_schema(self):
        recorder, _, counter, _, _ = make(interval_ms=500.0, capacity=4)
        recorder.maybe_sample(0.0)
        counter.inc()
        recorder.maybe_sample(500.0)
        snapshot = recorder.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["clock"] == "sim-ms"
        assert snapshot["interval_ms"] == 500.0
        assert snapshot["capacity"] == 4
        assert snapshot["lanes"] == {
            "rates": ["served_per_s"],
            "gauges": ["depth"],
            "quantiles": ["latency_ms"],
        }
        (sample,) = snapshot["samples"]
        assert set(sample) == {"t_ms", "rates", "gauges", "quantiles"}

    def test_proxy_lane_names_are_pinned(self):
        assert [lane.name for lane in PROXY_LANES.counters] == [
            "throughput_qps", "shed_per_s", "origin_per_s",
        ]
        assert [lane.name for lane in PROXY_LANES.gauges] == [
            "queue_depth", "inflight", "cache_bytes",
            "breaker_state", "overload_state", "snapshot_age_s",
        ]
        assert [lane.name for lane in PROXY_LANES.quantiles] == [
            "response_ms"
        ]

    def test_origin_lane_names_are_pinned(self):
        assert [lane.name for lane in ORIGIN_LANES.counters] == [
            "requests_per_s"
        ]
        assert [lane.name for lane in ORIGIN_LANES.gauges] == [
            "data_version"
        ]
        assert [lane.name for lane in ORIGIN_LANES.quantiles] == [
            "server_ms"
        ]


class TestValidationAndNull:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(interval_ms=0.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(capacity=0)

    def test_null_recorder_is_inert(self):
        null = NullTimeSeries()
        null.bind(MetricsRegistry())
        assert null.enabled is False
        assert null.maybe_sample(1_000.0) is None
        assert null.samples() == []
        assert null.snapshot()["enabled"] is False
        assert NULL_TIMESERIES.enabled is False
