"""The hierarchical hot-path profiler.

Deterministic accounting is tested against a hand-advanced fake clock:
self vs cumulative time on both clocks, re-entrant stages, accumulate
routing, the top-K slowest-query capture, and the no-op default's
guarantees (shared frame, empty snapshot, bounded overhead).
"""

import pytest

from repro.obs.profiling import (
    NULL_FRAME,
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    STAGE_NAMES,
)
from repro.obs.wallclock import Stopwatch


class FakeClock:
    """A perf_counter stand-in advanced by hand (seconds)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance_ms(self, ms):
        self.now += ms / 1000.0


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def profiler(clock):
    return Profiler(top_k=3, clock=clock)


class TestHierarchy:
    def test_self_vs_cumulative_on_both_clocks(self, profiler, clock):
        with profiler.stage("check") as check:
            clock.advance_ms(10)
            check.add_sim(5.0)
            with profiler.stage("probe.array") as probe:
                clock.advance_ms(2)
                probe.add_sim(1.0)
            clock.advance_ms(3)

        check_stats = profiler.stats("check")
        assert check_stats.calls == 1
        assert check_stats.cum_sim_ms == pytest.approx(6.0)
        assert check_stats.self_sim_ms == pytest.approx(5.0)
        assert check_stats.cum_wall_ms == pytest.approx(15.0)
        assert check_stats.self_wall_ms == pytest.approx(13.0)

        probe_stats = profiler.stats("probe.array")
        assert probe_stats.calls == 1
        assert probe_stats.cum_sim_ms == pytest.approx(1.0)
        assert probe_stats.self_sim_ms == pytest.approx(1.0)
        assert probe_stats.cum_wall_ms == pytest.approx(2.0)
        assert probe_stats.self_wall_ms == pytest.approx(2.0)

    def test_reentrant_stage_counts_cumulative_once(
        self, profiler, clock
    ):
        with profiler.stage("merge") as outer:
            clock.advance_ms(4)
            outer.add_sim(4.0)
            with profiler.stage("merge") as inner:
                clock.advance_ms(2)
                inner.add_sim(2.0)

        stats = profiler.stats("merge")
        # One call per entry, but cumulative time only at the
        # outermost frame — recursion cannot double-count.
        assert stats.calls == 2
        assert stats.cum_wall_ms == pytest.approx(6.0)
        assert stats.cum_sim_ms == pytest.approx(6.0)
        assert stats.self_wall_ms == pytest.approx(6.0)
        assert stats.self_sim_ms == pytest.approx(6.0)

    def test_zero_duration_stage(self, profiler):
        with profiler.stage("parse"):
            pass
        stats = profiler.stats("parse")
        assert stats.calls == 1
        assert stats.cum_wall_ms == 0.0
        assert stats.self_wall_ms == 0.0
        assert stats.cum_sim_ms == 0.0

    def test_out_of_order_exit_unwinds(self, profiler, clock):
        outer = profiler.stage("check")
        inner = profiler.stage("relate")
        outer.__enter__()
        inner.__enter__()
        clock.advance_ms(1)
        # Exiting the outer frame with the inner still open must not
        # leave a corpse on the stack.
        outer.__exit__(None, None, None)
        assert profiler.stats("check").calls == 1
        with profiler.stage("local_eval"):
            clock.advance_ms(1)
        assert profiler.stats("local_eval").calls == 1


class TestAccumulation:
    def test_accumulate_routes_to_open_frame(self, profiler):
        with profiler.stage("check"):
            profiler.accumulate("check", 2.5)
        stats = profiler.stats("check")
        # The charge landed on the open frame: one call, not two.
        assert stats.calls == 1
        assert stats.cum_sim_ms == pytest.approx(2.5)

    def test_accumulate_flat_when_no_frame_open(self, profiler):
        profiler.accumulate("parse", 1.5)
        profiler.accumulate("parse", 0.5)
        stats = profiler.stats("parse")
        assert stats.calls == 2
        assert stats.cum_sim_ms == pytest.approx(2.0)
        assert stats.self_sim_ms == pytest.approx(2.0)

    def test_hit_and_count(self, profiler):
        profiler.hit("journal.append")
        profiler.hit("journal.append", 2)
        profiler.count("local_eval", "tuples_read", 40)
        profiler.count("local_eval", "tuples_read", 2)
        assert profiler.stats("journal.append").calls == 3
        assert profiler.stats("local_eval").counters == {
            "tuples_read": 42
        }

    def test_frame_count_delegates(self, profiler):
        with profiler.stage("merge") as merge:
            merge.count("tuples", 7)
        assert profiler.stats("merge").counters == {"tuples": 7}


class TestSlowestQueries:
    def test_top_k_keeps_slowest_in_order(self, profiler):
        for index, sim_ms in enumerate([10.0, 30.0, 20.0, 25.0]):
            profiler.record_query(index, "Radial", sim_ms)
        snapshot = profiler.snapshot()
        assert [
            q["response_sim_ms"] for q in snapshot["slowest_queries"]
        ] == [30.0, 25.0, 20.0]

    def test_status_is_optional(self, profiler):
        profiler.record_query(0, "Radial", 5.0, status="miss")
        profiler.record_query(1, "Radial", 4.0)
        first, second = profiler.snapshot()["slowest_queries"]
        assert first["status"] == "miss"
        assert "status" not in second


class TestExport:
    def test_snapshot_shape(self, profiler, clock):
        with profiler.stage("check") as check:
            clock.advance_ms(1)
            check.count("candidates", 3)
        snapshot = profiler.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["top_k"] == 3
        assert snapshot["stages"]["check"]["calls"] == 1
        assert snapshot["stages"]["check"]["counters"] == {
            "candidates": 3
        }

    @pytest.mark.parametrize("sort", ["cum", "self", "wall", "calls"])
    def test_render_text_sorts(self, profiler, sort):
        profiler.add_sim("parse", 1.0)
        text = profiler.render_text(sort=sort)
        assert f"sorted by {sort}" in text
        assert "parse" in text

    def test_render_text_rejects_unknown_sort(self, profiler):
        with pytest.raises(ValueError, match="unknown sort"):
            profiler.render_text(sort="rows")

    def test_reset(self, profiler):
        profiler.add_sim("parse", 1.0)
        profiler.record_query(0, "Radial", 1.0)
        profiler.reset()
        snapshot = profiler.snapshot()
        assert snapshot["stages"] == {}
        assert snapshot["slowest_queries"] == []

    def test_top_k_must_be_positive(self):
        with pytest.raises(ValueError):
            Profiler(top_k=0)

    def test_hot_path_stage_names_are_registered(self):
        for name in ("check", "local_eval", "merge", "probe.array",
                     "probe.rtree", "remainder_build"):
            assert name in STAGE_NAMES


class TestNullProfiler:
    def test_shared_frame_no_allocation(self):
        assert NULL_PROFILER.stage("check") is NULL_FRAME
        assert NULL_PROFILER.stage("merge") is NULL_FRAME

    def test_everything_is_a_no_op(self):
        null = NullProfiler()
        with null.stage("check") as frame:
            frame.add_sim(5.0)
            frame.count("candidates", 3)
        null.accumulate("parse", 1.0)
        null.hit("journal.append")
        null.record_query(0, "Radial", 9.9)
        assert null.stats("check") is None
        assert null.snapshot() == {
            "enabled": False,
            "top_k": 0,
            "stages": {},
            "slowest_queries": [],
        }
        assert "disabled" in null.render_text()

    def test_noop_overhead_is_bounded(self):
        # The default profiler must be nearly free on the hot path:
        # 100k accumulate calls in well under a second even on a slow
        # CI machine (the real bound — <=5% on the Figure 5 bench — is
        # enforced by the perf job's regression gate).
        watch = Stopwatch()
        for _ in range(100_000):
            NULL_PROFILER.accumulate("check", 1.0)
            NULL_PROFILER.stage("merge")
        assert watch.elapsed_s < 1.0
