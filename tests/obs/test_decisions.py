"""Decision-explain layer: action mapping, ring buffer, SLO burn rates."""

import json

import pytest

from repro.geometry.regions import HyperRect, HyperSphere
from repro.obs.decisions import (
    ACTION_CODES,
    DecisionAction,
    DecisionLog,
    EvictionRecord,
    action_for,
    region_summary,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BURN_RATE_CEILING,
    SloObjective,
    SloTracker,
)


class TestActionMapping:
    @pytest.mark.parametrize(
        "status,expected",
        [
            ("exact", DecisionAction.EXACT),
            ("contained", DecisionAction.CONTAINED),
            ("region-containment", DecisionAction.REGION_CONTAINED),
            ("overlap", DecisionAction.REMAINDER),
            ("disjoint", DecisionAction.MISS),
            ("forwarded", DecisionAction.MISS),
            ("no-cache", DecisionAction.TUNNEL),
            ("failed", DecisionAction.FAILED),
            ("rejected", DecisionAction.SHED),
        ],
    )
    def test_served_statuses(self, status, expected):
        assert action_for(status, "served") is expected

    @pytest.mark.parametrize(
        "outcome,expected",
        [
            ("failed", DecisionAction.FAILED),
            ("degraded", DecisionAction.DEGRADED),
            ("partial", DecisionAction.PARTIAL),
            ("shed", DecisionAction.SHED),
            ("queued-timeout", DecisionAction.QUEUED_TIMEOUT),
        ],
    )
    def test_outcome_overrides_status(self, outcome, expected):
        assert action_for("overlap", outcome) is expected

    def test_unknown_status_is_an_error(self):
        with pytest.raises(ValueError):
            action_for("telepathy", "served")

    def test_codes_are_stable_and_unique(self):
        codes = [action.code for action in DecisionAction]
        assert codes == [f"DA{n:02d}" for n in range(1, 12)]
        assert len(set(ACTION_CODES.values())) == len(DecisionAction)


class TestRegionSummary:
    def test_hypersphere(self):
        summary = region_summary(HyperSphere((1.0, 2.0), 3.0))
        assert summary == {
            "shape": "hypersphere",
            "center": [1.0, 2.0],
            "radius": 3.0,
        }

    def test_hyperrect(self):
        summary = region_summary(HyperRect((0.0, 0.0), (1.0, 2.0)))
        assert summary["shape"] == "hyperrect"
        assert summary["lows"] == [0.0, 0.0]
        assert summary["highs"] == [1.0, 2.0]

    def test_summaries_are_json_able(self):
        json.dumps(region_summary(HyperSphere((0.0, 0.0), 1.0)))


class TestDecisionTrace:
    def test_full_record_round_trip(self):
        log = DecisionLog()
        trace = log.begin(
            1,
            "skyserver.radial",
            query_region=region_summary(HyperSphere((0.0, 0.0), 5.0)),
            scheme="ac-full",
            policy={"cache": True},
        )
        trace.record_candidate(
            entry_id=7,
            relation="overlap",
            entry_region=HyperSphere((3.0, 0.0), 4.0),
            rows=120,
        )
        trace.record_candidate(
            entry_id=8,
            relation="skipped",
            entry_region=HyperSphere((9.0, 9.0), 1.0),
            note="truncated entry (exact matches only)",
        )
        trace.record_remainder(
            {"base": region_summary(HyperSphere((0.0, 0.0), 5.0))},
            sql="SELECT ...",
        )
        trace.record_eviction(
            EvictionRecord(
                entry_id=3,
                policy="lru",
                rationale="least recently used",
                byte_size=4096,
            )
        )
        trace.record_admission(True, consolidated=[7])
        trace.finish("overlap", "served", trace_id="a" * 32)
        log.record(trace)

        payload = log.get(1).to_dict()
        assert payload["action"] == "remainder"
        assert payload["action_code"] == "DA04"
        assert [c["entry_id"] for c in payload["candidates"]] == [7, 8]
        assert payload["candidates"][0]["relation"] == "overlap"
        assert payload["candidates"][1]["note"].startswith("truncated")
        assert payload["remainder"]["sql"] == "SELECT ..."
        assert payload["evictions"][0]["rationale"] == "least recently used"
        assert payload["consolidated"] == [7]
        assert payload["admitted"] is True
        assert payload["trace_id"] == "a" * 32
        json.dumps(payload)

    def test_unfinished_trace_renders_empty_action(self):
        log = DecisionLog()
        trace = log.begin(1, "t")
        payload = trace.to_dict()
        assert payload["action"] == ""
        assert payload["action_code"] == ""


class TestDecisionLog:
    def _finished(self, log, query_id, status="exact"):
        trace = log.begin(query_id, "t")
        trace.finish(status, "served")
        log.record(trace)
        return trace

    def test_begin_does_not_insert(self):
        log = DecisionLog()
        log.begin(1, "t")
        assert len(log) == 0
        assert log.get(1) is None

    def test_ring_evicts_oldest(self):
        log = DecisionLog(capacity=3)
        for query_id in range(1, 6):
            self._finished(log, query_id)
        assert len(log) == 3
        assert log.get(1) is None
        assert log.get(2) is None
        assert [d["query_id"] for d in log.recent()] == [3, 4, 5]

    def test_rerecorded_query_id_survives_old_copy_eviction(self):
        log = DecisionLog(capacity=2)
        self._finished(log, 1, status="disjoint")
        newer = self._finished(log, 1, status="exact")
        self._finished(log, 2)  # evicts the *old* query-1 trace
        assert log.get(1) is newer

    def test_resize_trims(self):
        log = DecisionLog(capacity=10)
        for query_id in range(1, 6):
            self._finished(log, query_id)
        log.resize(2)
        assert log.capacity == 2
        assert [d["query_id"] for d in log.recent()] == [4, 5]
        with pytest.raises(ValueError):
            log.resize(0)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            DecisionLog(capacity=0)

    def test_recent_limits(self):
        log = DecisionLog()
        for query_id in range(1, 5):
            self._finished(log, query_id)
        assert [d["query_id"] for d in log.recent(2)] == [3, 4]
        assert log.recent(0) == []

    def test_action_counts(self):
        log = DecisionLog()
        self._finished(log, 1, status="exact")
        self._finished(log, 2, status="exact")
        self._finished(log, 3, status="disjoint")
        assert log.action_counts() == {"exact": 2, "miss": 1}

    def test_clear(self):
        log = DecisionLog()
        self._finished(log, 1)
        log.clear()
        assert len(log) == 0
        assert log.get(1) is None


class TestSloObjective:
    def test_validation(self):
        with pytest.raises(ValueError):
            SloObjective(target_hit_ratio=1.5)
        with pytest.raises(ValueError):
            SloObjective(latency_target_ratio=-0.1)
        with pytest.raises(ValueError):
            SloObjective(latency_objective_ms=0.0)


class TestSloTracker:
    def _tracker(self, **kwargs):
        return SloTracker(MetricsRegistry(), **kwargs)

    def test_hit_ratio_and_burn_rate(self):
        tracker = self._tracker(
            objective=SloObjective(target_hit_ratio=0.75)
        )
        for hit in (True, True, False, False):
            tracker.observe("t", hit=hit, latency_ms=1.0)
        snapshot = tracker.snapshot()["t"]
        assert snapshot["queries"] == 4
        assert snapshot["hit_ratio"] == 0.5
        # Miss rate 0.5 against a 0.25 budget: burning 2x.
        assert snapshot["hit_burn_rate"] == 2.0

    def test_latency_burn_rate(self):
        tracker = self._tracker(
            objective=SloObjective(
                latency_objective_ms=100.0, latency_target_ratio=0.9
            )
        )
        for latency in (50.0, 100.0, 150.0, 150.0):
            tracker.observe("t", hit=True, latency_ms=latency)
        snapshot = tracker.snapshot()["t"]
        assert snapshot["within_latency"] == 2
        # Violation rate 0.5 against a 0.1 budget: burning 5x.
        assert snapshot["latency_burn_rate"] == pytest.approx(5.0)

    def test_zero_budget_violation_hits_ceiling(self):
        tracker = self._tracker(
            objective=SloObjective(target_hit_ratio=1.0)
        )
        tracker.observe("t", hit=False, latency_ms=1.0)
        assert tracker.snapshot()["t"]["hit_burn_rate"] == BURN_RATE_CEILING

    def test_no_queries_means_no_burn(self):
        tracker = self._tracker()
        assert tracker.snapshot() == {}

    def test_per_template_override(self):
        strict = SloObjective(target_hit_ratio=0.9)
        tracker = self._tracker(overrides={"special": strict})
        assert tracker.objective_for("special") is strict
        assert tracker.objective_for("other") is tracker.objective

    def test_gauges_exported(self):
        registry = MetricsRegistry()
        tracker = SloTracker(registry)
        tracker.observe("t", hit=True, latency_ms=1.0)
        text = registry.exposition()
        assert 'slo_hit_ratio{template="t"} 1' in text
        assert 'slo_queries_total{template="t"} 1' in text
        assert "slo_hit_burn_rate" in text
        assert "slo_latency_burn_rate" in text
