"""Simulated clock and network links."""

import pytest

from repro.network.clock import SimulatedClock
from repro.network.link import NetworkLink, Topology


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now_ms == 0.0

    def test_advances(self):
        clock = SimulatedClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now_ms == pytest.approx(12.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1.0)

    def test_span_measures_elapsed(self):
        clock = SimulatedClock()
        span = clock.measure()
        clock.advance(7.0)
        assert span.elapsed() == pytest.approx(7.0)


class TestLink:
    def test_transfer_model(self):
        link = NetworkLink(latency_ms=10.0, bandwidth_bytes_per_ms=100.0)
        assert link.transfer_ms(0) == pytest.approx(10.0)
        assert link.transfer_ms(1000) == pytest.approx(20.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            NetworkLink(latency_ms=-1.0, bandwidth_bytes_per_ms=1.0)
        with pytest.raises(ValueError):
            NetworkLink(latency_ms=1.0, bandwidth_bytes_per_ms=0.0)

    def test_rejects_negative_payload(self):
        link = NetworkLink(latency_ms=1.0, bandwidth_bytes_per_ms=1.0)
        with pytest.raises(ValueError):
            link.transfer_ms(-1)


class TestTopology:
    def test_origin_round_trip_charges_both_directions(self):
        topology = Topology(
            proxy_origin=NetworkLink(
                latency_ms=100.0, bandwidth_bytes_per_ms=100.0
            ),
            request_bytes=500,
        )
        # Request: 100 + 5; response: 100 + 10.
        assert topology.origin_round_trip_ms(1000) == pytest.approx(215.0)

    def test_client_round_trip(self):
        topology = Topology(
            client_proxy=NetworkLink(
                latency_ms=5.0, bandwidth_bytes_per_ms=1000.0
            ),
            request_bytes=1000,
        )
        assert topology.client_round_trip_ms(0) == pytest.approx(11.0)

    def test_wan_dominates_lan_by_default(self):
        topology = Topology()
        assert topology.origin_round_trip_ms(10_000) > (
            topology.client_round_trip_ms(10_000)
        )

    def test_rejects_non_positive_request_size(self):
        with pytest.raises(ValueError, match="request size"):
            Topology(request_bytes=0)
        with pytest.raises(ValueError, match="request size"):
            Topology(request_bytes=-600)
