"""Shared fixtures.

The origin server is expensive to build (catalog generation + spatial
index), so one small instance is shared per test session.  Tests that
mutate proxy caches build their own proxies around the shared origin —
the origin itself is read-only with respect to proxies (its query
counters are diagnostics and no test asserts exact counter values
across tests).
"""

from __future__ import annotations

import pytest

from repro.server.origin import OriginServer
from repro.skydata.generator import SkyCatalogConfig

SMALL_SKY = SkyCatalogConfig(
    n_objects=8_000,
    ra_min=160.0,
    ra_max=168.0,
    dec_min=5.0,
    dec_max=11.0,
    seed=42,
)


@pytest.fixture(scope="session")
def origin() -> OriginServer:
    """A small synthetic SkyServer shared by the whole session."""
    return OriginServer.skyserver(SMALL_SKY)


@pytest.fixture(scope="session")
def templates(origin):
    return origin.templates


@pytest.fixture()
def radial_params():
    """A mid-window radial query binding with open magnitude range."""
    return {
        "ra": 164.0,
        "dec": 8.0,
        "radius": 10.0,
        "r_min": -9999.0,
        "r_max": 9999.0,
    }
