"""End-to-end shape assertions: the paper's qualitative findings.

These run the quick-scale experiment pipeline and assert the *shape*
of the results — who wins, in what order — rather than absolute
numbers.  The full reproductions live in ``benchmarks/``.
"""

import pytest

from repro.core.schemes import CachingScheme
from repro.harness.config import ExperimentScale
from repro.harness.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(ExperimentScale.quick().with_trace_length(400))


@pytest.fixture(scope="module")
def by_scheme(runner):
    return {
        scheme: runner.run(scheme, "array", cache_fraction=None)
        for scheme in CachingScheme
    }


class TestResponseTimeOrdering:
    def test_no_cache_is_slowest(self, by_scheme):
        nc = by_scheme[CachingScheme.NO_CACHE].stats.average_response_ms
        for scheme, result in by_scheme.items():
            if scheme is not CachingScheme.NO_CACHE:
                assert result.stats.average_response_ms < nc

    def test_active_beats_passive(self, by_scheme):
        pc = by_scheme[CachingScheme.PASSIVE].stats.average_response_ms
        for scheme in (
            CachingScheme.FULL_SEMANTIC,
            CachingScheme.REGION_CONTAINMENT,
            CachingScheme.CONTAINMENT_ONLY,
        ):
            assert by_scheme[scheme].stats.average_response_ms < pc

    def test_full_semantic_is_slowest_active_scheme(self, by_scheme):
        """The paper's headline: handling cache-intersecting queries
        costs more than it saves (Figure 6, 'First' slowest)."""
        full = by_scheme[
            CachingScheme.FULL_SEMANTIC
        ].stats.average_response_ms
        for scheme in (
            CachingScheme.REGION_CONTAINMENT,
            CachingScheme.CONTAINMENT_ONLY,
        ):
            assert by_scheme[scheme].stats.average_response_ms < full


class TestEfficiencyOrdering:
    def test_efficiency_ranking_matches_paper(self, by_scheme):
        """Figure 6's efficiency order: full > region-containment >
        containment-only > passive > none."""
        efficiency = {
            scheme: result.stats.average_cache_efficiency
            for scheme, result in by_scheme.items()
        }
        assert efficiency[CachingScheme.FULL_SEMANTIC] >= (
            efficiency[CachingScheme.REGION_CONTAINMENT]
        )
        assert efficiency[CachingScheme.REGION_CONTAINMENT] >= (
            efficiency[CachingScheme.CONTAINMENT_ONLY]
        )
        assert efficiency[CachingScheme.CONTAINMENT_ONLY] > (
            efficiency[CachingScheme.PASSIVE]
        )
        assert efficiency[CachingScheme.PASSIVE] > 0.0
        assert efficiency[CachingScheme.NO_CACHE] == 0.0

    def test_active_efficiency_roughly_doubles_passive(self, by_scheme):
        """Table 1's headline relation (AC about twice PC)."""
        ac = by_scheme[
            CachingScheme.FULL_SEMANTIC
        ].stats.average_cache_efficiency
        pc = by_scheme[CachingScheme.PASSIVE].stats.average_cache_efficiency
        assert 1.4 <= ac / pc <= 2.6


class TestCacheSizeEffects:
    def test_efficiency_grows_with_cache_size(self, runner):
        small = runner.run(
            CachingScheme.FULL_SEMANTIC, "array", 1 / 6
        ).stats.average_cache_efficiency
        large = runner.run(
            CachingScheme.FULL_SEMANTIC, "array", 1.0
        ).stats.average_cache_efficiency
        assert large >= small

    def test_full_budget_means_no_evictions(self, runner):
        result = runner.run(CachingScheme.PASSIVE, "array", 1.0)
        proxy_evictions = [
            record
            for record in result.stats.records
            if record.steps_ms.get("maintenance", 0.0) < 0
        ]
        assert not proxy_evictions  # sanity: maintenance is never negative
        assert result.final_cache_bytes <= runner.total_result_bytes


class TestDescriptionClaim:
    def test_checking_always_under_100ms_real_time(self, runner):
        """The paper's micro-claim, on real wall-clock time."""
        for kind in ("array", "rtree"):
            result = runner.run(CachingScheme.FULL_SEMANTIC, kind, None)
            assert result.stats.max_check_wall_ms() < 100.0

    def test_rtree_and_array_answer_identically(self, runner):
        array_result = runner.run(CachingScheme.FULL_SEMANTIC, "array", None)
        rtree_result = runner.run(CachingScheme.FULL_SEMANTIC, "rtree", None)
        assert array_result.stats.average_cache_efficiency == (
            pytest.approx(rtree_result.stats.average_cache_efficiency)
        )
        array_statuses = [r.status for r in array_result.stats.records]
        rtree_statuses = [r.status for r in rtree_result.stats.records]
        assert array_statuses == rtree_statuses
