"""The shipped examples run cleanly."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart():
    output = run_example("quickstart.py")
    assert "exact" in output
    assert "contained" in output
    assert "cache now holds" in output


def test_skyserver_radial():
    output = run_example("skyserver_radial.py", "150")
    for scheme in ("nc", "pc", "ac-full", "ac-region", "ac-containment"):
        assert scheme in output


def test_custom_function_template():
    output = run_example("custom_function_template.py")
    assert "contained" in output
    assert "proxy cache" in output


def test_http_deployment():
    pytest.importorskip("flask")
    output = run_example("http_deployment.py")
    assert "cache status exact" in output
    assert "Proxy stats" in output


def test_adaptive_proxy_example():
    output = run_example("adaptive_proxy.py")
    assert "stop handling overlaps" in output
    assert "keep handling overlaps" in output
    assert "gds" in output
