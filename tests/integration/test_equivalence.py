"""The correctness invariant: the proxy never changes query answers.

For any trace and any caching scheme / description / cache budget, the
tuple set the proxy returns for each query must equal what the origin
returns when asked directly.  This is the property that makes every
caching trick in the paper *safe*; everything else is performance.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.description import ArrayDescription, RTreeDescription
from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.harness.config import ExperimentScale
from repro.workload.generator import RadialTraceConfig, generate_radial_trace

SKY = ExperimentScale.quick().sky


def ids(result):
    key = result.schema.position("objID")
    return {row[key] for row in result.rows}


def run_equivalence(origin, trace, scheme, description, cache_bytes):
    proxy = FunctionProxy(
        origin,
        origin.templates,
        scheme=scheme,
        description=description,
        cache_bytes=cache_bytes,
    )
    for query in trace:
        bound = origin.templates.bind(query.template_id, query.param_dict())
        got = proxy.serve(bound).result
        want = origin.execute_bound(bound).result
        assert ids(got) == ids(want), (
            f"answer mismatch under {scheme.value} for {bound!r}"
        )


@pytest.mark.parametrize("scheme", list(CachingScheme),
                         ids=lambda s: s.value)
def test_all_schemes_preserve_answers(origin, scheme):
    trace = generate_radial_trace(
        RadialTraceConfig(n_queries=120, sky=SKY)
    )
    run_equivalence(origin, trace, scheme, ArrayDescription(), None)


def test_rtree_description_preserves_answers(origin):
    trace = generate_radial_trace(
        RadialTraceConfig(n_queries=120, sky=SKY)
    )
    run_equivalence(
        origin, trace, CachingScheme.FULL_SEMANTIC, RTreeDescription(), None
    )


def test_tight_budget_preserves_answers(origin):
    """Evictions mid-trace must never corrupt answers."""
    trace = generate_radial_trace(
        RadialTraceConfig(n_queries=150, sky=SKY)
    )
    run_equivalence(
        origin, trace, CachingScheme.FULL_SEMANTIC, ArrayDescription(),
        cache_bytes=8_000,
    )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scheme=st.sampled_from(
        [
            CachingScheme.FULL_SEMANTIC,
            CachingScheme.REGION_CONTAINMENT,
            CachingScheme.CONTAINMENT_ONLY,
        ]
    ),
    overlap_heavy=st.booleans(),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_equivalence_under_random_traces(origin, seed, scheme,
                                         overlap_heavy):
    config = RadialTraceConfig(n_queries=60, sky=SKY, seed=seed)
    if overlap_heavy:
        config = dataclasses.replace(
            config, p_repeat=0.1, p_zoom=0.15, p_pan=0.35, p_zoom_out=0.1
        )
    trace = generate_radial_trace(config)
    run_equivalence(origin, trace, scheme, ArrayDescription(), None)
