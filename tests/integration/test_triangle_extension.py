"""The polytope path end to end, via the triangle search extension."""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryStatus
from repro.extensions.triangle import (
    TRIANGLE_TEMPLATE_ID,
    register_triangle_search,
)
from repro.geometry.regions import ConvexPolytope
from repro.server.origin import OriginServer
from repro.udf.registry import UdfError
from tests.conftest import SMALL_SKY

MAG_OPEN = {"r_min": -9999.0, "r_max": 9999.0}


@pytest.fixture(scope="module")
def triangle_origin():
    """A dedicated origin with the triangle extension registered."""
    origin = OriginServer.skyserver(SMALL_SKY)
    register_triangle_search(
        origin.catalog.functions,
        origin.catalog.table("PhotoPrimary"),
        origin.templates,
    )
    origin.templates.query_template(TRIANGLE_TEMPLATE_ID).validate(
        origin.catalog.functions
    )
    return origin


def ccw_triangle(cx, cy, size):
    """A CCW triangle around (cx, cy) with the given half-size."""
    return {
        "ra1": cx - size, "dec1": cy - size,
        "ra2": cx + size, "dec2": cy - size,
        "ra3": cx, "dec3": cy + size,
        **MAG_OPEN,
    }


def ids(result):
    key = result.schema.position("objID")
    return {row[key] for row in result.rows}


class TestFunction:
    def test_matches_brute_force(self, triangle_origin):
        params = ccw_triangle(164.0, 8.0, 0.8)
        bound = triangle_origin.templates.bind(
            TRIANGLE_TEMPLATE_ID, params
        )
        result = triangle_origin.execute_bound(bound).result
        assert len(result) > 0
        region = bound.region
        assert isinstance(region, ConvexPolytope)
        # Every returned object is inside the template's region and
        # every catalog object inside the region is returned.
        table = triangle_origin.catalog.table("PhotoPrimary")
        schema = table.schema
        expected = {
            row[schema.position("objID")]
            for row in table.rows
            if region.contains_point(
                (row[schema.position("ra")], row[schema.position("dec")])
            )
        }
        assert ids(result) == expected

    def test_clockwise_vertices_rejected(self, triangle_origin):
        params = ccw_triangle(164.0, 8.0, 0.5)
        # Swap two vertices to make the order clockwise.
        params["ra1"], params["ra2"] = params["ra2"], params["ra1"]
        bound = triangle_origin.templates.bind(TRIANGLE_TEMPLATE_ID, params)
        with pytest.raises(UdfError, match="counter-clockwise"):
            triangle_origin.execute_bound(bound)


class TestProxyWithPolytopes:
    def test_zoomed_triangle_answered_from_cache(self, triangle_origin):
        proxy = FunctionProxy(triangle_origin, triangle_origin.templates)
        big = triangle_origin.templates.bind(
            TRIANGLE_TEMPLATE_ID, ccw_triangle(164.0, 8.0, 0.9)
        )
        first = proxy.serve(big)
        assert first.record.status is QueryStatus.DISJOINT

        small = triangle_origin.templates.bind(
            TRIANGLE_TEMPLATE_ID, ccw_triangle(164.0, 8.0, 0.3)
        )
        response = proxy.serve(small)
        assert response.record.status is QueryStatus.CONTAINED
        assert not response.record.contacted_origin
        expected = triangle_origin.execute_bound(small).result
        assert ids(response.result) == ids(expected)

    def test_disjoint_triangles_both_cached(self, triangle_origin):
        proxy = FunctionProxy(triangle_origin, triangle_origin.templates)
        proxy.serve(
            triangle_origin.templates.bind(
                TRIANGLE_TEMPLATE_ID, ccw_triangle(162.0, 7.0, 0.4)
            )
        )
        second = proxy.serve(
            triangle_origin.templates.bind(
                TRIANGLE_TEMPLATE_ID, ccw_triangle(166.0, 10.0, 0.4)
            )
        )
        assert second.record.status is QueryStatus.DISJOINT
        assert len(proxy.cache) == 2

    def test_exact_repeat(self, triangle_origin):
        proxy = FunctionProxy(triangle_origin, triangle_origin.templates)
        params = ccw_triangle(165.0, 9.0, 0.5)
        proxy.serve(
            triangle_origin.templates.bind(TRIANGLE_TEMPLATE_ID, params)
        )
        repeat = proxy.serve(
            triangle_origin.templates.bind(TRIANGLE_TEMPLATE_ID, params)
        )
        assert repeat.record.status is QueryStatus.EXACT
