"""The proxy caches several templates at once, without cross-talk.

The framework registers one cache-description space per template;
radial (3-d chord spheres) and rectangular (2-d sky boxes) entries
must never be compared.  A mixed trace exercises both paths in one
cache under one byte budget.
"""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.core.stats import QueryStatus
from repro.workload.generator import RadialTraceConfig, generate_radial_trace
from repro.workload.rect_generator import (
    RectTraceConfig,
    generate_rect_trace,
    interleave,
)
from tests.conftest import SMALL_SKY


@pytest.fixture(scope="module")
def mixed_trace():
    radial = generate_radial_trace(
        RadialTraceConfig(n_queries=80, sky=SMALL_SKY)
    )
    rect = generate_rect_trace(RectTraceConfig(n_queries=80, sky=SMALL_SKY))
    return interleave([radial, rect], seed=5)


def ids(result):
    key = result.schema.position("objID")
    return {row[key] for row in result.rows}


def test_mixed_trace_preserves_answers(origin, mixed_trace):
    proxy = FunctionProxy(origin, origin.templates)
    for query in mixed_trace:
        bound = origin.templates.bind(query.template_id, query.param_dict())
        got = proxy.serve(bound).result
        want = origin.execute_bound(bound).result
        assert ids(got) == ids(want)


def test_both_templates_get_active_hits(origin, mixed_trace):
    proxy = FunctionProxy(origin, origin.templates)
    for query in mixed_trace:
        bound = origin.templates.bind(query.template_id, query.param_dict())
        proxy.serve(bound)
    by_template: dict[str, set] = {}
    for record in proxy.stats.records:
        by_template.setdefault(record.template_id, set()).add(record.status)
    assert len(by_template) == 2
    for statuses in by_template.values():
        assert statuses & {
            QueryStatus.EXACT,
            QueryStatus.CONTAINED,
            QueryStatus.OVERLAP,
            QueryStatus.REGION_CONTAINMENT,
        }, "each template should see some cache answering"


def test_mixed_trace_under_budget_preserves_answers(origin, mixed_trace):
    proxy = FunctionProxy(
        origin,
        origin.templates,
        scheme=CachingScheme.FULL_SEMANTIC,
        cache_bytes=10_000,
    )
    for query in mixed_trace:
        bound = origin.templates.bind(query.template_id, query.param_dict())
        got = proxy.serve(bound).result
        want = origin.execute_bound(bound).result
        assert ids(got) == ids(want)
    assert proxy.cache.current_bytes <= 10_000
