"""The adaptive proxy learns whether remainder queries pay off."""

import dataclasses

import pytest

from repro.core.schemes import CachingScheme
from repro.extensions.adaptive import AdaptiveProxy
from repro.server.costs import ServerCostModel
from repro.server.origin import OriginServer
from repro.workload.generator import RadialTraceConfig, generate_radial_trace
from tests.conftest import SMALL_SKY

# An overlap-heavy trace so the estimator sees plenty of evidence.
TRACE_CONFIG = RadialTraceConfig(
    n_queries=400, sky=SMALL_SKY, p_repeat=0.1, p_zoom=0.1, p_pan=0.4,
    p_zoom_out=0.0,
)

CHEAP_REMAINDERS = ServerCostModel(
    base_ms=1500.0, per_tuple_ms=1.0,
    remainder_surcharge_ms=0.0, per_hole_ms=0.0,
)
COSTLY_REMAINDERS = ServerCostModel(
    base_ms=1500.0, per_tuple_ms=1.0,
    remainder_surcharge_ms=2500.0, per_hole_ms=200.0,
)


def replay(origin, proxy, trace):
    for query in trace:
        bound = origin.templates.bind(query.template_id, query.param_dict())
        got = proxy.serve(bound).result
        want = origin.execute_bound(bound).result
        key = want.schema.position("objID")
        assert {r[key] for r in got.rows} == {r[key] for r in want.rows}


@pytest.fixture(scope="module")
def trace():
    return generate_radial_trace(TRACE_CONFIG)


def test_declines_overlaps_when_remainders_are_costly(trace):
    origin = OriginServer.skyserver(SMALL_SKY, COSTLY_REMAINDERS)
    proxy = AdaptiveProxy(origin, origin.templates)
    replay(origin, proxy, trace)
    state = proxy.adaptive
    assert state.overlaps_seen > 40
    assert not state.remainder_pays_off
    assert state.overlaps_declined > 0
    # After warm-up, most overlaps are declined (only periodic
    # exploration remains).
    handled_after_warmup = state.overlaps_handled - proxy.explore_overlaps
    declined = state.overlaps_declined
    assert declined > handled_after_warmup


def test_keeps_handling_overlaps_when_remainders_are_cheap(trace):
    origin = OriginServer.skyserver(SMALL_SKY, CHEAP_REMAINDERS)
    proxy = AdaptiveProxy(origin, origin.templates)
    replay(origin, proxy, trace)
    state = proxy.adaptive
    assert state.overlaps_seen > 40
    # Cheap remainders: handled overlaps dominate declines.
    assert state.overlaps_handled > state.overlaps_declined


def test_adaptive_beats_or_matches_static_full_when_costly(trace):
    origin = OriginServer.skyserver(SMALL_SKY, COSTLY_REMAINDERS)
    from repro.core.proxy import FunctionProxy
    from repro.workload.rbe import BrowserEmulator

    static = FunctionProxy(
        origin, origin.templates, scheme=CachingScheme.FULL_SEMANTIC
    )
    static_stats = BrowserEmulator(static).run(trace)

    adaptive = AdaptiveProxy(origin, origin.templates)
    adaptive_stats = BrowserEmulator(adaptive).run(trace)

    assert adaptive_stats.average_response_ms < (
        static_stats.average_response_ms
    )


def test_parameter_validation(origin):
    with pytest.raises(ValueError):
        AdaptiveProxy(origin, origin.templates, explore_overlaps=0)
    with pytest.raises(ValueError):
        AdaptiveProxy(origin, origin.templates, exploration_period=1)
