"""Cache coherence: the data-version flush.

The determinism that justifies caching (paper property 1) holds only
while the base data is fixed.  When the origin announces a new data
version, the proxy must flush — otherwise it would keep serving
snapshots of the old database.
"""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryStatus
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.server.origin import OriginServer
from repro.sqlparser.parser import parse_expression
from repro.templates.function_template import FunctionTemplate, Shape
from repro.templates.manager import TemplateManager
from repro.templates.query_template import QueryTemplate
from repro.udf.registry import TableFunction


@pytest.fixture()
def mutable_origin():
    """A tiny origin whose TVF reads the table live (no frozen index),
    so appended rows become visible immediately."""
    catalog = Catalog()
    points = Table(
        "Points",
        Schema.of(
            ("id", ColumnType.INT),
            ("x", ColumnType.FLOAT),
            ("y", ColumnType.FLOAT),
        ),
        primary_key="id",
    )
    points.insert_many([(1, 1.0, 1.0), (2, 2.0, 2.0), (3, 9.0, 9.0)])
    catalog.add_table(points)

    def f_in_box(catalog_, args):
        x_min, x_max, y_min, y_max = (float(a) for a in args)
        return [
            row
            for row in points.rows
            if x_min <= row[1] <= x_max and y_min <= row[2] <= y_max
        ]

    catalog.functions.register_table(
        TableFunction(
            name="fInBox",
            params=("x_min", "x_max", "y_min", "y_max"),
            schema=points.schema,
            impl=f_in_box,
        )
    )
    templates = TemplateManager()
    ftemplate = FunctionTemplate(
        name="fInBox",
        params=("x_min", "x_max", "y_min", "y_max"),
        shape=Shape.HYPERRECT,
        dims=2,
        point_exprs=(parse_expression("x"), parse_expression("y")),
        low_exprs=(
            parse_expression("$x_min"), parse_expression("$y_min"),
        ),
        high_exprs=(
            parse_expression("$x_max"), parse_expression("$y_max"),
        ),
    )
    templates.register_function_template(ftemplate)
    templates.register_query_template(
        QueryTemplate.from_sql(
            "points.box",
            "SELECT id, x, y FROM fInBox($x_min, $x_max, $y_min, $y_max) n",
            ftemplate,
            key_column="id",
        )
    )
    origin = OriginServer(catalog, templates)
    return origin, points


BOX = {"x_min": 0.0, "x_max": 5.0, "y_min": 0.0, "y_max": 5.0}


def ids(result):
    key = result.schema.position("id")
    return {row[key] for row in result.rows}


def test_stale_cache_flushes_on_version_bump(mutable_origin):
    origin, points = mutable_origin
    proxy = FunctionProxy(origin, origin.templates)
    bound = origin.templates.bind("points.box", BOX)

    first = proxy.serve(bound)
    assert ids(first.result) == {1, 2}

    # The database changes: a new point lands inside the cached region.
    points.insert((4, 3.0, 3.0))

    # Without a version bump the proxy (correctly, per its contract)
    # still serves the cached snapshot.
    stale = proxy.serve(bound)
    assert stale.record.status is QueryStatus.EXACT
    assert ids(stale.result) == {1, 2}

    # After the bump, the cache flushes and the fresh row appears.
    origin.bump_data_version()
    fresh = proxy.serve(bound)
    assert fresh.record.contacted_origin
    assert ids(fresh.result) == {1, 2, 4}
    assert proxy.invalidations == 1


def test_flush_empties_cache_completely(mutable_origin):
    origin, _points = mutable_origin
    proxy = FunctionProxy(origin, origin.templates)
    proxy.serve(origin.templates.bind("points.box", BOX))
    other = dict(BOX, x_min=6.0, x_max=12.0, y_min=6.0, y_max=12.0)
    proxy.serve(origin.templates.bind("points.box", other))
    assert len(proxy.cache) == 2

    origin.bump_data_version()
    proxy.serve(origin.templates.bind("points.box", BOX))
    # Only the re-fetched entry remains.
    assert len(proxy.cache) == 1


def test_origin_without_version_is_treated_as_immutable(mutable_origin):
    origin, _points = mutable_origin
    proxy = FunctionProxy(origin, origin.templates)
    del origin.data_version  # an origin that never exposes versions
    proxy.serve(origin.templates.bind("points.box", BOX))
    repeat = proxy.serve(origin.templates.bind("points.box", BOX))
    assert repeat.record.status is QueryStatus.EXACT
    assert proxy.invalidations <= 1  # at most the initial transition
