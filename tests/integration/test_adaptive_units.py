"""Unit-level behaviour of the adaptive estimator."""

import pytest

from repro.extensions.adaptive import AdaptiveState, _RunningMean


class TestRunningMean:
    def test_empty_mean_is_zero(self):
        assert _RunningMean().mean == 0.0

    def test_mean_updates(self):
        mean = _RunningMean()
        mean.add(10.0)
        mean.add(20.0)
        assert mean.mean == pytest.approx(15.0)
        assert mean.count == 2


class TestAdaptiveState:
    def test_no_evidence_means_explore(self):
        assert AdaptiveState().remainder_pays_off

    def test_one_sided_evidence_still_explores(self):
        state = AdaptiveState()
        state.forward_cost.add(1000.0)
        assert state.remainder_pays_off

    def test_costly_remainders_decline(self):
        state = AdaptiveState()
        state.forward_cost.add(1000.0)
        state.overlap_cost.add(2500.0)
        assert not state.remainder_pays_off

    def test_cheap_remainders_accept(self):
        state = AdaptiveState()
        state.forward_cost.add(2000.0)
        state.overlap_cost.add(1500.0)
        assert state.remainder_pays_off

    def test_estimates_track_new_evidence(self):
        state = AdaptiveState()
        state.forward_cost.add(1000.0)
        state.overlap_cost.add(2500.0)
        assert not state.remainder_pays_off
        # The environment changes: remainders got cheap.
        for _ in range(20):
            state.overlap_cost.add(500.0)
        assert state.remainder_pays_off
