"""The BenchReporter output contract: document, trajectory, summary."""

import json

import pytest

from repro.perf.reporter import BenchReporter, TRAJECTORY_LIMIT
from repro.perf.schema import PerfSchemaError, load_result


@pytest.fixture()
def reporter(tmp_path):
    return BenchReporter(
        "fig5",
        scale="quick",
        results_dir=tmp_path / "results",
        trajectory_dir=tmp_path,
        run_info={"commit": "abc123"},
    )


class TestDocument:
    def test_finish_writes_schema_valid_document(self, reporter, tmp_path):
        reporter.metric("nc_response_ms", 2081.4, unit="ms")
        reporter.metric(
            "efficiency", [0.5, 0.6, 0.55], unit="fraction",
            polarity="higher",
        )
        reporter.metric("wall_ms", 12.0, unit="ms", gated=False)
        reporter.finish()

        result = load_result(
            tmp_path / "results" / "fig5.bench.json"
        )
        assert result.bench_id == "fig5"
        assert result.scale == "quick"
        assert result.run["commit"] == "abc123"
        assert "timestamp_utc" in result.run
        nc = result.metric("nc_response_ms")
        assert nc.median == 2081.4 and nc.gated
        eff = result.metric("efficiency")
        assert eff.values == (0.5, 0.6, 0.55)
        assert eff.polarity == "higher"
        assert not result.metric("wall_ms").gated

    def test_finish_twice_is_an_error(self, reporter):
        reporter.metric("m", 1.0, unit="ms")
        reporter.finish()
        with pytest.raises(RuntimeError, match="finish"):
            reporter.finish()

    def test_empty_report_fails_validation(self, reporter):
        with pytest.raises(PerfSchemaError, match="at least one"):
            reporter.finish()

    def test_summary_printed(self, reporter, capsys):
        reporter.metric("m", 1.0, unit="ms")
        reporter.finish()
        out = capsys.readouterr().out
        assert "bench fig5" in out
        assert "lower is better" in out


class TestTrajectory:
    def trajectory(self, tmp_path):
        return json.loads((tmp_path / "BENCH_fig5.json").read_text())

    def run_once(self, tmp_path, value=1.0):
        reporter = BenchReporter(
            "fig5", scale="quick",
            results_dir=tmp_path / "results", trajectory_dir=tmp_path,
        )
        reporter.metric("m", value, unit="ms")
        reporter.finish()

    def test_appends_across_runs(self, tmp_path):
        self.run_once(tmp_path, 1.0)
        self.run_once(tmp_path, 2.0)
        entries = self.trajectory(tmp_path)
        assert [e["metrics"]["m"]["median"] for e in entries] == [
            1.0, 2.0,
        ]
        assert entries[0]["run"]["scale"] == "quick"

    def test_damaged_trajectory_restarts(self, tmp_path):
        (tmp_path / "BENCH_fig5.json").write_text("{corrupt")
        self.run_once(tmp_path, 3.0)
        entries = self.trajectory(tmp_path)
        assert len(entries) == 1

    def test_truncates_to_limit(self, tmp_path):
        stale = [{"run": {}, "metrics": {}}] * TRAJECTORY_LIMIT
        (tmp_path / "BENCH_fig5.json").write_text(json.dumps(stale))
        self.run_once(tmp_path)
        assert len(self.trajectory(tmp_path)) == TRAJECTORY_LIMIT

    def test_no_trajectory_dir_writes_nothing(self, tmp_path):
        reporter = BenchReporter(
            "fig5", scale="quick", results_dir=tmp_path / "results"
        )
        reporter.metric("m", 1.0, unit="ms")
        reporter.finish()
        assert not (tmp_path / "BENCH_fig5.json").exists()
