"""The noise-adjusted regression gate."""

import pytest

from repro.perf.compare import compare_results
from repro.perf.schema import BenchResult, Metric


def result(bench_id="fig5", scale="quick", **metrics):
    """A BenchResult from name -> (values, polarity[, gated])."""
    built = []
    for name, spec in metrics.items():
        values, polarity = spec[0], spec[1]
        gated = spec[2] if len(spec) > 2 else True
        built.append(
            Metric(name, "ms", polarity, tuple(values), gated=gated)
        )
    return BenchResult(
        bench_id=bench_id,
        run={"scale": scale},
        metrics=tuple(built),
    )


def only(comparisons, name):
    matches = [c for c in comparisons if c.name == name]
    assert len(matches) == 1
    return matches[0]


class TestGate:
    def test_unchanged_passes(self):
        base = result(m=([100.0], "lower"))
        assert not any(
            c.regressed for c in compare_results(base, base)
        )

    def test_twenty_percent_slowdown_fails_at_ten_percent(self):
        base = result(m=([100.0], "lower"))
        cur = result(m=([120.0], "lower"))
        verdict = only(compare_results(base, cur, tolerance=0.10), "m")
        assert verdict.regressed
        assert verdict.worse_by == pytest.approx(20.0)
        assert verdict.allowance == pytest.approx(10.0)
        assert "REGRESSED" in verdict.format()

    def test_improvement_never_fails(self):
        base = result(m=([100.0], "lower"))
        cur = result(m=([40.0], "lower"))
        assert not only(compare_results(base, cur), "m").regressed

    def test_higher_polarity_inverts_direction(self):
        base = result(m=([0.50], "higher"))
        worse = result(m=([0.40], "higher"))
        better = result(m=([0.60], "higher"))
        assert only(compare_results(base, worse), "m").regressed
        assert not only(compare_results(base, better), "m").regressed

    def test_noise_widens_the_allowance(self):
        # 15% worse, but both runs carry an IQR of 15: the noise term
        # (1.5 * (15 + 15) = 45) absorbs a move the bare 10% tolerance
        # would have failed.
        base = result(m=([90.0, 95.0, 105.0, 110.0], "lower"))
        cur = result(m=([105.0, 110.0, 120.0, 125.0], "lower"))
        verdict = only(compare_results(base, cur), "m")
        assert verdict.worse_by == pytest.approx(15.0)
        assert verdict.allowance == pytest.approx(45.0)
        assert not verdict.regressed

    def test_ungated_metric_never_fails(self):
        base = result(m=([100.0], "lower", False))
        cur = result(m=([500.0], "lower", False))
        verdict = only(compare_results(base, cur), "m")
        assert not verdict.regressed
        assert "ungated" in verdict.format()


class TestStructuralFailures:
    def test_missing_gated_metric_fails(self):
        base = result(m=([100.0], "lower"))
        cur = result(other=([1.0], "lower"))
        verdict = only(compare_results(base, cur), "m")
        assert verdict.regressed
        assert "missing" in verdict.note

    def test_missing_ungated_metric_passes(self):
        base = result(m=([100.0], "lower", False))
        cur = result(other=([1.0], "lower"))
        assert not only(compare_results(base, cur), "m").regressed

    def test_polarity_change_fails(self):
        base = result(m=([100.0], "lower"))
        cur = result(m=([100.0], "higher"))
        verdict = only(compare_results(base, cur), "m")
        assert verdict.regressed
        assert "polarity" in verdict.note

    def test_scale_mismatch_fails_wholesale(self):
        base = result(scale="quick", m=([100.0], "lower"))
        cur = result(scale="paper", m=([100.0], "lower"))
        comparisons = compare_results(base, cur)
        assert len(comparisons) == 1
        assert comparisons[0].name == "<scale>"
        assert comparisons[0].regressed

    def test_bench_id_mismatch_raises(self):
        with pytest.raises(ValueError, match="cannot compare"):
            compare_results(
                result(bench_id="fig5", m=([1.0], "lower")),
                result(bench_id="fig6", m=([1.0], "lower")),
            )

    def test_new_metric_is_reported_not_failed(self):
        base = result(m=([100.0], "lower"))
        cur = result(m=([100.0], "lower"), fresh=([1.0], "lower"))
        verdict = only(compare_results(base, cur), "fresh")
        assert not verdict.regressed
        assert "no baseline" in verdict.note
