"""The ``python -m repro.perf`` command line (the CI gate's entry)."""

import json

import pytest

from repro.perf.__main__ import main
from repro.perf.schema import BenchResult, Metric


def write_result(directory, bench_id, value, scale="quick"):
    directory.mkdir(parents=True, exist_ok=True)
    document = BenchResult(
        bench_id=bench_id,
        run={"scale": scale},
        metrics=(Metric("m", "ms", "lower", (value,)),),
    ).to_dict()
    (directory / f"{bench_id}.bench.json").write_text(
        json.dumps(document)
    )


@pytest.fixture()
def dirs(tmp_path):
    baseline = tmp_path / "baselines"
    current = tmp_path / "current"
    write_result(baseline, "fig5", 100.0)
    write_result(current, "fig5", 100.0)
    return baseline, current


def compare_args(baseline, current, *extra):
    return [
        "compare", "--baseline", str(baseline),
        "--current", str(current), *extra,
    ]


class TestCompare:
    def test_unchanged_exits_zero(self, dirs, capsys):
        baseline, current = dirs
        assert main(compare_args(baseline, current)) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_injected_slowdown_exits_nonzero(self, dirs, capsys):
        baseline, current = dirs
        write_result(current, "fig5", 120.0)  # 20% above baseline
        assert main(
            compare_args(baseline, current, "--tolerance", "0.10")
        ) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_wider_tolerance_absorbs_it(self, dirs):
        baseline, current = dirs
        write_result(current, "fig5", 120.0)
        assert main(
            compare_args(baseline, current, "--tolerance", "0.25")
        ) == 0

    def test_missing_current_result_fails(self, dirs, capsys):
        baseline, current = dirs
        write_result(baseline, "fig6", 50.0)
        assert main(compare_args(baseline, current)) == 1
        assert "no current" in capsys.readouterr().out

    def test_bench_filter_limits_the_gate(self, dirs):
        baseline, current = dirs
        write_result(baseline, "fig6", 50.0)  # no current counterpart
        assert main(
            compare_args(baseline, current, "--bench", "fig5")
        ) == 0

    def test_bench_filter_unknown_id_fails(self, dirs, capsys):
        baseline, current = dirs
        assert main(
            compare_args(baseline, current, "--bench", "nope")
        ) == 1
        assert "no baseline for" in capsys.readouterr().out

    def test_missing_baseline_dir_fails(self, tmp_path, dirs):
        _, current = dirs
        assert main(
            compare_args(tmp_path / "empty", current)
        ) == 1


class TestValidate:
    def test_valid_directory(self, dirs, capsys):
        baseline, _ = dirs
        assert main(["validate", str(baseline)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_document(self, tmp_path, capsys):
        bad = tmp_path / "bad.bench.json"
        bad.write_text("{broken")
        assert main(["validate", str(bad)]) == 1
        assert "invalid" in capsys.readouterr().out

    def test_empty_directory(self, tmp_path):
        assert main(["validate", str(tmp_path)]) == 1


class TestPromote:
    def test_promotes_all(self, dirs):
        baseline, current = dirs
        write_result(current, "fig6", 7.0)
        target = baseline.parent / "fresh_baselines"
        assert main([
            "promote", "--current", str(current),
            "--baseline", str(target),
        ]) == 0
        assert sorted(p.name for p in target.glob("*.bench.json")) == [
            "fig5.bench.json", "fig6.bench.json",
        ]

    def test_promotes_named_subset(self, dirs):
        baseline, current = dirs
        write_result(current, "fig6", 7.0)
        target = baseline.parent / "subset"
        assert main([
            "promote", "--current", str(current),
            "--baseline", str(target), "fig6",
        ]) == 0
        assert [p.name for p in target.glob("*.bench.json")] == [
            "fig6.bench.json"
        ]

    def test_unknown_bench_id_fails(self, dirs, capsys):
        baseline, current = dirs
        assert main([
            "promote", "--current", str(current),
            "--baseline", str(baseline), "nope",
        ]) == 1
        assert "no current result" in capsys.readouterr().out
