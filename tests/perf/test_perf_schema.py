"""The canonical bench-result schema."""

import json

import pytest

from repro.perf.schema import (
    BenchResult,
    Metric,
    PerfSchemaError,
    SCHEMA_VERSION,
    iqr,
    load_result,
    load_results_dir,
    median,
)


class TestStatistics:
    def test_median_odd_even(self):
        assert median((3.0, 1.0, 2.0)) == 2.0
        assert median((4.0, 1.0, 3.0, 2.0)) == 2.5

    def test_iqr_median_of_halves(self):
        assert iqr((1.0, 2.0, 3.0, 4.0)) == pytest.approx(2.0)
        assert iqr((1.0, 1.0, 1.0, 1.0, 9.0)) == pytest.approx(4.0)

    def test_iqr_needs_four_observations(self):
        assert iqr((1.0, 100.0, 5.0)) == 0.0


class TestMetric:
    def test_roundtrip(self):
        metric = Metric(
            "nc_response_ms", "ms", "lower", (2.0, 1.0, 3.0)
        )
        payload = metric.to_dict()
        assert payload["median"] == 2.0
        restored = Metric.from_dict("nc_response_ms", payload)
        assert restored == metric

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="", unit="ms", polarity="lower", values=(1.0,)),
            dict(name="m", unit="ms", polarity="faster", values=(1.0,)),
            dict(name="m", unit="ms", polarity="lower", values=()),
            dict(
                name="m", unit="ms", polarity="lower",
                values=(float("nan"),),
            ),
            dict(name="m", unit="ms", polarity="lower", values=(True,)),
        ],
    )
    def test_invalid_metrics_rejected(self, kwargs):
        with pytest.raises(PerfSchemaError):
            Metric(**kwargs)

    def test_tampered_median_rejected(self):
        payload = Metric("m", "ms", "lower", (1.0, 3.0)).to_dict()
        payload["median"] = 1.0  # hand-edited: values say 2.0
        with pytest.raises(PerfSchemaError, match="disagrees"):
            Metric.from_dict("m", payload)

    def test_missing_required_key_rejected(self):
        with pytest.raises(PerfSchemaError, match="missing"):
            Metric.from_dict("m", {"unit": "ms", "values": [1.0]})


class TestBenchResult:
    def metric(self, name="m"):
        return Metric(name, "ms", "lower", (1.0,))

    def test_roundtrip(self):
        result = BenchResult(
            bench_id="fig5",
            run={"scale": "quick"},
            metrics=(self.metric("a"), self.metric("b")),
        )
        restored = BenchResult.from_dict(result.to_dict())
        assert restored.bench_id == "fig5"
        assert restored.scale == "quick"
        assert {m.name for m in restored.metrics} == {"a", "b"}
        assert restored.metric("a") is not None
        assert restored.metric("zzz") is None

    def test_duplicate_metric_rejected(self):
        with pytest.raises(PerfSchemaError, match="duplicate"):
            BenchResult(
                bench_id="fig5",
                metrics=(self.metric(), self.metric()),
            )

    def test_empty_metrics_rejected(self):
        with pytest.raises(PerfSchemaError, match="at least one"):
            BenchResult(bench_id="fig5")

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(PerfSchemaError, match="schema_version"):
            BenchResult(
                bench_id="fig5",
                metrics=(self.metric(),),
                schema_version=SCHEMA_VERSION + 1,
            )


class TestLoading:
    def write(self, path, document):
        path.write_text(json.dumps(document))

    def document(self, bench_id="fig5"):
        return BenchResult(
            bench_id=bench_id,
            run={"scale": "quick"},
            metrics=(Metric("m", "ms", "lower", (1.0,)),),
        ).to_dict()

    def test_load_result(self, tmp_path):
        path = tmp_path / "fig5.bench.json"
        self.write(path, self.document())
        assert load_result(path).bench_id == "fig5"

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.bench.json"
        path.write_text("{nope")
        with pytest.raises(PerfSchemaError, match="not valid JSON"):
            load_result(path)

    def test_load_results_dir(self, tmp_path):
        self.write(tmp_path / "a.bench.json", self.document("a"))
        self.write(tmp_path / "b.bench.json", self.document("b"))
        (tmp_path / "ignored.json").write_text("[]")
        results = load_results_dir(tmp_path)
        assert sorted(results) == ["a", "b"]

    def test_duplicate_bench_id_across_files(self, tmp_path):
        self.write(tmp_path / "a.bench.json", self.document("fig5"))
        self.write(tmp_path / "b.bench.json", self.document("fig5"))
        with pytest.raises(PerfSchemaError, match="duplicate bench id"):
            load_results_dir(tmp_path)
