"""Template info files: form binding and XML round-trip."""

import pytest

from repro.templates.errors import TemplateError
from repro.templates.info_file import TemplateInfoFile
from repro.templates.skyserver_templates import radial_info_file


class TestBindForm:
    def test_translates_and_coerces(self):
        info = radial_info_file()
        params = info.bind_form(
            {"ra": "164.5", "dec": "8", "radius": "10.25"}
        )
        assert params["ra"] == 164.5
        assert params["dec"] == 8  # integer-looking input stays int
        assert params["radius"] == 10.25

    def test_defaults_fill_missing_fields(self):
        info = radial_info_file()
        params = info.bind_form({"ra": "1", "dec": "2", "radius": "3"})
        assert params["r_min"] == -9999.0
        assert params["r_max"] == 9999.0

    def test_form_overrides_default(self):
        info = radial_info_file()
        params = info.bind_form(
            {"ra": "1", "dec": "2", "radius": "3", "min_mag": "15.0"}
        )
        assert params["r_min"] == 15.0

    def test_unknown_fields_ignored(self):
        info = radial_info_file()
        params = info.bind_form(
            {"ra": "1", "dec": "2", "radius": "3", "submit": "Search"}
        )
        assert "submit" not in params

    def test_missing_required_field_raises(self):
        info = radial_info_file()
        with pytest.raises(TemplateError, match="radius"):
            info.bind_form({"ra": "1", "dec": "2"})

    def test_non_numeric_values_stay_strings(self):
        info = TemplateInfoFile(
            form_name="f", template_id="t", field_map={"name": "name"}
        )
        assert info.bind_form({"name": "NGC-1275"}) == {"name": "NGC-1275"}


class TestXml:
    def test_roundtrip(self):
        info = radial_info_file()
        restored = TemplateInfoFile.from_xml(info.to_xml())
        assert restored.form_name == info.form_name
        assert restored.template_id == info.template_id
        assert dict(restored.field_map) == dict(info.field_map)
        assert dict(restored.defaults) == dict(info.defaults)

    def test_malformed_raises(self):
        with pytest.raises(TemplateError):
            TemplateInfoFile.from_xml("not xml at all")

    def test_missing_required_elements_raise(self):
        with pytest.raises(TemplateError):
            TemplateInfoFile.from_xml("<TemplateInfo/>")
