"""Function templates: regions, points, XML round-trip, validation."""

import math

import pytest

from repro.geometry.regions import HyperRect, HyperSphere
from repro.sqlparser.parser import parse_expression
from repro.templates.errors import TemplateError
from repro.templates.function_template import (
    FunctionTemplate,
    HalfspaceSpec,
    Shape,
)
from repro.templates.skyserver_templates import (
    radial_function_template,
    rect_function_template,
)


class TestRadialTemplate:
    def test_region_is_chord_sphere(self):
        template = radial_function_template()
        region = template.region_for(
            {"ra": 0.0, "dec": 0.0, "radius": 60.0}
        )
        assert isinstance(region, HyperSphere)
        assert region.center == pytest.approx((1.0, 0.0, 0.0))
        # One degree subtends a chord of 2 sin(0.5 deg).
        assert region.radius == pytest.approx(
            2.0 * math.sin(math.radians(0.5))
        )

    def test_point_of_uses_cx_cy_cz(self):
        template = radial_function_template()
        point = template.point_of({"cx": 0.1, "cy": 0.2, "cz": 0.3})
        assert point == (0.1, 0.2, 0.3)

    def test_point_attribute_names(self):
        assert radial_function_template().point_attribute_names() == {
            "cx", "cy", "cz",
        }

    def test_missing_parameter_raises(self):
        with pytest.raises(TemplateError, match="missing parameter"):
            radial_function_template().region_for({"ra": 0.0, "dec": 0.0})

    def test_negative_radius_raises(self):
        with pytest.raises(TemplateError, match="negative radius"):
            radial_function_template().region_for(
                {"ra": 0.0, "dec": 0.0, "radius": -5.0}
            )

    def test_membership_matches_angular_distance(self):
        from repro.skydata.sphere import (
            angular_distance_arcmin,
            radec_to_unit,
        )

        template = radial_function_template()
        center = {"ra": 164.0, "dec": 8.0, "radius": 25.0}
        region = template.region_for(center)
        for ra, dec in [(164.1, 8.1), (164.3, 8.0), (165.0, 9.0)]:
            point = radec_to_unit(ra, dec)
            inside_region = region.contains_point(point)
            inside_angular = (
                angular_distance_arcmin(164.0, 8.0, ra, dec) <= 25.0
            )
            assert inside_region == inside_angular


class TestRectTemplate:
    def test_region_is_sky_rect(self):
        template = rect_function_template()
        region = template.region_for(
            {"ra_min": 10.0, "ra_max": 20.0, "dec_min": -5.0, "dec_max": 5.0}
        )
        assert region == HyperRect((10.0, -5.0), (20.0, 5.0))

    def test_point_of(self):
        template = rect_function_template()
        assert template.point_of({"ra": 12.0, "dec": 1.0}) == (12.0, 1.0)


class TestXmlRoundtrip:
    @pytest.mark.parametrize(
        "template",
        [radial_function_template(), rect_function_template()],
        ids=["radial", "rect"],
    )
    def test_roundtrip_preserves_semantics(self, template):
        restored = FunctionTemplate.from_xml(template.to_xml())
        assert restored.name == template.name
        assert restored.params == template.params
        assert restored.shape is template.shape
        params = dict(
            zip(template.params, (10.0, 5.0, 30.0, 40.0))
        )
        assert restored.region_for(params) == template.region_for(params)

    def test_polytope_roundtrip(self):
        template = FunctionTemplate(
            name="fBand",
            params=("w",),
            shape=Shape.POLYTOPE,
            dims=2,
            point_exprs=(parse_expression("x"), parse_expression("y")),
            low_exprs=(
                parse_expression("-1 * $w"), parse_expression("-1 * $w"),
            ),
            high_exprs=(parse_expression("$w"), parse_expression("$w")),
            halfspace_specs=(
                HalfspaceSpec(
                    normal=(parse_expression("1"), parse_expression("1")),
                    offset=parse_expression("$w"),
                ),
            ),
        )
        restored = FunctionTemplate.from_xml(template.to_xml())
        region = restored.region_for({"w": 2.0})
        assert region.contains_point((0.5, 0.5))
        assert not region.contains_point((1.5, 1.0))

    def test_malformed_xml_raises(self):
        with pytest.raises(TemplateError):
            FunctionTemplate.from_xml("<oops")

    def test_wrong_root_tag_raises(self):
        with pytest.raises(TemplateError, match="FunctionTemplate"):
            FunctionTemplate.from_xml("<Wrong/>")

    def test_unknown_shape_raises(self):
        xml = (
            "<FunctionTemplate><Name>f</Name><Params/>"
            "<Shape>blob</Shape><NumDimensions>2</NumDimensions>"
            "</FunctionTemplate>"
        )
        with pytest.raises(TemplateError, match="unknown shape"):
            FunctionTemplate.from_xml(xml)


class TestValidation:
    def test_sphere_needs_center_and_radius(self):
        with pytest.raises(TemplateError, match="hypersphere"):
            FunctionTemplate(
                name="f",
                params=("a",),
                shape=Shape.HYPERSPHERE,
                dims=2,
                point_exprs=(
                    parse_expression("x"), parse_expression("y"),
                ),
            )

    def test_rect_needs_bounds(self):
        with pytest.raises(TemplateError, match="hyperrect"):
            FunctionTemplate(
                name="f",
                params=("a",),
                shape=Shape.HYPERRECT,
                dims=2,
                point_exprs=(
                    parse_expression("x"), parse_expression("y"),
                ),
                low_exprs=(parse_expression("$a"),),
                high_exprs=(parse_expression("$a"),),
            )

    def test_point_expr_arity_checked(self):
        with pytest.raises(TemplateError, match="point expressions"):
            FunctionTemplate(
                name="f",
                params=(),
                shape=Shape.HYPERRECT,
                dims=2,
                point_exprs=(parse_expression("x"),),
                low_exprs=(
                    parse_expression("0"), parse_expression("0"),
                ),
                high_exprs=(
                    parse_expression("1"), parse_expression("1"),
                ),
            )

    def test_non_numeric_template_expression_raises(self):
        template = FunctionTemplate(
            name="f",
            params=("a",),
            shape=Shape.HYPERRECT,
            dims=1,
            point_exprs=(parse_expression("x"),),
            low_exprs=(parse_expression("$a"),),
            high_exprs=(parse_expression("$a"),),
        )
        with pytest.raises(TemplateError, match="expected a number"):
            template.region_for({"a": "not-a-number"})
