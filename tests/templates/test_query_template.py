"""Query template validation: the paper's four properties, statically."""

import pytest

from repro.templates.errors import TemplateError
from repro.templates.query_template import QueryTemplate
from repro.templates.skyserver_templates import (
    radial_function_template,
    radial_query_template,
)


def make(sql, **kwargs):
    return QueryTemplate.from_sql(
        template_id=kwargs.pop("template_id", "t"),
        sql=sql,
        function_template=kwargs.pop(
            "function_template", radial_function_template()
        ),
        key_column=kwargs.pop("key_column", "objID"),
    )


class TestStructure:
    def test_builtin_radial_template_is_valid(self):
        template = radial_query_template()
        assert template.parameter_names == [
            "ra", "dec", "radius", "r_min", "r_max",
        ]

    def test_from_clause_must_call_function(self):
        with pytest.raises(TemplateError, match="table-valued function"):
            make("SELECT objID, cx, cy, cz FROM PhotoPrimary")

    def test_function_name_must_match_template(self):
        with pytest.raises(TemplateError, match="function template"):
            make("SELECT objID, cx, cy, cz FROM fOther($ra, $dec, $r) n")

    def test_arity_must_match(self):
        with pytest.raises(TemplateError, match="arguments"):
            make("SELECT objID, cx, cy, cz FROM fGetNearbyObjEq($ra) n")

    def test_point_attributes_must_be_selected(self):
        # Missing cz: the proxy could not re-evaluate cached tuples.
        with pytest.raises(TemplateError, match="cz"):
            make(
                "SELECT n.objID, n.cx, n.cy "
                "FROM fGetNearbyObjEq($ra, $dec, $r) n"
            )

    def test_key_column_must_be_selected(self):
        with pytest.raises(TemplateError, match="key column"):
            make(
                "SELECT n.cx, n.cy, n.cz "
                "FROM fGetNearbyObjEq($ra, $dec, $r) n"
            )

    def test_select_star_is_accepted(self):
        template = make("SELECT * FROM fGetNearbyObjEq($ra, $dec, $r) n")
        assert template.statement.star

    def test_join_must_be_equi_join(self):
        with pytest.raises(TemplateError, match="equi-join"):
            make(
                "SELECT n.objID, n.cx, n.cy, n.cz "
                "FROM fGetNearbyObjEq($ra, $dec, $r) n "
                "JOIN PhotoPrimary p ON n.objID < p.objID"
            )

    def test_unparsable_sql_raises(self):
        with pytest.raises(TemplateError, match="cannot parse"):
            make("SELECT FROM WHERE")


class TestDeterminismValidation:
    def test_deterministic_function_passes(self, origin):
        radial_query_template().validate(origin.catalog.functions)

    def test_nondeterministic_function_fails(self, origin):
        from repro.sqlparser.parser import parse_expression
        from repro.templates.function_template import FunctionTemplate, Shape

        ftemplate = FunctionTemplate(
            name="fRandomSample",
            params=("count",),
            shape=Shape.HYPERRECT,
            dims=2,
            point_exprs=(
                parse_expression("ra"), parse_expression("dec"),
            ),
            low_exprs=(
                parse_expression("0"), parse_expression("0"),
            ),
            high_exprs=(
                parse_expression("$count"), parse_expression("$count"),
            ),
        )
        template = QueryTemplate.from_sql(
            "t.random",
            "SELECT objID, ra, dec FROM fRandomSample($count) n",
            ftemplate,
            key_column="objID",
        )
        with pytest.raises(TemplateError, match="non-deterministic"):
            template.validate(origin.catalog.functions)

    def test_unregistered_function_fails(self, origin):
        template = make(
            "SELECT objID, cx, cy, cz FROM fGetNearbyObjEq($a, $b, $c) n",
            function_template=radial_function_template(),
        )
        import dataclasses

        renamed = dataclasses.replace(
            template,
            function_template=dataclasses.replace(
                template.function_template, name="fGetNearbyObjEq"
            ),
        )
        # Simulate an origin that never registered the function.
        from repro.udf.registry import FunctionRegistry

        with pytest.raises(TemplateError, match="not registered"):
            renamed.validate(FunctionRegistry())


class TestBinding:
    def test_function_params_map_positionally(self):
        template = radial_query_template()
        params = {
            "ra": 164.0, "dec": 8.0, "radius": 10.0,
            "r_min": 0.0, "r_max": 30.0,
        }
        assert template.function_params(params) == {
            "ra": 164.0, "dec": 8.0, "radius": 10.0,
        }

    def test_region_for_binding(self):
        template = radial_query_template()
        region = template.region_for(
            {
                "ra": 164.0, "dec": 8.0, "radius": 10.0,
                "r_min": 0.0, "r_max": 30.0,
            }
        )
        assert region.dims == 3

    def test_expression_arguments_are_evaluated(self):
        template = make(
            "SELECT objID, cx, cy, cz "
            "FROM fGetNearbyObjEq($ra + 1.0, $dec, $r * 2) n"
        )
        params = template.function_params({"ra": 10.0, "dec": 0.0, "r": 3.0})
        assert params == {"ra": 11.0, "dec": 0.0, "radius": 6.0}
