"""The Nearest-object template: TOP 1 by distance, safely cached."""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryStatus
from repro.skydata.sphere import angular_distance_arcmin
from repro.templates.skyserver_templates import NEAREST_TEMPLATE_ID


class TestExecution:
    def test_returns_the_actual_nearest(self, origin, radial_params):
        params = dict(radial_params, radius=20.0)
        bound = origin.templates.bind(NEAREST_TEMPLATE_ID, params)
        result = origin.execute_bound(bound).result
        assert len(result) == 1
        # Verify against the catalog.
        table = origin.catalog.table("PhotoPrimary")
        schema = table.schema
        best = min(
            (
                angular_distance_arcmin(
                    params["ra"], params["dec"],
                    row[schema.position("ra")],
                    row[schema.position("dec")],
                ),
                row[schema.position("objID")],
            )
            for row in table.rows
        )
        key = result.schema.position("objID")
        assert result.rows[0][key] == best[1]

    def test_empty_cone_returns_nothing(self, origin, radial_params):
        params = dict(radial_params, radius=0.01)
        bound = origin.templates.bind(NEAREST_TEMPLATE_ID, params)
        result = origin.execute_bound(bound).result
        assert len(result) <= 1

    def test_form_binding_uses_default_radius(self, origin):
        bound = origin.templates.bind_form(
            "Nearest", {"ra": "164", "dec": "8"}
        )
        assert bound.params["radius"] == 3.0
        assert bound.top == 1


class TestCachingSafety:
    def test_exact_repeat_hits(self, origin, radial_params):
        proxy = FunctionProxy(origin, origin.templates)
        params = dict(radial_params, radius=15.0)
        bound = origin.templates.bind(NEAREST_TEMPLATE_ID, params)
        proxy.serve(bound)
        repeat = proxy.serve(bound)
        assert repeat.record.status is QueryStatus.EXACT

    def test_contained_nearest_is_not_answered_from_cache(
        self, origin, radial_params
    ):
        """The nearest object of a wide cone is NOT necessarily the
        nearest of a narrow one pointing slightly elsewhere — and the
        cached single-row result cannot prove anything about a
        sub-region.  The truncation guard must force a forward."""
        proxy = FunctionProxy(origin, origin.templates)
        wide = origin.templates.bind(
            NEAREST_TEMPLATE_ID, dict(radial_params, radius=20.0)
        )
        first = proxy.serve(wide)
        narrow_params = dict(
            radial_params, radius=6.0, ra=radial_params["ra"] + 0.05
        )
        narrow = origin.templates.bind(NEAREST_TEMPLATE_ID, narrow_params)
        response = proxy.serve(narrow)
        assert response.record.contacted_origin
        expected = origin.execute_bound(narrow).result
        assert response.result == expected
        assert first.result is not None
