"""Template manager registration and binding."""

import pytest

from repro.templates.errors import TemplateError
from repro.templates.manager import TemplateManager
from repro.templates.skyserver_templates import (
    RADIAL_TEMPLATE_ID,
    RECT_TEMPLATE_ID,
    radial_function_template,
    radial_info_file,
    radial_query_template,
    register_skyserver_templates,
)


@pytest.fixture()
def manager():
    manager = TemplateManager()
    register_skyserver_templates(manager)
    return manager


class TestRegistration:
    def test_lookup_is_case_insensitive(self, manager):
        assert manager.query_template(RADIAL_TEMPLATE_ID.upper())
        assert manager.function_template("fgetnearbyobjeq")
        assert manager.info_file("radial")

    def test_duplicate_function_template_rejected(self, manager):
        with pytest.raises(TemplateError, match="already registered"):
            manager.register_function_template(radial_function_template())

    def test_duplicate_query_template_rejected(self, manager):
        with pytest.raises(TemplateError, match="already registered"):
            manager.register_query_template(radial_query_template())

    def test_info_file_needs_known_template(self):
        manager = TemplateManager()
        with pytest.raises(TemplateError, match="unknown query template"):
            manager.register_info_file(radial_info_file())

    def test_unknown_lookups_raise(self, manager):
        with pytest.raises(TemplateError):
            manager.query_template("nope")
        with pytest.raises(TemplateError):
            manager.function_template("nope")
        with pytest.raises(TemplateError):
            manager.info_file("nope")

    def test_ids_and_info_files_listed(self, manager):
        from repro.templates.skyserver_templates import NEAREST_TEMPLATE_ID

        assert set(manager.query_template_ids()) == {
            RADIAL_TEMPLATE_ID, RECT_TEMPLATE_ID, NEAREST_TEMPLATE_ID,
        }
        assert len(manager.info_files()) == 3


class TestBinding:
    def test_bind_builds_statement_and_region(self, manager, radial_params):
        bound = manager.bind(RADIAL_TEMPLATE_ID, radial_params)
        assert "fGetNearbyObjEq(164.0, 8.0, 10.0)" in bound.sql
        assert bound.region.dims == 3
        assert bound.key_column == "objID"
        assert bound.top is None

    def test_cache_key_identity(self, manager, radial_params):
        a = manager.bind(RADIAL_TEMPLATE_ID, radial_params)
        b = manager.bind(RADIAL_TEMPLATE_ID, dict(radial_params))
        assert a.cache_key() == b.cache_key()

    def test_cache_key_differs_on_params(self, manager, radial_params):
        a = manager.bind(RADIAL_TEMPLATE_ID, radial_params)
        other = dict(radial_params, radius=11.0)
        b = manager.bind(RADIAL_TEMPLATE_ID, other)
        assert a.cache_key() != b.cache_key()

    def test_bind_form_end_to_end(self, manager):
        bound = manager.bind_form(
            "Radial", {"ra": "164", "dec": "8", "radius": "10"}
        )
        assert bound.template_id == RADIAL_TEMPLATE_ID
        assert bound.params["r_min"] == -9999.0
