"""The discrete-event loop in isolation."""

import pytest

from repro.sched import EventLoop


class TestEventLoop:
    def test_dispatches_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.at(30.0, lambda: seen.append("c"))
        loop.at(10.0, lambda: seen.append("a"))
        loop.at(20.0, lambda: seen.append("b"))
        assert loop.run() == 3
        assert seen == ["a", "b", "c"]
        assert loop.now_ms == 30.0

    def test_ties_dispatch_in_submission_order(self):
        loop = EventLoop()
        seen = []
        for name in ("first", "second", "third"):
            loop.at(5.0, lambda n=name: seen.append(n))
        loop.run()
        assert seen == ["first", "second", "third"]

    def test_after_is_relative_to_event_time(self):
        loop = EventLoop()
        times = []

        def chain():
            times.append(loop.now_ms)
            if len(times) < 3:
                loop.after(100.0, chain)

        loop.after(50.0, chain)
        loop.run()
        assert times == [50.0, 150.0, 250.0]

    def test_past_times_clamp_to_now(self):
        loop = EventLoop()
        seen = []
        loop.at(100.0, lambda: loop.at(1.0, lambda: seen.append(loop.now_ms)))
        loop.run()
        assert seen == [100.0]

    def test_until_ms_leaves_later_events_pending(self):
        loop = EventLoop()
        seen = []
        loop.at(10.0, lambda: seen.append("early"))
        loop.at(1_000.0, lambda: seen.append("late"))
        assert loop.run(until_ms=500.0) == 1
        assert seen == ["early"]
        assert loop.pending == 1
        assert loop.run() == 1
        assert seen == ["early", "late"]

    def test_max_events_bounds_a_runaway_chain(self):
        loop = EventLoop()

        def forever():
            loop.after(1.0, forever)

        loop.after(1.0, forever)
        assert loop.run(max_events=50) == 50
        assert loop.dispatched == 50

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.after(-1.0, lambda: None)

    def test_callbacks_may_schedule_while_running(self):
        """A closed loop: each completion schedules the next arrival."""
        loop = EventLoop()
        completions = []

        def arrival(n):
            if n <= 3:
                loop.after(10.0, lambda: completion(n))

        def completion(n):
            completions.append((n, loop.now_ms))
            arrival(n + 1)

        arrival(1)
        loop.run()
        assert completions == [(1, 10.0), (2, 20.0), (3, 30.0)]
