"""The event-driven frontend over a real proxy."""

import pytest

from repro.admission import (
    REASON_DEADLINE,
    SHED_SHED_CHEAPEST,
    AdmissionConfig,
    AdmissionController,
)
from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryOutcome, QueryStatus
from repro.sched import EventLoop, ProxyFrontend
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


@pytest.fixture()
def bind(templates):
    def run(ra=164.0, radius=10.0):
        return templates.bind(
            RADIAL_TEMPLATE_ID,
            {
                "ra": ra,
                "dec": 8.0,
                "radius": radius,
                "r_min": -9999.0,
                "r_max": 9999.0,
            },
        )

    return run


@pytest.fixture()
def make_frontend(origin):
    def build(config, **proxy_kwargs):
        proxy = FunctionProxy(
            origin,
            origin.templates,
            admission=AdmissionController(config),
            **proxy_kwargs,
        )
        return ProxyFrontend(proxy, EventLoop())

    return build


class TestFrontend:
    def test_needs_a_controller(self, origin):
        proxy = FunctionProxy(origin, origin.templates)
        with pytest.raises(ValueError):
            ProxyFrontend(proxy, EventLoop())

    def test_submit_serves_and_completes(self, make_frontend, bind):
        frontend = make_frontend(AdmissionConfig(max_inflight=2))
        done = []
        frontend.submit(bind(), on_done=lambda r: done.append(r))
        # Dispatch happened synchronously; completion waits for the
        # service-time event.
        assert frontend.proxy.admission.inflight == 1
        frontend.loop.run()
        assert len(done) == 1
        assert done[0].record.outcome is QueryOutcome.SERVED
        assert frontend.proxy.admission.inflight == 0
        assert frontend.completed == 1

    def test_queue_wait_lands_on_the_record(self, make_frontend, bind):
        frontend = make_frontend(AdmissionConfig(max_inflight=1))
        done = []
        frontend.submit(bind(), on_done=lambda r: done.append(r))
        frontend.submit(
            bind(ra=165.0), on_done=lambda r: done.append(r)
        )
        frontend.loop.run()
        assert len(done) == 2
        first, second = done[0].record, done[1].record
        assert "admit.queue" not in first.steps_ms
        # The second query waited for the first's service time.
        assert second.steps_ms["admit.queue"] == pytest.approx(
            first.response_ms
        )
        assert second.response_ms >= first.response_ms

    def test_overflow_sheds_immediately(self, make_frontend, bind):
        frontend = make_frontend(
            AdmissionConfig(max_inflight=1, max_queue_depth=1)
        )
        outcomes = []
        for index in range(4):
            frontend.submit(
                bind(ra=161.0 + index),
                on_done=lambda r: outcomes.append(r.record.outcome),
            )
        # Two sheds resolved before the loop even runs: slot + queue
        # were full at submit time.
        assert outcomes.count(QueryOutcome.SHED) == 2
        frontend.loop.run()
        assert len(outcomes) == 4
        assert outcomes.count(QueryOutcome.SHED) == 2
        assert frontend.submitted == 4
        assert frontend.rejected == 2

    def test_deadline_drops_become_queued_timeouts(
        self, make_frontend, bind
    ):
        frontend = make_frontend(
            AdmissionConfig(
                max_inflight=1,
                max_queue_depth=4,
                queue_deadline_ms=50.0,
            )
        )
        records = []
        for index in range(3):
            frontend.submit(
                bind(ra=161.0 + index),
                on_done=lambda r: records.append(r.record),
            )
        frontend.loop.run()
        assert len(records) == 3
        timed_out = [
            r for r in records
            if r.outcome is QueryOutcome.QUEUED_TIMEOUT
        ]
        # Service takes seconds, the deadline is 50 ms: both queued
        # queries expired at dispatch time.
        assert len(timed_out) == 2
        for record in timed_out:
            assert record.status is QueryStatus.REJECTED
            assert record.failure_reason == REASON_DEADLINE
            assert record.steps_ms["admit.queue"] > 50.0

    def test_shed_cheapest_eviction_produces_a_record(
        self, make_frontend, bind
    ):
        frontend = make_frontend(
            AdmissionConfig(
                max_inflight=1,
                max_queue_depth=1,
                shed_policy=SHED_SHED_CHEAPEST,
            )
        )
        records = []

        def submit(ra, cost):
            frontend.submit(
                bind(ra=ra),
                cost_hint=cost,
                on_done=lambda r: records.append(r.record),
            )

        submit(161.0, 5.0)  # dispatches into the slot
        submit(162.0, 1.0)  # queued, cheap
        submit(163.0, 9.0)  # evicts the cheap one
        # The evicted query resolved as shed before the loop ran.
        assert len(records) == 1
        assert records[0].outcome is QueryOutcome.SHED
        frontend.loop.run()
        assert len(records) == 3
        served = [
            r for r in records if r.outcome is QueryOutcome.SERVED
        ]
        assert len(served) == 2

    def test_every_submission_yields_exactly_one_record(
        self, make_frontend, bind
    ):
        frontend = make_frontend(
            AdmissionConfig(max_inflight=2, max_queue_depth=2)
        )
        n = 10
        for index in range(n):
            frontend.submit(bind(ra=161.0 + 0.5 * index, radius=2.0))
        frontend.loop.run()
        proxy = frontend.proxy
        assert len(proxy.stats.records) == n
        assert {r.index for r in proxy.stats.records} == set(
            range(1, n + 1)
        )
        assert frontend.completed == n
        assert proxy.admission.inflight == 0
        assert proxy.admission.queue_depth == 0


class TestTelemetryClock:
    """Telemetry lives on the load timeline under the event loop."""

    def test_default_telemetry_clock_is_the_work_clock(self, origin):
        proxy = FunctionProxy(origin, origin.templates)
        assert proxy.telemetry_clock is proxy.clock

    def test_frontend_rebinds_to_the_loop(self, make_frontend):
        frontend = make_frontend(AdmissionConfig(max_inflight=2))
        assert frontend.proxy.telemetry_clock is frontend.loop

    def test_samples_align_to_the_loop_timeline(self, make_frontend, bind):
        from repro.obs import ProxyInstrumentation
        from repro.obs.timeseries import TimeSeriesRecorder

        interval = 500.0
        frontend = make_frontend(
            AdmissionConfig(max_inflight=1, max_queue_depth=8),
            instrumentation=ProxyInstrumentation(
                timeseries=TimeSeriesRecorder(interval_ms=interval)
            ),
        )
        for index in range(6):
            frontend.submit(bind(ra=161.0 + index, radius=2.0))
        frontend.loop.run()
        samples = frontend.proxy.timeseries.samples()
        # Service times are seconds each: serialized dispatch crosses
        # several 500 ms boundaries, stamped in loop (event) time.
        assert samples
        for sample in samples:
            assert sample["t_ms"] % interval == 0.0
            assert sample["t_ms"] <= frontend.loop.now_ms
        # The work clock accumulated the same serial service time, but
        # the telemetry axis is the loop's.
        assert frontend.proxy.telemetry_clock is frontend.loop
