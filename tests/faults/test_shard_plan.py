"""Shard-level fault plans: validation, wire form, draw alignment."""

from __future__ import annotations

import pytest

from repro.faults.errors import FaultPlanError
from repro.faults.shard import (
    SHARD_FAULT_KINDS,
    ShardCrashPlan,
    ShardFaultKind,
    ShardFaultWindow,
)


class TestWindowValidation:
    def test_known_kinds_accepted(self):
        for kind in SHARD_FAULT_KINDS:
            window = ShardFaultWindow("shard-0", kind, 100.0, 200.0)
            assert window.kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown shard fault"):
            ShardFaultWindow("shard-0", "meltdown", 0.0)

    def test_empty_shard_id_rejected(self):
        with pytest.raises(FaultPlanError, match="needs a shard id"):
            ShardFaultWindow("", "crash", 0.0)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultPlanError, match="before t=0"):
            ShardFaultWindow("shard-0", "crash", -1.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(FaultPlanError, match="empty or inverted"):
            ShardFaultWindow("shard-0", "hang", 200.0, 100.0)

    def test_slow_needs_factor_at_least_one(self):
        with pytest.raises(FaultPlanError, match="factor must be >= 1"):
            ShardFaultWindow("shard-0", "slow", 0.0, factor=0.5)

    def test_open_ended_window_active_forever(self):
        window = ShardFaultWindow("shard-0", "crash", 1_000.0)
        assert not window.active(999.0)
        assert window.active(1_000.0)
        assert window.active(1e12)

    def test_closed_window_half_open(self):
        window = ShardFaultWindow("shard-0", "hang", 100.0, 200.0)
        assert window.active(100.0)
        assert window.active(199.9)
        assert not window.active(200.0)


class TestPlanWireForm:
    def test_round_trip(self):
        plan = ShardCrashPlan(
            seed=17,
            faults=(
                ShardFaultWindow("shard-1", "crash", 5_000.0),
                ShardFaultWindow("shard-2", "slow", 0.0, 9_000.0, 3.0),
            ),
            error_rate=0.05,
        )
        assert ShardCrashPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown shard crash"):
            ShardCrashPlan.from_dict({"seed": 1, "chaos": True})

    def test_malformed_window_rejected(self):
        with pytest.raises(FaultPlanError):
            ShardCrashPlan.from_dict(
                {"faults": [{"kind": "crash", "start_ms": 0.0}]}
            )

    def test_error_rate_bounds(self):
        with pytest.raises(FaultPlanError, match="error_rate"):
            ShardCrashPlan(error_rate=1.5)


class TestSessionDeterminism:
    def test_one_draw_per_attempt_keeps_variants_aligned(self):
        """Adding a crash window must not perturb the error-draw
        stream: both sessions see identical transient fates on the
        un-crashed shard."""
        base = ShardCrashPlan(seed=99, error_rate=0.3)
        with_crash = ShardCrashPlan(
            seed=99,
            error_rate=0.3,
            faults=(ShardFaultWindow("shard-0", "crash", 0.0),),
        )
        session_a = base.session()
        session_b = with_crash.session()
        fates_a = []
        fates_b = []
        for step in range(200):
            # Alternate shards; shard-0 is crashed only in plan B.
            shard = f"shard-{step % 2}"
            fates_a.append(session_a.route_attempt(shard, 1.0 * step).kind)
            fates_b.append(session_b.route_attempt(shard, 1.0 * step).kind)
        # Odd steps hit shard-1 in both: identical fate streams.
        assert fates_a[1::2] == fates_b[1::2]
        # Even steps differ only in kind (crash wins), never in draws.
        assert all(k is ShardFaultKind.CRASH for k in fates_b[0::2])

    def test_same_seed_same_stream(self):
        plan = ShardCrashPlan(seed=7, error_rate=0.5)
        first = [
            plan.session().route_attempt("s", 0.0).kind for _ in range(1)
        ]
        second = [
            plan.session().route_attempt("s", 0.0).kind for _ in range(1)
        ]
        assert first == second

    def test_slowdown_factor_multiplies_active_windows(self):
        plan = ShardCrashPlan(
            faults=(
                ShardFaultWindow("s", "slow", 0.0, 100.0, 2.0),
                ShardFaultWindow("s", "slow", 50.0, 150.0, 3.0),
            )
        )
        session = plan.session()
        assert session.slowdown_factor("s", 25.0) == pytest.approx(2.0)
        assert session.slowdown_factor("s", 75.0) == pytest.approx(6.0)
        assert session.slowdown_factor("s", 125.0) == pytest.approx(3.0)
        assert session.slowdown_factor("other", 75.0) == pytest.approx(1.0)

    def test_down_and_crashed_vocabulary(self):
        plan = ShardCrashPlan(
            faults=(
                ShardFaultWindow("dead", "crash", 10.0),
                ShardFaultWindow("stuck", "hang", 10.0, 20.0),
            )
        )
        session = plan.session()
        assert not session.down("dead", 5.0)
        assert session.down("dead", 10.0)
        assert session.crashed("dead", 10.0)
        assert session.down("stuck", 15.0)
        assert not session.crashed("stuck", 15.0)
        assert not session.down("stuck", 20.0)


class TestNewlyDown:
    def test_reports_each_window_once_in_start_order(self):
        plan = ShardCrashPlan(
            faults=(
                ShardFaultWindow("b", "hang", 200.0),
                ShardFaultWindow("a", "crash", 100.0),
            )
        )
        session = plan.session()
        assert session.newly_down(50.0) == []
        first = session.newly_down(250.0)
        assert first == [("a", "crash", 100.0), ("b", "hang", 200.0)]
        # Already-reported transitions never repeat.
        assert session.newly_down(300.0) == []

    def test_incremental_reporting(self):
        plan = ShardCrashPlan(
            faults=(
                ShardFaultWindow("a", "crash", 100.0),
                ShardFaultWindow("b", "crash", 200.0),
            )
        )
        session = plan.session()
        assert session.newly_down(150.0) == [("a", "crash", 100.0)]
        assert session.newly_down(250.0) == [("b", "crash", 200.0)]
