"""Fault plans: validation, wire form, and decision determinism."""

import pytest

from repro.faults.errors import FaultPlanError
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    OutageWindow,
    SlowdownWindow,
)


class TestWindows:
    def test_outage_half_open_interval(self):
        window = OutageWindow(100.0, 200.0)
        assert not window.active(99.9)
        assert window.active(100.0)
        assert window.active(199.9)
        assert not window.active(200.0)

    def test_empty_window_rejected(self):
        with pytest.raises(FaultPlanError):
            OutageWindow(100.0, 100.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(FaultPlanError):
            SlowdownWindow(200.0, 100.0, factor=2.0)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultPlanError):
            OutageWindow(-1.0, 100.0)

    def test_speedup_factor_rejected(self):
        with pytest.raises(FaultPlanError):
            SlowdownWindow(0.0, 100.0, factor=0.5)


class TestPlanValidation:
    def test_rate_out_of_range(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(error_rate=1.5)
        with pytest.raises(FaultPlanError):
            FaultPlan(timeout_rate=-0.1)

    def test_combined_rates_capped(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(error_rate=0.6, timeout_rate=0.6)

    def test_negative_version_bump_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(version_bumps=(-5.0,))


class TestWireForm:
    def test_round_trip(self):
        plan = FaultPlan(
            seed=11,
            outages=(OutageWindow(10.0, 20.0),),
            slowdowns=(SlowdownWindow(5.0, 15.0, factor=3.0),),
            error_rate=0.1,
            timeout_rate=0.05,
            version_bumps=(42.0,),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_defaults_round_trip(self):
        assert FaultPlan.from_dict(FaultPlan().to_dict()) == FaultPlan()

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown"):
            FaultPlan.from_dict({"seed": 1, "chaos": True})

    def test_malformed_window_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"outages": [{"start_ms": 0.0}]})

    def test_non_mapping_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict([1, 2, 3])


class TestSessionDecisions:
    def test_outage_wins_inside_window(self):
        session = FaultPlan(outages=(OutageWindow(0.0, 100.0),)).session()
        assert session.origin_attempt(50.0).kind is FaultKind.OUTAGE
        assert session.origin_attempt(100.0).kind is FaultKind.NONE

    def test_decisions_replay_identically(self):
        plan = FaultPlan(seed=3, error_rate=0.3, timeout_rate=0.3)
        times = [float(t) for t in range(0, 5000, 100)]
        session_a, session_b = plan.session(), plan.session()
        first = [session_a.origin_attempt(t).kind for t in times]
        second = [session_b.origin_attempt(t).kind for t in times]
        assert first == second
        assert FaultKind.ERROR in first  # the rates actually fire
        assert FaultKind.TIMEOUT in first

    def test_one_draw_per_attempt_keeps_streams_aligned(self):
        # An outage window consumes draws exactly like fault-free
        # attempts do, so decisions after the window are identical
        # with and without it.
        times = [float(t) for t in range(0, 3000, 100)]
        base = FaultPlan(seed=9, error_rate=0.4).session()
        with_outage = FaultPlan(
            seed=9, error_rate=0.4, outages=(OutageWindow(0.0, 1000.0),)
        ).session()
        tail_a = [base.origin_attempt(t).kind for t in times][10:]
        tail_b = [with_outage.origin_attempt(t).kind for t in times][10:]
        assert tail_a == tail_b

    def test_slowdown_factors_multiply(self):
        session = FaultPlan(
            slowdowns=(
                SlowdownWindow(0.0, 100.0, factor=2.0),
                SlowdownWindow(50.0, 150.0, factor=3.0),
            )
        ).session()
        assert session.slowdown_factor(25.0) == pytest.approx(2.0)
        assert session.slowdown_factor(75.0) == pytest.approx(6.0)
        assert session.slowdown_factor(125.0) == pytest.approx(3.0)
        assert session.slowdown_factor(200.0) == pytest.approx(1.0)

    def test_version_bumps_pop_once(self):
        session = FaultPlan(version_bumps=(10.0, 20.0, 30.0)).session()
        assert session.due_version_bumps(5.0) == 0
        assert session.due_version_bumps(25.0) == 2
        assert session.due_version_bumps(25.0) == 0  # already applied
        assert tuple(session.pending_version_bumps()) == (30.0,)
        assert session.due_version_bumps(1000.0) == 1
