"""Two identically-seeded faulted runs must be byte-identical."""

from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.core.stats import QueryOutcome
from repro.faults.plan import FaultPlan, OutageWindow, SlowdownWindow
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


def build_plan():
    return FaultPlan(
        seed=21,
        error_rate=0.25,
        timeout_rate=0.15,
        outages=(OutageWindow(40_000.0, 90_000.0),),
        slowdowns=(SlowdownWindow(10_000.0, 30_000.0, factor=3.0),),
        version_bumps=(120_000.0,),
    )


def run_once(origin, queries):
    proxy = FunctionProxy(
        origin, origin.templates, scheme=CachingScheme.FULL_SEMANTIC
    )
    proxy.install_fault_plan(build_plan())
    for bound in queries:
        response = proxy.serve(bound)
        assert response.record is not None  # never an exception
    return proxy


def test_identical_plans_replay_identical_record_streams(
    origin, radial_params, templates
):
    queries = [
        templates.bind(
            RADIAL_TEMPLATE_ID,
            dict(radial_params, ra=150.0 + 2.5 * i, radius=8.0),
        )
        for i in range(40)
    ]
    first = run_once(origin, queries)
    second = run_once(origin, queries)

    stream_a = [r.to_dict(include_wall=False) for r in first.stats.records]
    stream_b = [r.to_dict(include_wall=False) for r in second.stats.records]
    assert stream_a == stream_b
    assert first.clock.now_ms == second.clock.now_ms

    # The plan actually bit: at least one record retried or was not a
    # plain fresh answer, so the equality above is a real statement
    # about fault handling and not about an accidentally clean run.
    outcomes = {r.outcome for r in first.stats.records}
    retried = any(r.retries > 0 for r in first.stats.records)
    assert retried or outcomes != {QueryOutcome.SERVED}
