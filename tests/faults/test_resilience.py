"""Retry policy, circuit breaker, and gateway in isolation."""

import threading
import time
from random import Random

import pytest

from repro.faults.errors import (
    OriginQueryError,
    OriginTimeoutError,
    OriginUnavailable,
    OriginUnavailableError,
)
from repro.faults.resilience import (
    BREAKER_STATE_VALUES,
    BreakerState,
    CircuitBreaker,
    OriginGateway,
    RetryPolicy,
)
from repro.network.clock import SimulatedClock
from repro.server.origin import OriginResponse
from repro.sqlparser.errors import ParseError


class Sink:
    """A charge sink that records (step, ms) pairs."""

    def __init__(self):
        self.charges = []

    def charge(self, step, sim_ms):
        self.charges.append((step, sim_ms))

    def total(self, step):
        return sum(ms for s, ms in self.charges if s == step)


def make_gateway(
    clock=None,
    max_attempts=3,
    failure_threshold=5,
    cooldown_ms=1_000.0,
    jitter_fraction=0.0,
):
    clock = clock or SimulatedClock()
    breaker = CircuitBreaker(
        clock, failure_threshold=failure_threshold, cooldown_ms=cooldown_ms
    )
    gateway = OriginGateway(
        retry=RetryPolicy(
            max_attempts=max_attempts,
            base_backoff_ms=100.0,
            jitter_fraction=jitter_fraction,
            attempt_timeout_ms=500.0,
        ),
        breaker=breaker,
        rng=Random(0),
        failure_rtt_ms=lambda: 300.0,
    )
    return gateway, breaker, clock


def ok_response():
    return OriginResponse(result=None, server_ms=10.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout_ms=0.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_ms=100.0,
            backoff_multiplier=2.0,
            max_backoff_ms=300.0,
            jitter_fraction=0.0,
        )
        rng = Random(0)
        assert policy.backoff_ms(0, rng) == pytest.approx(100.0)
        assert policy.backoff_ms(1, rng) == pytest.approx(200.0)
        assert policy.backoff_ms(2, rng) == pytest.approx(300.0)  # capped
        assert policy.backoff_ms(9, rng) == pytest.approx(300.0)

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(base_backoff_ms=100.0, jitter_fraction=0.5)
        a = [policy.backoff_ms(0, Random(7)) for _ in range(3)]
        assert a[0] == a[1] == a[2]
        assert 100.0 <= a[0] <= 150.0


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(clock, failure_threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_half_open_after_cooldown_then_closes(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            clock, failure_threshold=1, cooldown_ms=1_000.0
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(1_000.0)
        assert breaker.allow()  # the probe attempt
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            clock, failure_threshold=5, cooldown_ms=1_000.0
        )
        for _ in range(5):
            breaker.record_failure()
        clock.advance(1_000.0)
        assert breaker.allow()
        breaker.record_failure()  # a single half-open failure re-opens
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2

    def test_success_resets_failure_streak(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(clock, failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_state_change_hook_fires_once_per_transition(self):
        clock = SimulatedClock()
        seen = []
        breaker = CircuitBreaker(
            clock,
            failure_threshold=1,
            cooldown_ms=100.0,
            on_state_change=lambda s: seen.append(s),
        )
        breaker.record_failure()
        breaker.record_failure()  # already open: no second event
        assert seen == [BreakerState.OPEN]

    def test_gauge_encoding_is_pinned(self):
        assert BREAKER_STATE_VALUES == {
            BreakerState.CLOSED: 0,
            BreakerState.HALF_OPEN: 1,
            BreakerState.OPEN: 2,
        }

    def test_validation(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, cooldown_ms=0.0)


class TestHalfOpenProbeRace:
    """Half-open admits exactly one probe under concurrent serves."""

    def _race_allow(self, breaker, threads=8, seed=1234):
        """Fire ``allow()`` from many threads at once; returns the
        number admitted.  A seeded rng staggers each thread by a tiny
        sleep so the interleaving varies deterministically per seed."""
        rng = Random(seed)
        delays = [rng.random() * 0.002 for _ in range(threads)]
        barrier = threading.Barrier(threads)
        admitted = []
        failures = []

        def attempt(delay):
            try:
                barrier.wait(timeout=10)
                time.sleep(delay)
                if breaker.allow():
                    admitted.append(threading.get_ident())
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        workers = [
            threading.Thread(target=attempt, args=(delay,))
            for delay in delays
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30)
        if failures:
            raise failures[0]
        return len(admitted)

    def test_single_probe_admitted_after_cooldown(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            clock, failure_threshold=1, cooldown_ms=1_000.0
        )
        breaker.record_failure()
        clock.advance(1_000.0)
        assert self._race_allow(breaker) == 1
        assert breaker.state is BreakerState.HALF_OPEN
        # The probe resolves; the breaker closes and admits freely.
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_and_next_cooldown_admits_one(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            clock, failure_threshold=1, cooldown_ms=1_000.0
        )
        breaker.record_failure()
        clock.advance(1_000.0)
        assert self._race_allow(breaker, seed=99) == 1
        breaker.record_failure()  # the probe failed: re-open
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        clock.advance(1_000.0)
        assert self._race_allow(breaker, seed=7) == 1

    def test_probe_refusals_do_not_leak_the_gate(self):
        clock = SimulatedClock()
        breaker = CircuitBreaker(
            clock, failure_threshold=1, cooldown_ms=1_000.0
        )
        breaker.record_failure()
        clock.advance(1_000.0)
        assert breaker.allow()  # the probe
        # Concurrent serves are refused while the probe is in flight...
        assert not breaker.allow()
        assert not breaker.allow()
        # ...and a resolution releases the gate exactly once.
        breaker.record_success()
        assert breaker.allow()
        assert breaker.state is BreakerState.CLOSED


class TestGateway:
    def test_success_passes_through(self):
        gateway, breaker, _ = make_gateway()
        sink = Sink()
        response, retries = gateway.call(ok_response, sink)
        assert response.server_ms == 10.0
        assert retries == 0
        assert sink.charges == []
        assert breaker.state is BreakerState.CLOSED

    def test_transient_failures_retried_with_backoff(self):
        gateway, breaker, _ = make_gateway()
        sink = Sink()
        state = {"left": 2}

        def fn():
            if state["left"]:
                state["left"] -= 1
                raise OriginUnavailableError("injected")
            return ok_response()

        response, retries = gateway.call(fn, sink)
        assert retries == 2
        # Two failed fast attempts charge one empty round trip each...
        assert sink.total("transfer") == pytest.approx(600.0)
        # ...plus two deterministic backoff waits (100, then 200 ms).
        assert sink.total("backoff") == pytest.approx(300.0)
        assert breaker.state is BreakerState.CLOSED  # success reset it

    def test_timeout_charges_full_attempt_timeout(self):
        gateway, _, _ = make_gateway(max_attempts=1)
        sink = Sink()

        def fn():
            raise OriginTimeoutError()

        with pytest.raises(OriginUnavailable) as info:
            gateway.call(fn, sink)
        assert info.value.reason == "timeout"
        assert sink.total("origin") == pytest.approx(500.0)
        assert sink.total("backoff") == 0.0  # no retry budget left

    def test_exhausted_attempts_raise_structured_unavailable(self):
        gateway, _, _ = make_gateway(max_attempts=3)
        sink = Sink()

        def fn():
            raise OriginUnavailableError("down", reason="outage")

        with pytest.raises(OriginUnavailable) as info:
            gateway.call(fn, sink)
        assert info.value.reason == "outage"
        assert info.value.retries == 2

    def test_open_breaker_fails_fast_without_attempt(self):
        gateway, breaker, _ = make_gateway(failure_threshold=1)
        calls = []

        def fn():
            calls.append(1)
            raise OriginUnavailableError("down")

        with pytest.raises(OriginUnavailable):
            gateway.call(fn, Sink())
        assert breaker.state is BreakerState.OPEN
        attempts_before = len(calls)
        with pytest.raises(OriginUnavailable) as info:
            gateway.call(fn, Sink())
        assert info.value.reason == "breaker-open"
        assert len(calls) == attempts_before  # the origin was never hit

    def test_query_error_not_retried_and_not_a_breaker_failure(self):
        gateway, breaker, _ = make_gateway()
        calls = []

        def fn():
            calls.append(1)
            raise ParseError("syntax error near FROM")

        with pytest.raises(OriginQueryError) as info:
            gateway.call(fn, Sink())
        assert len(calls) == 1  # retrying cannot fix a bad query
        assert info.value.reason == "query-error"
        assert breaker.state is BreakerState.CLOSED

    def test_listener_sees_retries_and_failures(self):
        events = []

        class Listener:
            def origin_retry(self):
                events.append("retry")

            def origin_failure(self, reason):
                events.append(f"fail:{reason}")

        clock = SimulatedClock()
        breaker = CircuitBreaker(clock, failure_threshold=10)
        gateway = OriginGateway(
            retry=RetryPolicy(max_attempts=2, jitter_fraction=0.0),
            breaker=breaker,
            rng=Random(0),
            failure_rtt_ms=lambda: 1.0,
            listener=Listener(),
        )

        def fn():
            raise OriginUnavailableError("down")

        with pytest.raises(OriginUnavailable):
            gateway.call(fn, Sink())
        assert events == ["retry", "fail:transient"]
