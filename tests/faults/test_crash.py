"""Crash plans: validation, wire form, and seeded tail damage."""

import pytest

from repro.faults.crash import CrashPlan, CrashSession, DAMAGE_KINDS
from repro.faults.errors import FaultPlanError


class TestPlanValidation:
    def test_defaults(self):
        plan = CrashPlan()
        assert plan.seed == 0
        assert plan.crash_after_records == ()
        assert plan.damage == "truncate"
        assert plan.tail_window_bytes == 64

    def test_unknown_damage_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="damage must be one of"):
            CrashPlan(damage="shred")

    def test_tail_window_must_be_positive(self):
        with pytest.raises(FaultPlanError, match="tail window"):
            CrashPlan(tail_window_bytes=0)

    def test_crash_points_before_first_record_rejected(self):
        with pytest.raises(FaultPlanError, match="before the first record"):
            CrashPlan(crash_after_records=(0,))

    def test_duplicate_crash_points_rejected(self):
        with pytest.raises(FaultPlanError, match="duplicate"):
            CrashPlan(crash_after_records=(3, 3))

    def test_crash_points_are_sorted(self):
        plan = CrashPlan(crash_after_records=(9, 2, 5))
        assert plan.crash_after_records == (2, 5, 9)


class TestWireForm:
    def test_round_trip(self):
        plan = CrashPlan(
            seed=7,
            crash_after_records=(2, 8),
            damage="bitflip",
            tail_window_bytes=32,
        )
        rebuilt = CrashPlan.from_dict(plan.to_dict())
        assert rebuilt.to_dict() == plan.to_dict()

    def test_empty_payload_gives_defaults(self):
        assert CrashPlan.from_dict({}).to_dict() == CrashPlan().to_dict()

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown crash plan"):
            CrashPlan.from_dict({"seed": 1, "kaboom": True})

    def test_non_mapping_rejected(self):
        with pytest.raises(FaultPlanError, match="JSON object"):
            CrashPlan.from_dict([1, 2])

    def test_malformed_values_rejected(self):
        with pytest.raises(FaultPlanError, match="malformed crash plan"):
            CrashPlan.from_dict({"crash_after_records": ["soon"]})


class TestSession:
    def test_should_crash_pops_points_in_order(self):
        session = CrashPlan(crash_after_records=(2, 4)).session()
        assert session.pending_crash_points() == (2, 4)
        assert not session.should_crash(1)
        assert session.should_crash(2)
        assert session.pending_crash_points() == (4,)
        assert not session.should_crash(3)
        assert session.should_crash(4)
        assert not session.should_crash(5)
        assert session.crashes_fired == 2

    def test_overshoot_still_fires(self):
        # If appends raced past the scheduled point, the next check fires.
        session = CrashPlan(crash_after_records=(2,)).session()
        assert session.should_crash(10)

    def test_sessions_are_independent(self):
        plan = CrashPlan(crash_after_records=(1,))
        first, second = plan.session(), plan.session()
        assert first.should_crash(1)
        assert second.should_crash(1)  # fresh queue per session


@pytest.fixture()
def journal_file(tmp_path):
    path = tmp_path / "journal.bin"
    path.write_bytes(bytes(range(256)))
    return path


class TestDamage:
    def test_none_leaves_the_file_alone(self, journal_file):
        before = journal_file.read_bytes()
        report = CrashPlan(damage="none").session().apply_damage(
            journal_file
        )
        assert report == {"damage": "none", "bytes": 0}
        assert journal_file.read_bytes() == before

    def test_missing_file_absorbs_damage(self, tmp_path):
        report = CrashPlan(damage="truncate").session().apply_damage(
            tmp_path / "absent.bin"
        )
        assert report == {"damage": "none", "bytes": 0}

    def test_empty_file_absorbs_damage(self, tmp_path):
        path = tmp_path / "journal.bin"
        path.write_bytes(b"")
        report = CrashPlan(damage="bitflip").session().apply_damage(path)
        assert report == {"damage": "none", "bytes": 0}
        assert path.read_bytes() == b""

    def test_truncate_cuts_within_the_tail_window(self, journal_file):
        before = journal_file.read_bytes()
        report = (
            CrashPlan(seed=5, damage="truncate", tail_window_bytes=16)
            .session()
            .apply_damage(journal_file)
        )
        cut = report["bytes"]
        assert 1 <= cut <= 16
        assert journal_file.read_bytes() == before[:-cut]

    def test_truncate_never_cuts_past_the_file(self, tmp_path):
        path = tmp_path / "journal.bin"
        path.write_bytes(b"abc")
        report = (
            CrashPlan(seed=1, damage="truncate", tail_window_bytes=64)
            .session()
            .apply_damage(path)
        )
        assert 1 <= report["bytes"] <= 3
        assert path.stat().st_size == 3 - report["bytes"]

    def test_bitflip_flips_exactly_one_bit_in_the_tail(self, journal_file):
        before = journal_file.read_bytes()
        report = (
            CrashPlan(seed=9, damage="bitflip", tail_window_bytes=16)
            .session()
            .apply_damage(journal_file)
        )
        after = journal_file.read_bytes()
        assert len(after) == len(before)
        diffs = [
            i for i, (a, b) in enumerate(zip(before, after)) if a != b
        ]
        assert diffs == [report["offset"]]
        assert report["offset"] >= len(before) - 16
        changed = before[diffs[0]] ^ after[diffs[0]]
        assert changed == 1 << report["bit"]

    @pytest.mark.parametrize("damage", DAMAGE_KINDS)
    def test_damage_is_seed_deterministic(self, tmp_path, damage):
        payload = bytes(range(200))
        outcomes = []
        for run in ("a", "b"):
            path = tmp_path / f"journal-{run}.bin"
            path.write_bytes(payload)
            plan = CrashPlan(seed=42, damage=damage, tail_window_bytes=32)
            outcomes.append(
                (plan.session().apply_damage(path), path.read_bytes())
            )
        assert outcomes[0] == outcomes[1]
