"""The proxy under origin faults: retry, breaker, degradation."""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.core.stats import QueryOutcome, QueryStatus
from repro.faults.errors import OriginUnavailableError
from repro.faults.plan import FaultPlan, OutageWindow
from repro.faults.resilience import (
    BreakerState,
    DegradationPolicy,
    ResilienceConfig,
)
from repro.sqlparser.errors import ParseError
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID

ALWAYS_DOWN = FaultPlan(outages=(OutageWindow(0.0, 1e12),))


@pytest.fixture()
def make_proxy(origin):
    def build(scheme=CachingScheme.FULL_SEMANTIC, **kwargs):
        return FunctionProxy(origin, origin.templates, scheme=scheme,
                             **kwargs)

    return build


@pytest.fixture()
def bind(templates, radial_params):
    def run(**overrides):
        return templates.bind(
            RADIAL_TEMPLATE_ID, dict(radial_params, **overrides)
        )

    return run


def drive_breaker_open(proxy, bind):
    """Fail cache-missing queries until the breaker opens."""
    ra = 100.0
    while proxy.breaker.state is not BreakerState.OPEN:
        proxy.serve(bind(ra=ra, radius=0.5))
        ra += 5.0


class FlakyOrigin:
    """Delegating wrapper failing the first N origin executions."""

    def __init__(self, inner, failures, exc_factory=None):
        self._inner = inner
        self._left = failures
        self._exc_factory = exc_factory or (
            lambda: OriginUnavailableError("injected flake")
        )

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def _maybe_fail(self):
        if self._left > 0:
            self._left -= 1
            raise self._exc_factory()

    def execute_bound(self, bound):
        self._maybe_fail()
        return self._inner.execute_bound(bound)

    def execute_remainder(self, statement, n_holes):
        self._maybe_fail()
        return self._inner.execute_remainder(statement, n_holes)


class TestRetries:
    def test_transient_failure_retried_to_success(
        self, make_proxy, bind, origin
    ):
        proxy = make_proxy()
        proxy.origin = FlakyOrigin(origin, failures=2)
        response = proxy.serve(bind())
        record = response.record
        assert record.outcome is QueryOutcome.SERVED
        assert record.status is QueryStatus.DISJOINT
        assert record.retries == 2
        assert record.steps_ms["backoff"] > 0
        assert len(response.result) > 0
        assert proxy.cache.exact_match(bind()) is not None

    def test_retries_show_up_in_metrics(self, make_proxy, bind, origin):
        proxy = make_proxy()
        proxy.origin = FlakyOrigin(origin, failures=1)
        proxy.serve(bind())
        snapshot = proxy.metrics.snapshot()
        assert snapshot["origin_retries_total"]["values"][""] == 1


class TestOutageDegradation:
    def test_exact_hit_degrades_while_breaker_open(self, make_proxy, bind):
        proxy = make_proxy()
        warm = proxy.serve(bind())
        assert warm.record.outcome is QueryOutcome.SERVED
        proxy.install_fault_plan(ALWAYS_DOWN)
        drive_breaker_open(proxy, bind)
        response = proxy.serve(bind())
        assert response.record.status is QueryStatus.EXACT
        assert response.record.outcome is QueryOutcome.DEGRADED
        assert len(response.result) == len(warm.result)

    def test_contained_degrades_while_breaker_open(self, make_proxy, bind):
        proxy = make_proxy()
        proxy.serve(bind(radius=15.0))
        proxy.install_fault_plan(ALWAYS_DOWN)
        drive_breaker_open(proxy, bind)
        response = proxy.serve(bind(radius=6.0))
        assert response.record.status is QueryStatus.CONTAINED
        assert response.record.outcome is QueryOutcome.DEGRADED

    def test_overlap_degrades_to_partial_cached_portion(
        self, make_proxy, bind
    ):
        proxy = make_proxy()
        warm = proxy.serve(bind(radius=12.0))
        proxy.install_fault_plan(ALWAYS_DOWN)
        drive_breaker_open(proxy, bind)
        shifted = bind(ra=164.25, radius=12.0)
        response = proxy.serve(shifted)
        record = response.record
        assert record.outcome is QueryOutcome.PARTIAL
        assert record.status is QueryStatus.OVERLAP
        assert record.tuples_from_cache == len(response.result)
        assert 0 < len(response.result) < len(warm.result) * 2
        # The incomplete region must not be cached as if it were full.
        assert proxy.cache.exact_match(shifted) is None

    def test_uncacheable_query_fails_structurally(self, make_proxy, bind):
        proxy = make_proxy()
        proxy.install_fault_plan(ALWAYS_DOWN)
        response = proxy.serve(bind())
        record = response.record
        assert record.status is QueryStatus.FAILED
        assert record.outcome is QueryOutcome.FAILED
        assert record.failure_reason == "outage"
        assert record.retries == 2  # three attempts, two retries
        assert len(response.result) == 0
        assert not record.answered

    def test_stale_serve_can_be_disallowed(self, make_proxy, bind):
        proxy = make_proxy(
            resilience=ResilienceConfig(
                degradation=DegradationPolicy(stale_ok=False)
            )
        )
        proxy.serve(bind())
        proxy.install_fault_plan(ALWAYS_DOWN)
        drive_breaker_open(proxy, bind)
        response = proxy.serve(bind())
        assert response.record.outcome is QueryOutcome.FAILED
        assert response.record.failure_reason == "stale-disallowed"

    def test_partial_can_be_disallowed(self, make_proxy, bind):
        proxy = make_proxy(
            resilience=ResilienceConfig(
                degradation=DegradationPolicy(partial_ok=False)
            )
        )
        proxy.serve(bind(radius=12.0))
        proxy.install_fault_plan(ALWAYS_DOWN)
        response = proxy.serve(bind(ra=164.25, radius=12.0))
        assert response.record.outcome is QueryOutcome.FAILED

    def test_no_uncaught_exceptions_across_a_whole_outage(
        self, make_proxy, bind
    ):
        proxy = make_proxy()
        proxy.install_fault_plan(ALWAYS_DOWN)
        for step in range(8):
            response = proxy.serve(bind(ra=150.0 + step, radius=1.0))
            assert response.record.outcome is QueryOutcome.FAILED
        assert proxy.stats.answered_fraction == 0.0


class TestRecovery:
    def test_breaker_recloses_after_outage_ends(self, make_proxy, bind):
        proxy = make_proxy()
        proxy.install_fault_plan(ALWAYS_DOWN)
        drive_breaker_open(proxy, bind)
        proxy.install_fault_plan(None)  # origin restored
        # Still open until the cooldown elapses on the simulated clock.
        blocked = proxy.serve(bind())
        assert blocked.record.failure_reason == "breaker-open"
        proxy.clock.advance(proxy.resilience.breaker_cooldown_ms)
        probe = proxy.serve(bind())
        assert probe.record.outcome is QueryOutcome.SERVED
        assert proxy.breaker.state is BreakerState.CLOSED

    def test_degraded_responses_counted_by_kind(self, make_proxy, bind):
        proxy = make_proxy()
        proxy.serve(bind())
        proxy.install_fault_plan(ALWAYS_DOWN)
        drive_breaker_open(proxy, bind)
        proxy.serve(bind())  # degraded exact hit
        snapshot = proxy.metrics.snapshot()
        degraded = snapshot["degraded_responses_total"]["values"]
        assert degraded['{kind="degraded"}'] == 1
        assert degraded['{kind="failed"}'] >= 2
        assert snapshot["breaker_state"]["values"][""] == 2  # open


class TestQueryErrorWrapping:
    def test_origin_query_error_becomes_failed_outcome(
        self, make_proxy, bind, origin
    ):
        proxy = make_proxy()
        proxy.origin = FlakyOrigin(
            origin, failures=99, exc_factory=lambda: ParseError("bad SQL")
        )
        response = proxy.serve(bind())
        record = response.record
        assert record.status is QueryStatus.FAILED
        assert record.outcome is QueryOutcome.FAILED
        assert record.failure_reason == "query-error"
        assert record.retries == 0  # not retryable
        # A query-level error is not origin unhealthiness.
        assert proxy.breaker.state is BreakerState.CLOSED
