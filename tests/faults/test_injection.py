"""Fault-injecting wrappers around the origin and the topology."""

import pytest

from repro.faults.errors import OriginTimeoutError, OriginUnavailableError
from repro.faults.injection import FaultyOrigin, FaultyTopology
from repro.faults.plan import (
    FaultPlan,
    OutageWindow,
    SlowdownWindow,
)
from repro.network.clock import SimulatedClock
from repro.network.link import Topology
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID


@pytest.fixture()
def bound(origin, radial_params):
    return origin.templates.bind(RADIAL_TEMPLATE_ID, radial_params)


def wrap(origin, plan, clock=None):
    clock = clock or SimulatedClock()
    return FaultyOrigin(origin, plan.session(), clock), clock


class TestFaultyOrigin:
    def test_transparent_when_no_fault_scheduled(self, origin, bound):
        faulty, _ = wrap(origin, FaultPlan())
        direct = origin.execute_bound(bound)
        injected = faulty.execute_bound(bound)
        assert injected.server_ms == direct.server_ms
        assert len(injected.result) == len(direct.result)

    def test_delegates_attributes(self, origin):
        faulty, _ = wrap(origin, FaultPlan())
        assert faulty.catalog is origin.catalog
        assert faulty.templates is origin.templates
        assert faulty.inner is origin

    def test_outage_window_raises(self, origin, bound):
        faulty, clock = wrap(
            origin, FaultPlan(outages=(OutageWindow(0.0, 1_000.0),))
        )
        with pytest.raises(OriginUnavailableError) as info:
            faulty.execute_bound(bound)
        assert info.value.reason == "outage"
        clock.advance(1_000.0)  # past the window: healthy again
        assert len(faulty.execute_bound(bound).result) > 0

    def test_timeout_rate_raises_timeout(self, origin, bound):
        faulty, _ = wrap(origin, FaultPlan(timeout_rate=1.0))
        with pytest.raises(OriginTimeoutError):
            faulty.execute_bound(bound)

    def test_slowdown_scales_server_ms(self, origin, bound):
        faulty, _ = wrap(
            origin,
            FaultPlan(slowdowns=(SlowdownWindow(0.0, 1e9, factor=4.0),)),
        )
        direct = origin.execute_bound(bound)
        slowed = faulty.execute_bound(bound)
        assert slowed.server_ms == pytest.approx(4.0 * direct.server_ms)
        assert len(slowed.result) == len(direct.result)

    def test_version_bumps_applied_once_due(self, origin):
        before = origin.data_version
        faulty, clock = wrap(origin, FaultPlan(version_bumps=(500.0,)))
        assert faulty.data_version == before  # not due yet
        clock.advance(600.0)
        assert faulty.data_version == before + 1
        assert faulty.data_version == before + 1  # applied exactly once


class TestFaultyTopology:
    def test_origin_hop_scaled_during_window(self):
        clock = SimulatedClock()
        plan = FaultPlan(
            slowdowns=(SlowdownWindow(0.0, 1_000.0, factor=5.0),)
        )
        inner = Topology()
        faulty = FaultyTopology(inner, plan.session(), clock)
        base = inner.origin_round_trip_ms(1_000)
        assert faulty.origin_round_trip_ms(1_000) == pytest.approx(
            5.0 * base
        )
        clock.advance(1_000.0)
        assert faulty.origin_round_trip_ms(1_000) == pytest.approx(base)

    def test_client_hop_never_scaled(self):
        clock = SimulatedClock()
        plan = FaultPlan(
            slowdowns=(SlowdownWindow(0.0, 1_000.0, factor=5.0),)
        )
        inner = Topology()
        faulty = FaultyTopology(inner, plan.session(), clock)
        assert faulty.client_round_trip_ms(1_000) == pytest.approx(
            inner.client_round_trip_ms(1_000)
        )

    def test_scaled_delay_reaches_the_recorder(self):
        transfers = []

        class Recorder:
            def record_transfer(self, hop, n_bytes, ms):
                transfers.append((hop, n_bytes, ms))

        clock = SimulatedClock()
        plan = FaultPlan(
            slowdowns=(SlowdownWindow(0.0, 1_000.0, factor=3.0),)
        )
        faulty = FaultyTopology(Topology(), plan.session(), clock)
        instrumented = faulty.instrumented(Recorder())
        charged = instrumented.origin_round_trip_ms(500)
        assert transfers == [("origin", 600 + 500, pytest.approx(charged))]
        assert faulty.request_bytes == instrumented.request_bytes
