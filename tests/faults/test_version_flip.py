"""Cache invalidation when the origin's data version moves.

These tests mutate ``data_version``, so they build a private origin
rather than using the session-shared fixture.
"""

import pytest

from repro.core.proxy import FunctionProxy
from repro.core.schemes import CachingScheme
from repro.core.stats import QueryStatus
from repro.faults.plan import FaultPlan
from repro.server.origin import OriginServer
from repro.skydata.generator import SkyCatalogConfig
from repro.templates.skyserver_templates import RADIAL_TEMPLATE_ID

TINY_SKY = SkyCatalogConfig(
    n_objects=2_000,
    ra_min=160.0,
    ra_max=168.0,
    dec_min=5.0,
    dec_max=11.0,
    seed=7,
)


@pytest.fixture()
def private_origin():
    return OriginServer.skyserver(TINY_SKY)


@pytest.fixture()
def proxy(private_origin):
    return FunctionProxy(
        private_origin,
        private_origin.templates,
        scheme=CachingScheme.FULL_SEMANTIC,
    )


@pytest.fixture()
def bound(private_origin):
    return private_origin.templates.bind(
        RADIAL_TEMPLATE_ID,
        {
            "ra": 164.0,
            "dec": 8.0,
            "radius": 10.0,
            "r_min": -9999.0,
            "r_max": 9999.0,
        },
    )


class TestManualVersionFlip:
    def test_flip_invalidates_exactly_once_then_rewarms(
        self, proxy, private_origin, bound
    ):
        proxy.serve(bound)
        assert proxy.serve(bound).record.status is QueryStatus.EXACT
        assert proxy.invalidations == 0

        private_origin.bump_data_version()
        after_flip = proxy.serve(bound)
        assert after_flip.record.status is QueryStatus.DISJOINT  # cold
        assert proxy.invalidations == 1

        # The flushed cache re-warms and stays warm: no repeat flush.
        assert proxy.serve(bound).record.status is QueryStatus.EXACT
        assert proxy.serve(bound).record.status is QueryStatus.EXACT
        assert proxy.invalidations == 1

    def test_stable_version_never_invalidates(self, proxy, bound):
        for _ in range(4):
            proxy.serve(bound)
        assert proxy.invalidations == 0

    def test_two_flips_invalidate_twice(self, proxy, private_origin, bound):
        proxy.serve(bound)
        private_origin.bump_data_version()
        proxy.serve(bound)
        private_origin.bump_data_version()
        proxy.serve(bound)
        assert proxy.invalidations == 2


class TestPlanDrivenVersionFlip:
    def test_scheduled_bump_invalidates_exactly_once(self, proxy, bound):
        proxy.serve(bound)
        assert proxy.serve(bound).record.status is QueryStatus.EXACT

        # The bump is due mid-trace, once the simulated clock passes
        # its timestamp; the next serve sees the new version.
        due_ms = proxy.clock.now_ms + 1_000.0
        proxy.install_fault_plan(FaultPlan(version_bumps=(due_ms,)))
        before_due = proxy.serve(bound)
        assert before_due.record.status is QueryStatus.EXACT
        assert proxy.invalidations == 0

        proxy.clock.advance(2_000.0)
        after_due = proxy.serve(bound)
        assert after_due.record.status is QueryStatus.DISJOINT
        assert proxy.invalidations == 1

        assert proxy.serve(bound).record.status is QueryStatus.EXACT
        assert proxy.invalidations == 1

    def test_removing_the_plan_does_not_reflush(self, proxy, bound):
        proxy.serve(bound)
        due_ms = proxy.clock.now_ms + 500.0
        proxy.install_fault_plan(FaultPlan(version_bumps=(due_ms,)))
        proxy.clock.advance(1_000.0)
        proxy.serve(bound)
        assert proxy.invalidations == 1
        # Uninstalling restores the raw origin, whose version is the
        # bumped one the proxy already saw.
        proxy.install_fault_plan(None)
        assert proxy.serve(bound).record.status is QueryStatus.EXACT
        assert proxy.invalidations == 1


class TestAdmissionFence:
    """The data-version fence must hold at *admission*, not just at
    query start: a result fetched under version 1 must never be
    planted into a cache that a concurrent serve flushed at version 2
    (REVIEW: the stale entry would serve EXACT hits forever)."""

    def _observation_for(self, proxy, bound, index, fence):
        observation = proxy.obs.observe_query(
            index, bound.template_id, clock=proxy.clock
        )
        observation.data_version = fence
        return observation

    def test_in_flight_result_is_fenced_after_a_flush(
        self, proxy, private_origin, bound
    ):
        # The in-flight query begins under version 1 and fetches its
        # origin result...
        index, fence = proxy._begin_query()
        stale = private_origin.execute_bound(bound).result
        # ...then the origin moves on and another serve flushes.
        private_origin.bump_data_version()
        other = private_origin.templates.bind(
            RADIAL_TEMPLATE_ID,
            {
                "ra": 166.5,
                "dec": 8.0,
                "radius": 1.0,
                "r_min": -9999.0,
                "r_max": 9999.0,
            },
        )
        proxy.serve(other)
        assert proxy.invalidations == 1
        # The in-flight query reaches admission: fenced off, nothing
        # stale enters the flushed cache.
        with self._observation_for(
            proxy, bound, index, fence
        ) as observation:
            entry, report = proxy._stage_admit(
                bound, stale, stale, observation
            )
        assert entry is None
        assert report.stored_bytes == 0
        assert proxy.cache.exact_match(bound) is None
        # The next real serve goes to the origin, not a stale entry.
        assert proxy.serve(bound).record.contacted_origin

    def test_matching_fence_admits_normally(
        self, proxy, private_origin, bound
    ):
        index, fence = proxy._begin_query()
        result = private_origin.execute_bound(bound).result
        with self._observation_for(
            proxy, bound, index, fence
        ) as observation:
            entry, _report = proxy._stage_admit(
                bound, result, result, observation
            )
        assert entry is not None
        assert proxy.cache.exact_match(bound) is entry
