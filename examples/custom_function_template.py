"""A non-astronomy function proxy: the paper's "similar books" example.

Section 3.1 of the paper: "a function of returning books that are
similar to a given book, with a certain similarity distance metric over
several parameters, can be abstracted into a hypersphere selection
query."  This example builds exactly that from the library's public
pieces — no SkyServer involved:

* a ``Books`` table with normalized feature coordinates
  (price, pages, publication year);
* a table-valued UDF ``fSimilarBooks(price, pages, year, distance)``
  returning all books within ``distance`` in feature space;
* a function template declaring it a 3-d hypersphere;
* a query template joining back to ``Books`` for attribute expansion;
* a function proxy answering zoomed-in searches from cache.

Run:  python examples/custom_function_template.py
"""

import math
import random

from repro import (
    CachingScheme,
    FunctionProxy,
    FunctionTemplate,
    OriginServer,
    QueryTemplate,
    Shape,
    TemplateInfoFile,
    TemplateManager,
)
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import ColumnType
from repro.sqlparser.parser import parse_expression
from repro.udf.registry import TableFunction

# Feature normalization: price in [0, 200] dollars, pages in [0, 1500],
# year in [1950, 2010] — each mapped to [0, 1] so Euclidean distance is
# a sane similarity metric.
PRICE_SCALE = 200.0
PAGES_SCALE = 1500.0
YEAR_BASE, YEAR_SPAN = 1950.0, 60.0

BOOKS_SCHEMA = Schema.of(
    ("bookID", ColumnType.INT),
    ("title", ColumnType.STR),
    ("price", ColumnType.FLOAT),
    ("pages", ColumnType.INT),
    ("year", ColumnType.INT),
    ("fprice", ColumnType.FLOAT),   # normalized features: the paper's
    ("fpages", ColumnType.FLOAT),   # "result attribute availability"
    ("fyear", ColumnType.FLOAT),    # property needs them in results
)

SIMILAR_SCHEMA = Schema.of(
    ("bookID", ColumnType.INT),
    ("fprice", ColumnType.FLOAT),
    ("fpages", ColumnType.FLOAT),
    ("fyear", ColumnType.FLOAT),
    ("similarity", ColumnType.FLOAT),
)


def build_bookstore(n_books: int = 20_000, seed: int = 7) -> Catalog:
    rng = random.Random(seed)
    books = Table("Books", BOOKS_SCHEMA, primary_key="bookID")
    for book_id in range(1, n_books + 1):
        price = rng.uniform(5.0, 150.0)
        pages = rng.randint(80, 1200)
        year = rng.randint(1955, 2005)
        books.insert(
            (
                book_id,
                f"Book #{book_id}",
                price,
                pages,
                year,
                price / PRICE_SCALE,
                pages / PAGES_SCALE,
                (year - YEAR_BASE) / YEAR_SPAN,
            )
        )
    catalog = Catalog()
    catalog.add_table(books)

    positions = {
        name: BOOKS_SCHEMA.position(name)
        for name in ("bookID", "fprice", "fpages", "fyear")
    }

    def f_similar_books(catalog_, args):
        price, pages, year, distance = (float(a) for a in args)
        center = (
            price / PRICE_SCALE,
            pages / PAGES_SCALE,
            (year - YEAR_BASE) / YEAR_SPAN,
        )
        rows = []
        for row in books.rows:
            point = (
                row[positions["fprice"]],
                row[positions["fpages"]],
                row[positions["fyear"]],
            )
            d = math.dist(center, point)
            if d <= distance:
                rows.append(
                    (row[positions["bookID"]], *point, d)
                )
        rows.sort(key=lambda r: r[-1])
        return rows

    catalog.functions.register_table(
        TableFunction(
            name="fSimilarBooks",
            params=("price", "pages", "year", "distance"),
            schema=SIMILAR_SCHEMA,
            impl=f_similar_books,
            deterministic=True,
            description="Books within a similarity distance of a "
            "reference book's features.",
        )
    )
    return catalog


def build_templates() -> TemplateManager:
    function_template = FunctionTemplate(
        name="fSimilarBooks",
        params=("price", "pages", "year", "distance"),
        shape=Shape.HYPERSPHERE,
        dims=3,
        center_exprs=(
            parse_expression(f"$price / {PRICE_SCALE}"),
            parse_expression(f"$pages / {PAGES_SCALE}"),
            parse_expression(f"($year - {YEAR_BASE}) / {YEAR_SPAN}"),
        ),
        radius_expr=parse_expression("$distance"),
        point_exprs=(
            parse_expression("fprice"),
            parse_expression("fpages"),
            parse_expression("fyear"),
        ),
        description="Similarity search as a 3-d hypersphere in "
        "normalized (price, pages, year) space.",
    )
    query_template = QueryTemplate.from_sql(
        template_id="bookstore.similar",
        sql=(
            "SELECT b.bookID, b.title, b.price, b.pages, b.year, "
            "b.fprice, b.fpages, b.fyear, s.similarity "
            "FROM fSimilarBooks($price, $pages, $year, $distance) s "
            "JOIN Books b ON s.bookID = b.bookID "
            "WHERE b.price BETWEEN $price_min AND $price_max"
        ),
        function_template=function_template,
        key_column="bookID",
        description="The bookstore's 'find similar books' search.",
    )
    manager = TemplateManager()
    manager.register_function_template(function_template)
    manager.register_query_template(query_template)
    manager.register_info_file(
        TemplateInfoFile(
            form_name="SimilarBooks",
            template_id="bookstore.similar",
            field_map={
                "price": "price",
                "pages": "pages",
                "year": "year",
                "distance": "distance",
            },
            defaults={"price_min": 0.0, "price_max": 10_000.0},
        )
    )
    return manager


def main() -> None:
    print("Building the bookstore...")
    catalog = build_bookstore()
    templates = build_templates()
    origin = OriginServer(catalog, templates)
    for template_id in templates.query_template_ids():
        templates.query_template(template_id).validate(catalog.functions)
    proxy = FunctionProxy(
        origin, templates, scheme=CachingScheme.FULL_SEMANTIC
    )

    searches = [
        ("wide search", {"price": "40", "pages": "350", "year": "1995",
                         "distance": "0.12"}),
        ("narrower, nearby", {"price": "42", "pages": "360",
                              "year": "1995", "distance": "0.05"}),
        ("same again", {"price": "42", "pages": "360", "year": "1995",
                        "distance": "0.05"}),
        ("shifted taste", {"price": "55", "pages": "380", "year": "1996",
                           "distance": "0.11"}),
    ]
    print(f"{'request':18} {'status':20} {'books':>5} {'from origin?':>12}")
    for label, fields in searches:
        response = proxy.serve_form("SimilarBooks", fields)
        record = response.record
        print(
            f"{label:18} {record.status.value:20} "
            f"{record.tuples_total:5d} "
            f"{'yes' if record.contacted_origin else 'no':>12}"
        )

    print()
    print("The zoomed-in search was answered from the proxy cache with")
    print("no bookstore contact — the paper's containment case, on a")
    print("completely different domain than the SkyServer.")


if __name__ == "__main__":
    main()
