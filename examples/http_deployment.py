"""The paper's deployment picture over real HTTP.

Starts the origin web site and the function proxy as two Flask servers
on localhost, with the proxy forwarding to the origin through
:class:`repro.webapp.HttpOriginClient` — browser, proxy servlet, and
web site are three genuinely separate HTTP actors, as in the paper's
Figure 4 (Tomcat servlet fronting the SkyServer).

The "browser" below is plain ``urllib``; watch the ``X-Cache-Status``
header change as the cache warms up.

Run:  python examples/http_deployment.py
Requires Flask (pip install repro[http]).
"""

import threading
import time
import urllib.parse
import urllib.request
from wsgiref.simple_server import make_server

from repro import FunctionProxy, OriginServer, SkyCatalogConfig
from repro.webapp import HttpOriginClient, create_origin_app, create_proxy_app

ORIGIN_PORT = 8471
PROXY_PORT = 8472


def start_server(app, port: int) -> None:
    server = make_server("127.0.0.1", port, app)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()


def browse(form: str, fields: dict) -> None:
    query = urllib.parse.urlencode(fields)
    url = f"http://127.0.0.1:{PROXY_PORT}/search/{form}?{query}"
    start = time.perf_counter()
    with urllib.request.urlopen(url) as response:
        body = response.read()
        status = response.headers["X-Cache-Status"]
        proxy_ms = response.headers["X-Proxy-Ms"]
    wall_ms = (time.perf_counter() - start) * 1000
    print(
        f"  {form}({fields}) -> {len(body)} bytes, "
        f"cache status {status}, simulated {float(proxy_ms):.0f} ms, "
        f"wall {wall_ms:.0f} ms"
    )


def main() -> None:
    print("Starting the origin web site...")
    origin = OriginServer.skyserver(SkyCatalogConfig(n_objects=40_000))
    start_server(create_origin_app(origin), ORIGIN_PORT)

    print("Starting the function proxy (bootstrapping templates over "
          "HTTP)...")
    client = HttpOriginClient(f"http://127.0.0.1:{ORIGIN_PORT}")
    proxy = FunctionProxy(client, client.templates)
    start_server(create_proxy_app(proxy), PROXY_PORT)

    print("Browsing through the proxy:")
    browse("Radial", {"ra": 166.0, "dec": 9.0, "radius": 8})
    browse("Radial", {"ra": 166.0, "dec": 9.0, "radius": 8})   # exact
    browse("Radial", {"ra": 166.01, "dec": 9.0, "radius": 3})  # contained
    browse("Radial", {"ra": 166.1, "dec": 9.05, "radius": 7})  # overlap

    with urllib.request.urlopen(
        f"http://127.0.0.1:{PROXY_PORT}/stats"
    ) as response:
        print("Proxy stats:", response.read().decode())


if __name__ == "__main__":
    main()
