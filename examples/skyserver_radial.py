"""The paper's headline experiment, in miniature.

Generates a calibrated Radial-form trace, replays it through the five
proxy configurations (no cache, passive cache, and the three active
caching schemes), and prints the response-time / cache-efficiency
comparison — the same quantities as the paper's Figure 5 / Figure 6,
at example scale.  Use ``benchmarks/`` for the full reproductions.

Run:  python examples/skyserver_radial.py [n_queries]
"""

import sys

from repro import BrowserEmulator, CachingScheme, FunctionProxy, OriginServer
from repro.harness.config import ExperimentScale
from repro.workload.analyzer import analyze_trace
from repro.workload.generator import generate_radial_trace


def main() -> None:
    n_queries = int(sys.argv[1]) if len(sys.argv) > 1 else 700
    scale = ExperimentScale.quick().with_trace_length(n_queries)

    print(f"Building the origin ({scale.sky.n_objects} objects)...")
    origin = OriginServer.skyserver(scale.sky, scale.server_costs)
    trace = generate_radial_trace(scale.trace)
    print(analyze_trace(trace, origin.templates))
    print()

    print(f"{'scheme':18} {'avg resp ms':>11} {'efficiency':>10} "
          f"{'hit ratio':>9} {'origin queries':>14}")
    for scheme in CachingScheme:
        served_before = origin.queries_served
        proxy = FunctionProxy(
            origin,
            origin.templates,
            scheme=scheme,
            costs=scale.proxy_costs,
            topology=scale.topology,
        )
        stats = BrowserEmulator(proxy).run(trace)
        print(
            f"{scheme.value:18} {stats.average_response_ms:11.0f} "
            f"{stats.average_cache_efficiency:10.3f} "
            f"{stats.hit_ratio:9.3f} "
            f"{origin.queries_served - served_before:14d}"
        )

    print()
    print("Shape to observe (paper Figures 5 and 6): no-cache slowest;")
    print("active schemes beat passive; full semantic caching has the")
    print("best efficiency but not the best response time.")


if __name__ == "__main__":
    main()
