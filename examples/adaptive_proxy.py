"""Extensions tour: adaptive overlap handling and replacement policies.

The paper decides *offline* that handling cache-intersecting queries is
not worthwhile (Figure 6).  This example shows the library's two
extension points around that finding:

1. :class:`repro.extensions.AdaptiveProxy` measures forward vs
   remainder costs as it serves and learns the decision online — run
   against two origins (cheap and costly remainders) it converges to
   opposite policies;
2. replacement policies are pluggable; the same trace under a tight
   budget shows how LRU, FIFO, and GreedyDual-Size differ.

Run:  python examples/adaptive_proxy.py
"""

import dataclasses

from repro import BrowserEmulator, FunctionProxy, ServerCostModel
from repro.core.replacement import FifoPolicy, GreedyDualSizePolicy, LruPolicy
from repro.extensions import AdaptiveProxy
from repro.harness.config import ExperimentScale
from repro.server.origin import OriginServer
from repro.workload.generator import generate_radial_trace


def adaptive_demo(scale) -> None:
    print("1. Adaptive overlap handling")
    print("   (overlap-heavy trace; watch the learned decision flip)")
    trace_config = dataclasses.replace(
        scale.trace, n_queries=600, p_repeat=0.1, p_zoom=0.1, p_pan=0.4,
        p_zoom_out=0.0,
    )
    trace = generate_radial_trace(trace_config)
    scenarios = [
        ("costly remainders (the paper's testbed)",
         ServerCostModel(base_ms=1500.0, remainder_surcharge_ms=2000.0,
                         per_hole_ms=200.0)),
        ("cheap remainders (fast origin, slow network)",
         ServerCostModel(base_ms=1500.0, remainder_surcharge_ms=0.0,
                         per_hole_ms=0.0)),
    ]
    for label, costs in scenarios:
        origin = OriginServer.skyserver(scale.sky, costs)
        proxy = AdaptiveProxy(origin, origin.templates,
                              topology=scale.topology,
                              costs=scale.proxy_costs)
        BrowserEmulator(proxy).run(trace)
        state = proxy.adaptive
        verdict = (
            "keep handling overlaps" if state.remainder_pays_off
            else "stop handling overlaps"
        )
        print(f"   {label}:")
        print(f"     forward ~{state.forward_cost.mean:.0f} ms vs "
              f"remainder ~{state.overlap_cost.mean:.0f} ms "
              f"-> learned: {verdict}")
        print(f"     handled {state.overlaps_handled}, declined "
              f"{state.overlaps_declined} of {state.overlaps_seen} "
              "overlaps")


def replacement_demo(scale) -> None:
    print()
    print("2. Replacement policies under a tight cache budget")
    origin = OriginServer.skyserver(scale.sky, scale.server_costs)
    trace = generate_radial_trace(
        dataclasses.replace(scale.trace, n_queries=600)
    )
    print(f"   {'policy':10} {'efficiency':>10} {'evictions':>9}")
    for policy_cls in (LruPolicy, FifoPolicy, GreedyDualSizePolicy):
        proxy = FunctionProxy(
            origin,
            origin.templates,
            cache_bytes=60_000,
            topology=scale.topology,
            costs=scale.proxy_costs,
            replacement_policy=policy_cls(),
        )
        stats = BrowserEmulator(proxy).run(trace)
        print(f"   {policy_cls.name:10} "
              f"{stats.average_cache_efficiency:10.3f} "
              f"{proxy.cache.evictions:9d}")


def main() -> None:
    scale = ExperimentScale.quick()
    adaptive_demo(scale)
    replacement_demo(scale)


if __name__ == "__main__":
    main()
