"""Quickstart: a function proxy answering Radial search form queries.

Builds a synthetic SkyServer, puts a function proxy in front of it, and
submits a handful of form queries that exercise each of the paper's
four dispositions: disjoint (forwarded + cached), exact match,
containment (answered locally), and overlap (probe + remainder query).

Run:  python examples/quickstart.py
"""

from repro import CachingScheme, FunctionProxy, OriginServer, SkyCatalogConfig


def main() -> None:
    print("Building the origin site (synthetic SkyServer)...")
    origin = OriginServer.skyserver(SkyCatalogConfig(n_objects=60_000))
    proxy = FunctionProxy(
        origin, origin.templates, scheme=CachingScheme.FULL_SEMANTIC
    )

    searches = [
        ("a fresh search", {"ra": "165.0", "dec": "8.0", "radius": "10"}),
        ("the same search again", {"ra": "165.0", "dec": "8.0", "radius": "10"}),
        ("zooming in", {"ra": "165.02", "dec": "8.01", "radius": "4"}),
        ("panning aside", {"ra": "165.15", "dec": "8.05", "radius": "9"}),
        ("somewhere else", {"ra": "162.0", "dec": "10.5", "radius": "6"}),
    ]

    print(f"{'request':24} {'status':20} {'rows':>5} {'sim ms':>8} "
          f"{'eff':>5}  origin?")
    for label, fields in searches:
        response = proxy.serve_form("Radial", fields)
        record = response.record
        print(
            f"{label:24} {record.status.value:20} "
            f"{record.tuples_total:5d} {record.response_ms:8.1f} "
            f"{record.cache_efficiency:5.2f}  "
            f"{'yes' if record.contacted_origin else 'no'}"
        )

    print()
    print(f"cache now holds {len(proxy.cache)} entries, "
          f"{proxy.cache.current_bytes / 1024:.1f} KB")
    print(f"origin served {origin.queries_served} queries "
          f"({origin.remainders_served} remainder)")


if __name__ == "__main__":
    main()
