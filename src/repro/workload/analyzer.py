"""Trace analysis: the paper's Section 4.1 workload profile.

Classifies every query of a trace against the set of *all earlier
queries* (an idealized unlimited cache), by pure region reasoning:

* **exact** — an identical query appeared before;
* **contained** — its region is inside some earlier query's region
  (so an unlimited active cache answers it fully);
* **overlap** — it intersects at least one earlier region but is not
  contained in any;
* **disjoint** — no intersection with any earlier region.

The paper reports: 51% fully answerable (17% exact + 34% containment)
and about 9% overlapping, for the Radial trace.  These measured
fractions are what the generator is calibrated against.

The classifier brute-forces relations against all earlier *distinct*
regions with a bounding-box grid prefilter, independent of the proxy
implementation — deliberately so: tests compare the proxy's observed
dispositions against this oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.regions import Region
from repro.geometry.relations import RegionRelation, relate
from repro.templates.manager import TemplateManager
from repro.workload.trace import Trace


@dataclass(frozen=True)
class TraceProfile:
    """Measured per-query disposition fractions of a trace."""

    n_queries: int
    exact: float
    contained: float
    overlap: float
    disjoint: float

    @property
    def fully_answerable(self) -> float:
        """The paper's "completely answered by the cache" fraction."""
        return self.exact + self.contained

    def __str__(self) -> str:
        return (
            f"{self.n_queries} queries: "
            f"{self.exact:.1%} exact + {self.contained:.1%} contained "
            f"= {self.fully_answerable:.1%} fully answerable; "
            f"{self.overlap:.1%} overlapping; {self.disjoint:.1%} disjoint"
        )


class _RegionSet:
    """Earlier regions with a coarse bounding-box grid prefilter."""

    def __init__(self, cell: float) -> None:
        self.cell = cell
        self._grid: dict[tuple, list[Region]] = {}

    def _cells(self, region: Region):
        box = region.bounding_box()
        spans = [
            range(int(lo // self.cell), int(hi // self.cell) + 1)
            for lo, hi in zip(box.lows, box.highs)
        ]
        # Regions here are 2-d or 3-d; enumerate the small cell product.
        if len(spans) == 2:
            for i in spans[0]:
                for j in spans[1]:
                    yield (i, j)
        elif len(spans) == 3:
            for i in spans[0]:
                for j in spans[1]:
                    for k in spans[2]:
                        yield (i, j, k)
        else:
            yield ("*",)  # degenerate: single bucket

    def add(self, region: Region) -> None:
        for cell in self._cells(region):
            self._grid.setdefault(cell, []).append(region)

    def candidates(self, region: Region) -> list[Region]:
        seen: list[Region] = []
        found_ids = set()
        for cell in self._cells(region):
            for candidate in self._grid.get(cell, ()):
                if id(candidate) not in found_ids:
                    found_ids.add(id(candidate))
                    seen.append(candidate)
        return seen


def analyze_trace(
    trace: Trace, templates: TemplateManager, grid_cell: float = 0.02
) -> TraceProfile:
    """Classify every query against all earlier ones.

    ``grid_cell`` is the prefilter cell size in region-space units; the
    default suits the Radial template's chord coordinates (a 30-arcmin
    disc has chord radius ~0.009).
    """
    exact = contained = overlap = disjoint = 0
    seen_queries: set = set()
    regions_by_template: dict[str, _RegionSet] = {}

    for query in trace:
        if query in seen_queries:
            exact += 1
            continue
        bound = templates.bind(query.template_id, query.param_dict())
        region_set = regions_by_template.setdefault(
            query.template_id, _RegionSet(grid_cell)
        )
        is_contained = False
        is_overlapping = False
        for earlier in region_set.candidates(bound.region):
            relation = relate(bound.region, earlier)
            if relation in (
                RegionRelation.CONTAINED,
                RegionRelation.EQUAL,
            ):
                is_contained = True
                break
            if relation in (
                RegionRelation.OVERLAP,
                RegionRelation.CONTAINS,
            ):
                is_overlapping = True
        if is_contained:
            contained += 1
        elif is_overlapping:
            overlap += 1
        else:
            disjoint += 1
        seen_queries.add(query)
        region_set.add(bound.region)

    n = len(trace) or 1
    return TraceProfile(
        n_queries=len(trace),
        exact=exact / n,
        contained=contained / n,
        overlap=overlap / n,
        disjoint=disjoint / n,
    )
