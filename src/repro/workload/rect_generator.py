"""Rectangular-form trace generation, and mixed-template traces.

The paper's experiments focus on the Radial form, but the framework
(and this library) registers the Rectangular search form too.  This
module maps the same four workload moves onto rectangles:

* **repeat** — re-issue an earlier rectangle verbatim;
* **zoom** — a sub-rectangle strictly inside an earlier one;
* **pan** — an equal-size rectangle shifted by a fraction of its
  width/height (overlapping, not contained);
* **zoom-out** — a super-rectangle strictly containing an earlier one;
* **fresh** — a new location, rejection-sampled against covered sky.

``interleave`` mixes per-template traces into one stream, for
experiments where the proxy caches several templates at once (each
template's entries live in a separate cache-description space, as the
paper's framework prescribes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.skydata.generator import SkyCatalogConfig
from repro.templates.skyserver_templates import (
    MAG_MAX_DEFAULT,
    MAG_MIN_DEFAULT,
    RECT_TEMPLATE_ID,
)
from repro.workload.generator import _CoverageGrid, _pick
from repro.workload.trace import Trace, TraceQuery


@dataclass(frozen=True)
class RectTraceConfig:
    """Parameters of the synthetic Rectangular-form trace."""

    n_queries: int = 2_000
    seed: int = 351  # the paper's last page number
    p_repeat: float = 0.29
    p_zoom: float = 0.22
    p_pan: float = 0.055
    p_zoom_out: float = 0.035
    # Rectangle side lengths (log-uniform), in degrees.
    side_min_deg: float = 0.05
    side_max_deg: float = 0.4
    zoom_fraction_min: float = 0.35
    zoom_fraction_max: float = 0.8
    popularity_skew: float = 3.0
    fresh_max_tries: int = 25
    sky: SkyCatalogConfig = SkyCatalogConfig()
    edge_margin_deg: float = 1.0
    coordinate_decimals: int = 4

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise ValueError("n_queries must be positive")
        if self.p_repeat + self.p_zoom + self.p_pan + self.p_zoom_out > 1.0:
            raise ValueError("move probabilities exceed 1")
        if not 0 < self.side_min_deg <= self.side_max_deg:
            raise ValueError("bad side-length range")


def generate_rect_trace(config: RectTraceConfig | None = None) -> Trace:
    """Generate a Rectangular-form trace with the same move model as
    the Radial generator."""
    config = config or RectTraceConfig()
    rng = np.random.default_rng(config.seed)
    # History entries are (ra_min, ra_max, dec_min, dec_max).
    history: list[tuple[float, float, float, float]] = []
    coverage = _CoverageGrid()
    trace = Trace()

    for _ in range(config.n_queries):
        move = rng.random()
        t_repeat = config.p_repeat
        t_zoom = t_repeat + config.p_zoom
        t_pan = t_zoom + config.p_pan
        t_zoom_out = t_pan + config.p_zoom_out
        if history and move < t_repeat:
            rect = _pick(history, rng, config.popularity_skew)
        elif history and move < t_zoom:
            rect = _zoom_rect(
                _pick(history, rng, config.popularity_skew), rng, config
            )
        elif history and move < t_pan:
            rect = _pan_rect(
                _pick(history, rng, config.popularity_skew), rng
            )
        elif history and move < t_zoom_out:
            rect = _zoom_out_rect(
                _pick(history, rng, config.popularity_skew), rng, config
            )
        else:
            rect = _fresh_rect(rng, config, coverage)
        rect = _round_rect(config, rect)
        history.append(rect)
        ra_min, ra_max, dec_min, dec_max = rect
        # Register the bounding disc in the shared coverage grid.
        center_ra = (ra_min + ra_max) / 2.0
        center_dec = (dec_min + dec_max) / 2.0
        half_diag_arcmin = 30.0 * math.hypot(
            ra_max - ra_min, dec_max - dec_min
        )
        coverage.add(center_ra, center_dec, half_diag_arcmin)
        trace.append(
            TraceQuery.of(
                RECT_TEMPLATE_ID,
                {
                    "ra_min": ra_min,
                    "ra_max": ra_max,
                    "dec_min": dec_min,
                    "dec_max": dec_max,
                    "r_min": MAG_MIN_DEFAULT,
                    "r_max": MAG_MAX_DEFAULT,
                },
            )
        )
    return trace


def interleave(traces: list[Trace], seed: int = 0) -> Trace:
    """Merge traces into one stream, preserving each trace's order.

    Each step draws the next query from a trace chosen with probability
    proportional to its remaining length — an unbiased shuffle of the
    merge that keeps per-template reuse patterns intact.
    """
    rng = np.random.default_rng(seed)
    cursors = [0] * len(traces)
    merged = Trace()
    remaining = sum(len(t) for t in traces)
    while remaining:
        weights = [
            len(trace) - cursor for trace, cursor in zip(traces, cursors)
        ]
        choice = rng.choice(len(traces), p=[w / remaining for w in weights])
        merged.append(traces[choice][cursors[choice]])
        cursors[choice] += 1
        remaining -= 1
    return merged


# ---------------------------------------------------------------- moves


def _sample_sides(rng, config: RectTraceConfig) -> tuple[float, float]:
    low = math.log(config.side_min_deg)
    high = math.log(config.side_max_deg)
    return math.exp(rng.uniform(low, high)), math.exp(
        rng.uniform(low, high)
    )


def _fresh_rect(rng, config: RectTraceConfig, coverage: _CoverageGrid):
    sky = config.sky
    margin = config.edge_margin_deg
    rect = None
    for _ in range(max(config.fresh_max_tries, 1)):
        width, height = _sample_sides(rng, config)
        ra_min = rng.uniform(sky.ra_min + margin, sky.ra_max - margin - width)
        dec_min = rng.uniform(
            sky.dec_min + margin, sky.dec_max - margin - height
        )
        rect = (ra_min, ra_min + width, dec_min, dec_min + height)
        center_ra = ra_min + width / 2.0
        center_dec = dec_min + height / 2.0
        half_diag_arcmin = 30.0 * math.hypot(width, height)
        if not coverage.collides(center_ra, center_dec, half_diag_arcmin):
            break
    return rect


def _zoom_rect(parent, rng, config: RectTraceConfig):
    """A rectangle strictly inside the parent."""
    ra_min, ra_max, dec_min, dec_max = parent
    fraction = rng.uniform(config.zoom_fraction_min, config.zoom_fraction_max)
    width = (ra_max - ra_min) * fraction
    height = (dec_max - dec_min) * fraction
    # Keep 10% of the slack on each side as rounding headroom.
    slack_ra = (ra_max - ra_min - width) * 0.8
    slack_dec = (dec_max - dec_min - height) * 0.8
    new_ra_min = ra_min + (ra_max - ra_min - width) * 0.1 + rng.uniform(
        0.0, slack_ra
    )
    new_dec_min = dec_min + (dec_max - dec_min - height) * 0.1 + rng.uniform(
        0.0, slack_dec
    )
    return (new_ra_min, new_ra_min + width, new_dec_min, new_dec_min + height)


def _pan_rect(parent, rng):
    """An equal-size rectangle shifted to overlap but not contain."""
    ra_min, ra_max, dec_min, dec_max = parent
    width = ra_max - ra_min
    height = dec_max - dec_min
    shift_ra = width * rng.uniform(0.3, 0.8) * rng.choice((-1.0, 1.0))
    shift_dec = height * rng.uniform(0.0, 0.3) * rng.choice((-1.0, 1.0))
    return (
        ra_min + shift_ra,
        ra_max + shift_ra,
        dec_min + shift_dec,
        dec_max + shift_dec,
    )


def _zoom_out_rect(parent, rng, config: RectTraceConfig):
    """A rectangle strictly containing the parent."""
    ra_min, ra_max, dec_min, dec_max = parent
    grow = rng.uniform(1.3, 2.2)
    extra_ra = (ra_max - ra_min) * (grow - 1.0)
    extra_dec = (dec_max - dec_min) * (grow - 1.0)
    left = rng.uniform(0.1, 0.9)
    bottom = rng.uniform(0.1, 0.9)
    return (
        ra_min - extra_ra * left,
        ra_max + extra_ra * (1.0 - left),
        dec_min - extra_dec * bottom,
        dec_max + extra_dec * (1.0 - bottom),
    )


def _round_rect(config: RectTraceConfig, rect):
    sky = config.sky
    margin = config.edge_margin_deg
    decimals = config.coordinate_decimals
    ra_min, ra_max, dec_min, dec_max = rect
    ra_min = max(ra_min, sky.ra_min + margin)
    ra_max = min(ra_max, sky.ra_max - margin)
    dec_min = max(dec_min, sky.dec_min + margin)
    dec_max = min(dec_max, sky.dec_max - margin)
    # Rounding the min down and the max up preserves zoom containment.
    factor = 10.0**decimals
    return (
        math.floor(ra_min * factor) / factor,
        math.ceil(ra_max * factor) / factor,
        math.floor(dec_min * factor) / factor,
        math.ceil(dec_max * factor) / factor,
    )
