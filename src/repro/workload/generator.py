"""Synthetic Radial-form trace generation, calibrated to the paper.

The real trace's cache-relevant behaviour is summarized by four
per-query dispositions against an unlimited cache of all earlier
queries: exact repeat, contained in an earlier query, overlapping an
earlier query, disjoint from all.  The generator produces each query by
one of four *moves* over the history of previously generated queries:

* **repeat** — re-issue an earlier query verbatim (users re-running a
  search, browser reloads): an exact match;
* **zoom** — pick an earlier query and search strictly inside it
  (smaller radius, nearby center): query containment by construction;
* **pan** — pick an earlier query and shift the center by roughly one
  radius: a cache-intersecting query by construction;
* **fresh** — a brand-new location: almost always disjoint.

Move probabilities are chosen so the *measured* trace profile (see
:mod:`repro.workload.analyzer`) matches Section 4.1: ~17% of queries
exact matches, ~34% containment-answerable, ~9% overlapping.  Because
later queries can relate to *any* earlier one (not just their source),
the measured fractions exceed the raw move probabilities; the defaults
below were calibrated against the analyzer and are pinned by
``tests/workload/test_calibration.py``.

Popularity is Zipf-skewed: zooms/pans/repeats prefer recent and popular
history entries, mimicking hot sky regions (named objects, course
assignments) in the real logs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.skydata.generator import SkyCatalogConfig
from repro.templates.skyserver_templates import (
    MAG_MAX_DEFAULT,
    MAG_MIN_DEFAULT,
    RADIAL_TEMPLATE_ID,
)
from repro.workload.trace import Trace, TraceQuery


@dataclass(frozen=True)
class RadialTraceConfig:
    """Parameters of the synthetic Radial-form trace.

    The default move mix is calibrated so the analyzer measures
    approximately the paper's 17% exact / 34% contained / 9% overlap.
    ``n_queries`` defaults to the paper's trace length.
    """

    n_queries: int = 11_323
    seed: int = 339  # the paper's first page number
    # Move probabilities (fresh gets the remainder).  Calibrated so an
    # unlimited cache sees roughly the paper's per-query dispositions:
    # passive exact-hit mass near the Table 1 PC efficiency (~0.31),
    # exact+contained near the AC efficiency (~0.51 fully answerable),
    # overlap near 9%.
    p_repeat: float = 0.29
    p_zoom: float = 0.22
    p_pan: float = 0.055
    p_zoom_out: float = 0.035
    # Radius distribution (log-uniform), in arcminutes.  Kept modest so
    # the issued discs cover a small fraction of the sky window and the
    # disposition mix stays move-driven (see _fresh).
    radius_min_arcmin: float = 1.5
    radius_max_arcmin: float = 12.0
    # Zoom geometry: the child radius as a fraction of the parent's.
    zoom_fraction_min: float = 0.35
    zoom_fraction_max: float = 0.8
    # Pan geometry: center shift as a fraction of the parent radius.
    pan_shift_min: float = 0.5
    pan_shift_max: float = 1.2
    # Popularity skew for picking a history entry (Zipf-ish exponent).
    # High skew concentrates repeats/zooms on recent popular queries,
    # which keeps the working set small — the reason the paper's curves
    # are nearly flat in cache size.
    popularity_skew: float = 3.0
    # Fresh queries rejection-sample against previously covered sky so
    # that overlap/containment happen (almost) only through explicit
    # moves; this is what pins the measured profile to the move mix.
    fresh_max_tries: int = 25
    # Sky window (kept inside the catalog's window so results are
    # non-trivial); margin keeps regions off the window edge.
    sky: SkyCatalogConfig = SkyCatalogConfig()
    edge_margin_deg: float = 1.0
    # Round coordinates as form inputs would be (decimal places).
    coordinate_decimals: int = 4

    def __post_init__(self) -> None:
        if self.n_queries < 1:
            raise ValueError("n_queries must be positive")
        total = self.p_repeat + self.p_zoom + self.p_pan + self.p_zoom_out
        if total > 1.0:
            raise ValueError("move probabilities exceed 1")
        if not 0 < self.radius_min_arcmin <= self.radius_max_arcmin:
            raise ValueError("bad radius range")
        if not 0 < self.zoom_fraction_min <= self.zoom_fraction_max < 1.0:
            raise ValueError("zoom fractions must be in (0, 1)")


class _CoverageGrid:
    """Coarse grid of issued discs, for fresh-query rejection sampling.

    Cells are one degree; a disc is registered in every cell its
    bounding box touches.  ``collides`` answers "does this disc
    intersect any earlier disc" with an exact angular-distance test on
    the grid candidates.
    """

    def __init__(self) -> None:
        self._cells: dict[tuple[int, int], list[tuple[float, float, float]]]
        self._cells = {}

    @staticmethod
    def _span(center: float, radius_deg: float) -> range:
        return range(
            int(math.floor(center - radius_deg)),
            int(math.floor(center + radius_deg)) + 1,
        )

    def add(self, ra: float, dec: float, radius_arcmin: float) -> None:
        radius_deg = radius_arcmin / 60.0
        for i in self._span(ra, radius_deg):
            for j in self._span(dec, radius_deg):
                self._cells.setdefault((i, j), []).append(
                    (ra, dec, radius_arcmin)
                )

    def collides(self, ra: float, dec: float, radius_arcmin: float) -> bool:
        radius_deg = radius_arcmin / 60.0
        seen: set[tuple[float, float, float]] = set()
        for i in self._span(ra, radius_deg):
            for j in self._span(dec, radius_deg):
                for other in self._cells.get((i, j), ()):
                    if other in seen:
                        continue
                    seen.add(other)
                    other_ra, other_dec, other_radius = other
                    # Small-angle flat approximation is ample for a
                    # coarse rejection test.
                    d_ra = (ra - other_ra) * math.cos(math.radians(dec))
                    d_dec = dec - other_dec
                    dist_arcmin = 60.0 * math.hypot(d_ra, d_dec)
                    if dist_arcmin <= radius_arcmin + other_radius:
                        return True
        return False


def generate_radial_trace(config: RadialTraceConfig | None = None) -> Trace:
    """Generate a calibrated Radial-form trace."""
    config = config or RadialTraceConfig()
    rng = np.random.default_rng(config.seed)
    history: list[tuple[float, float, float]] = []  # (ra, dec, radius)
    coverage = _CoverageGrid()
    trace = Trace()

    for _ in range(config.n_queries):
        move = rng.random()
        threshold_repeat = config.p_repeat
        threshold_zoom = threshold_repeat + config.p_zoom
        threshold_pan = threshold_zoom + config.p_pan
        threshold_zoom_out = threshold_pan + config.p_zoom_out
        if history and move < threshold_repeat:
            ra, dec, radius = _pick(history, rng, config.popularity_skew)
        elif history and move < threshold_zoom:
            ra, dec, radius = _zoom(
                _pick(history, rng, config.popularity_skew), rng, config
            )
        elif history and move < threshold_pan:
            ra, dec, radius = _pan(
                _pick(history, rng, config.popularity_skew), rng, config
            )
        elif history and move < threshold_zoom_out:
            ra, dec, radius = _zoom_out(
                _pick(history, rng, config.popularity_skew), rng, config
            )
        else:
            ra, dec, radius = _fresh(rng, config, coverage)
        ra, dec, radius = _round(config, ra, dec, radius)
        history.append((ra, dec, radius))
        coverage.add(ra, dec, radius)
        trace.append(
            TraceQuery.of(
                RADIAL_TEMPLATE_ID,
                {
                    "ra": ra,
                    "dec": dec,
                    "radius": radius,
                    "r_min": MAG_MIN_DEFAULT,
                    "r_max": MAG_MAX_DEFAULT,
                },
            )
        )
    return trace


# --------------------------------------------------------------- moves


def _pick(history, rng, skew: float):
    """Pick a history entry with recency/popularity skew.

    Index drawn as ``n * u^(1+skew)`` from the end: heavier weight on
    recent entries, a long tail over the rest — a cheap stand-in for
    Zipf popularity that never needs the full distribution.
    """
    n = len(history)
    offset = int(n * rng.random() ** (1.0 + skew))
    return history[n - 1 - min(offset, n - 1)]


def _fresh(rng, config: RadialTraceConfig, coverage: _CoverageGrid):
    """A new location, rejection-sampled against covered sky.

    If the window is so crowded that ``fresh_max_tries`` samples all
    collide, the last sample is used anyway (the analyzer then counts
    it as accidental overlap — the tests keep scales out of that
    regime).
    """
    sky = config.sky
    margin = config.edge_margin_deg
    ra = dec = radius = None
    for _ in range(max(config.fresh_max_tries, 1)):
        ra = rng.uniform(sky.ra_min + margin, sky.ra_max - margin)
        dec = rng.uniform(sky.dec_min + margin, sky.dec_max - margin)
        radius = _fresh_radius(rng, config)
        if not coverage.collides(ra, dec, radius):
            break
    return ra, dec, radius


def _fresh_radius(rng, config: RadialTraceConfig) -> float:
    low = math.log(config.radius_min_arcmin)
    high = math.log(config.radius_max_arcmin)
    return math.exp(rng.uniform(low, high))


def _zoom(parent, rng, config: RadialTraceConfig):
    """A query strictly inside the parent's disc.

    Containment on the sphere: a child disc of angular radius ``r`` at
    angular distance ``d`` from the parent center is inside the parent
    disc of radius ``R`` when ``d + r <= R``.  (For radii of tens of
    arcminutes the chord/angle distinction is far below coordinate
    rounding.)  The shift budget ``R - r`` is used at most 80%, leaving
    headroom for rounding.
    """
    ra, dec, parent_radius = parent
    fraction = rng.uniform(config.zoom_fraction_min, config.zoom_fraction_max)
    radius = parent_radius * fraction
    budget_arcmin = (parent_radius - radius) * 0.8
    shift_arcmin = rng.uniform(0.0, budget_arcmin)
    angle = rng.uniform(0.0, 2.0 * math.pi)
    shift_deg = shift_arcmin / 60.0
    new_dec = dec + shift_deg * math.sin(angle)
    new_ra = ra + shift_deg * math.cos(angle) / max(
        math.cos(math.radians(dec)), 1e-6
    )
    return new_ra, new_dec, radius


def _zoom_out(parent, rng, config: RadialTraceConfig):
    """A query strictly *containing* the parent's disc.

    The widened search drives the paper's *region containment* case:
    the new query's region contains one or more cached regions, which
    the proxy merges and consolidates (Section 3.2's last paragraph).
    Containment needs ``d + R_parent <= R_new``; the shift stays within
    80% of the extra radius.
    """
    ra, dec, parent_radius = parent
    radius = min(
        parent_radius / rng.uniform(0.45, 0.8),
        config.radius_max_arcmin * 1.5,
    )
    budget_arcmin = (radius - parent_radius) * 0.8
    shift_arcmin = rng.uniform(0.0, max(budget_arcmin, 0.0))
    angle = rng.uniform(0.0, 2.0 * math.pi)
    shift_deg = shift_arcmin / 60.0
    new_dec = dec + shift_deg * math.sin(angle)
    new_ra = ra + shift_deg * math.cos(angle) / max(
        math.cos(math.radians(dec)), 1e-6
    )
    return new_ra, new_dec, radius


def _pan(parent, rng, config: RadialTraceConfig):
    """A query overlapping the parent but not contained either way.

    Shift between 0.6 and 1.4 parent radii with a same-scale radius:
    centers are closer than ``r1 + r2`` (overlap) but farther than
    ``|r1 - r2|`` (no containment) for the chosen scales.
    """
    ra, dec, parent_radius = parent
    radius = parent_radius * rng.uniform(0.7, 1.1)
    shift_arcmin = parent_radius * rng.uniform(
        config.pan_shift_min, config.pan_shift_max
    )
    angle = rng.uniform(0.0, 2.0 * math.pi)
    shift_deg = shift_arcmin / 60.0
    new_dec = dec + shift_deg * math.sin(angle)
    new_ra = ra + shift_deg * math.cos(angle) / max(
        math.cos(math.radians(dec)), 1e-6
    )
    return new_ra, new_dec, radius


def _round(config: RadialTraceConfig, ra, dec, radius):
    """Clamp into the sky window and round like form inputs."""
    sky = config.sky
    margin = config.edge_margin_deg
    ra = min(max(ra, sky.ra_min + margin), sky.ra_max - margin)
    dec = min(max(dec, sky.dec_min + margin), sky.dec_max - margin)
    decimals = config.coordinate_decimals
    return (
        round(float(ra), decimals),
        round(float(dec), decimals),
        round(float(radius), decimals),
    )
