"""The Remote Browser Emulator (RBE).

The paper's experiments measure response time "at the browser
emulator": a client program replaying the trace against the proxy.
This emulator does the same for the in-process deployment — it binds
each trace query through the template manager, submits it to the proxy,
and adds the client-to-proxy network time to the query's record, so
``record.response_ms`` becomes the end-to-end figure the paper plots.
"""

from __future__ import annotations

from typing import Callable

from repro.core.proxy import FunctionProxy
from repro.core.stats import TraceStats
from repro.workload.trace import Trace


class BrowserEmulator:
    """Replays traces through a proxy, measuring at the client."""

    def __init__(self, proxy: FunctionProxy) -> None:
        self.proxy = proxy

    def run(
        self,
        trace: Trace,
        limit: int | None = None,
        progress: Callable[[int, int], None] | None = None,
        think_time_ms: float = 0.0,
    ) -> TraceStats:
        """Replay ``trace`` (optionally only the first ``limit`` queries).

        Returns the stats of exactly the replayed queries, with client
        network time included.  ``progress`` is called as
        ``progress(done, total)`` every 500 queries for long runs.

        ``think_time_ms`` is a fixed simulated pause between queries
        (user reading the previous answer).  It advances the proxy's
        clock without being charged to any record, which is what lets
        scheduled fault windows cover a stretch of *queries* rather
        than collapsing onto whichever query happens to be in flight.
        A pause happens between *completed responses* — N queries
        incur N−1 pauses; nobody thinks after the last answer.
        """
        if think_time_ms < 0:
            raise ValueError(f"negative think time: {think_time_ms}")
        queries = trace.queries if limit is None else trace.queries[:limit]
        topology = self.proxy.topology
        clock = self.proxy.clock
        stats = TraceStats()
        total = len(queries)
        for done, query in enumerate(queries, start=1):
            bound = self.proxy.templates.bind(
                query.template_id, query.param_dict()
            )
            response = self.proxy.serve(bound)
            record = response.record
            client_ms = topology.client_round_trip_ms(
                record.result_bytes
            )
            record.steps_ms["client"] = client_ms
            record.response_ms += client_ms
            clock.advance(client_ms)
            if think_time_ms and done < total:
                clock.advance(think_time_ms)
            stats.add(record)
            if progress is not None and done % 500 == 0:
                progress(done, total)
        return stats
