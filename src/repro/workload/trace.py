"""Trace files: sequences of template-parameter bindings."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Sequence


class TraceError(ValueError):
    """Malformed trace files."""


@dataclass(frozen=True)
class TraceQuery:
    """One logged query: a template id plus its parameter values.

    Parameter values are the primitive JSON types; two queries with
    equal ``(template_id, params)`` are *exact matches* in the paper's
    sense.
    """

    template_id: str
    params: tuple[tuple[str, Any], ...]

    @staticmethod
    def of(template_id: str, params: dict[str, Any]) -> "TraceQuery":
        return TraceQuery(template_id, tuple(sorted(params.items())))

    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)


class Trace:
    """An ordered sequence of :class:`TraceQuery`, file round-trippable.

    The on-disk format is JSON Lines: one object per query.  Append-only
    construction mirrors how the paper extracted traces from web logs.
    """

    def __init__(self, queries: Sequence[TraceQuery] = ()) -> None:
        self.queries: list[TraceQuery] = list(queries)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[TraceQuery]:
        return iter(self.queries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self.queries[index])
        return self.queries[index]

    def append(self, query: TraceQuery) -> None:
        self.queries.append(query)

    def head(self, n: int) -> "Trace":
        """The first ``n`` queries (Figure 5 uses the first 10,000)."""
        return Trace(self.queries[:n])

    def distinct_count(self) -> int:
        return len(set(self.queries))

    # --------------------------------------------------------------- io
    def save(self, path: str | Path) -> None:
        # Atomic (temp + rename): an interrupted save never leaves a
        # truncated trace that a later load would replay short.
        from repro.persistence.atomic import atomic_write_text

        lines = [
            json.dumps(
                {
                    "template": query.template_id,
                    "params": query.param_dict(),
                },
                sort_keys=True,
            )
            for query in self.queries
        ]
        atomic_write_text(path, "".join(line + "\n" for line in lines))

    @staticmethod
    def load(path: str | Path) -> "Trace":
        path = Path(path)
        queries = []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    queries.append(
                        TraceQuery.of(payload["template"], payload["params"])
                    )
                except (json.JSONDecodeError, KeyError, TypeError) as exc:
                    raise TraceError(
                        f"{path}:{line_number}: bad trace line: {exc}"
                    ) from None
        return Trace(queries)
