"""A multi-tenant closed-loop client population on the event loop.

The open-loop :class:`~repro.workload.rbe.BrowserEmulator` replays a
trace one query at a time; saturation experiments need *closed-loop*
clients — each submits one query, waits for its answer, thinks, and
submits the next.  Under overload a closed-loop population naturally
throttles itself to the server's pace, which is exactly the regime
where admission control and shed policies matter.

:class:`ClosedLoopDriver` places ``n_clients`` such clients on one
:class:`~repro.sched.loop.EventLoop`, all sharing one frontend — a
single-proxy :class:`~repro.sched.frontend.ProxyFrontend` or the
sharded tier's :class:`~repro.cluster.frontend.ClusterFrontend`; any
object with ``loop``, ``templates``, and ``submit`` (the same
signature) drives the same way.  Determinism: starts are
staggered deterministically across the think window, think jitter is
drawn from a seeded :class:`random.Random`, and every client walks the
shared trace at its own offset — same seed, same curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any

from repro.core.stats import QueryOutcome, TraceStats
from repro.sched.loop import EventLoop
from repro.workload.trace import Trace


@dataclass(frozen=True)
class ClosedLoopConfig:
    """The client population and its pacing."""

    n_clients: int = 100
    #: Queries each client completes before retiring.
    queries_per_client: int = 4
    #: Mean pause between a response and the next submission.
    think_time_ms: float = 4_000.0
    #: Uniform jitter fraction applied to each think pause.
    think_jitter: float = 0.25
    seed: int = 339
    #: Tenant names assigned round-robin across clients.
    tenants: tuple[str, ...] = ("default",)

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError(f"need at least one client: {self.n_clients}")
        if self.queries_per_client < 1:
            raise ValueError(
                "each client needs at least one query: "
                f"{self.queries_per_client}"
            )
        if self.think_time_ms < 0:
            raise ValueError(f"negative think time: {self.think_time_ms}")
        if not 0.0 <= self.think_jitter <= 1.0:
            raise ValueError(
                f"think jitter must be in [0, 1]: {self.think_jitter}"
            )
        if not self.tenants:
            raise ValueError("need at least one tenant name")


@dataclass
class _Client:
    """One closed-loop client's progress."""

    name: str
    tenant: str
    cursor: int
    remaining: int
    rng: Random
    outcomes: list[QueryOutcome] = field(default_factory=list)


class ClosedLoopDriver:
    """Runs a closed-loop population to completion on the event loop."""

    def __init__(
        self,
        frontend: Any,  # ProxyFrontend or ClusterFrontend (duck-typed)
        trace: Trace,
        config: ClosedLoopConfig | None = None,
    ) -> None:
        if len(trace) == 0:
            raise ValueError("cannot drive an empty trace")
        self.frontend = frontend
        self.trace = trace
        self.config = config or ClosedLoopConfig()
        self.stats = TraceStats()
        self._clients: list[_Client] = []

    @property
    def loop(self) -> EventLoop:
        return self.frontend.loop

    def run(self, until_ms: float | None = None) -> TraceStats:
        """Drive every client to completion; returns the run's stats.

        ``until_ms`` bounds the event-time horizon (clients still
        mid-flight simply stop submitting).  Statistics cover every
        record produced — served, shed, and timed out alike.
        """
        config = self.config
        rng = Random(config.seed)
        # Stagger starts across one think window so the first wave is
        # not a single synchronized spike (unless think time is zero).
        window = max(config.think_time_ms, 1.0)
        for index in range(config.n_clients):
            client = _Client(
                name=f"client-{index}",
                tenant=config.tenants[index % len(config.tenants)],
                cursor=(index * 7919) % len(self.trace),
                remaining=config.queries_per_client,
                rng=Random(rng.randrange(2**31)),
            )
            self._clients.append(client)
            start_ms = (index / config.n_clients) * window
            self.loop.at(start_ms, self._submitter(client))
        self.loop.run(until_ms=until_ms)
        return self.stats

    # ----------------------------------------------------------- internal
    def _submitter(self, client: _Client):
        def submit() -> None:
            query = self.trace[client.cursor % len(self.trace)]
            client.cursor += 1
            bound = self.frontend.templates.bind(
                query.template_id, query.param_dict()
            )
            self.frontend.submit(
                bound,
                tenant=client.tenant,
                on_done=lambda response: self._on_done(client, response),
            )

        return submit

    def _on_done(self, client: _Client, response) -> None:
        record = response.record
        client.outcomes.append(record.outcome)
        self.stats.add(record)
        client.remaining -= 1
        if client.remaining <= 0:
            return
        pause = self.config.think_time_ms
        if pause and self.config.think_jitter:
            spread = self.config.think_jitter
            pause *= 1.0 + spread * (2.0 * client.rng.random() - 1.0)
        self.loop.after(pause, self._submitter(client))

    # --------------------------------------------------------- reporting
    def completed_queries(self) -> int:
        return sum(len(c.outcomes) for c in self._clients)

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for client in self._clients:
            for outcome in client.outcomes:
                counts[outcome.value] = counts.get(outcome.value, 0) + 1
        return counts
