"""Workloads: query traces and the remote browser emulator.

The paper drives its experiments with a real trace of 11,323 Radial
search form queries extracted from SkyServer web logs, with these
measured properties (Section 4.1): with an unlimited cache, about 51%
of queries can be fully answered from cache (17% exact matches and 34%
query containment), and about 9% overlap.

We cannot ship that trace, so :mod:`repro.workload.generator` produces
a synthetic trace *calibrated to those fractions* — a hotspot model in
which popular sky locations are revisited, zoomed into (containment),
panned around (overlap), or abandoned for fresh ones (disjoint).  The
:mod:`repro.workload.analyzer` measures the fractions of any trace the
same way the paper reports them, and the calibration is asserted by
tests.

:class:`~repro.workload.rbe.BrowserEmulator` replays a trace through a
proxy, adding client-side network time — the paper's RBE.
"""

from repro.workload.trace import Trace, TraceQuery
from repro.workload.generator import RadialTraceConfig, generate_radial_trace
from repro.workload.rect_generator import (
    RectTraceConfig,
    generate_rect_trace,
    interleave,
)
from repro.workload.analyzer import TraceProfile, analyze_trace
from repro.workload.rbe import BrowserEmulator
from repro.workload.closed_loop import ClosedLoopConfig, ClosedLoopDriver

__all__ = [
    "BrowserEmulator",
    "RadialTraceConfig",
    "RectTraceConfig",
    "Trace",
    "TraceProfile",
    "TraceQuery",
    "analyze_trace",
    "generate_radial_trace",
    "generate_rect_trace",
    "interleave",
]
