"""The cache persister: mutation log + snapshot cadence in one object.

A :class:`CachePersister` is the proxy's durability sidecar.  The
cache manager reports every mutation to it (the ``mutation_log`` hook
on :class:`~repro.core.cache.CacheManager`); the persister appends a
framed record to the journal and, every ``snapshot_every`` records,
serializes the full live entry set to the snapshot file (atomically)
and truncates the journal.  The write ordering is the crash-consistency
argument:

1. journal append is the *only* mutation between snapshots, so a crash
   tears at most the journal tail;
2. the snapshot replaces its predecessor via ``os.replace`` and is
   fsync'd *before* the journal is truncated, so every instant has a
   complete (snapshot, journal) pair to recover from.

A seeded :class:`~repro.faults.crash.CrashPlan` can be installed to
kill the process at scheduled journal offsets: the persister applies
the plan's tail damage and raises
:class:`~repro.faults.errors.SimulatedCrash` after the fatal append —
the in-process equivalent of ``kill -9`` mid-write.

The persister is deliberately ignorant of *how* to rebuild a cache;
that is :mod:`repro.persistence.recovery`'s job.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.faults.errors import SimulatedCrash
from repro.locking import guarded_by, named_lock, unshared
from repro.obs.events import EV_SNAPSHOT_CHECKPOINT
from repro.persistence.errors import PersistenceError
from repro.persistence.journal import Journal
from repro.persistence.records import (
    AdmitRecord,
    ClearRecord,
    EvictRecord,
    region_to_dict,
)
from repro.persistence.snapshot import (
    Snapshot,
    load_snapshot,
    write_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cache import CacheEntry, CacheManager
    from repro.faults.crash import CrashPlan, CrashSession

JOURNAL_NAME = "journal.bin"
SNAPSHOT_NAME = "snapshot.json"

#: Reasons a single entry can leave the cache (whole-cache flushes are
#: a ``clear`` record instead).
REMOVAL_REASONS = ("evict", "consolidate", "replace")


@guarded_by(
    "persistence.journal",
    "suspended",
    "total_records",
    "last_snapshot_ts_ms",
    "last_recovery",
    "crash_plan",
    "_crash_session",
)
@unshared("_cache", "_clock", "_version_of", "_obs")
class CachePersister:
    """Journal + snapshot management for one cache directory.

    Locking: the ``persistence.journal`` named lock serializes the
    persister's bookkeeping (append counting, crash-plan state, the
    recovery flags); the journal file itself has its own innermost
    lock (``persistence.journal.file``), taken by :class:`Journal`.
    ``checkpoint`` deliberately does *not* take the cache lock — the
    snapshot-cadence checkpoints already run inside the cache's
    mutation scope (the ``mutation_log`` hooks fire under
    ``proxy.cache``), so taking it here would only add a
    journal→cache edge and invert the lock order.  The ``_cache`` /
    ``_clock`` / ``_version_of`` / ``_obs`` attributes are rebound
    only by single-threaded ``bind`` wiring, hence ``unshared``.
    """

    def __init__(
        self,
        directory: str | Path,
        snapshot_every: int = 64,
        durable: bool = False,
        crash_plan: "CrashPlan | None" = None,
        shard_id: str | None = None,
    ) -> None:
        if snapshot_every < 1:
            raise PersistenceError(
                f"snapshot_every must be at least 1: {snapshot_every}"
            )
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise PersistenceError(
                f"cannot create persistence directory "
                f"{self.directory}: {exc}"
            ) from exc
        self.snapshot_every = snapshot_every
        self.durable = durable
        #: The owning shard worker's id; stamped onto every admit
        #: record so handoff files can be replayed anywhere (recovery
        #: skips records tagged with a *different* shard).  ``None`` on
        #: a single-proxy deployment keeps the wire form unchanged.
        self.shard_id = shard_id
        self.journal = Journal(self.directory / JOURNAL_NAME)
        self.snapshot_path = self.directory / SNAPSHOT_NAME
        self._lock = named_lock("persistence.journal")
        #: Set while recovery re-admits entries; hooks become no-ops so
        #: replaying the journal does not re-journal itself.
        self.suspended = False
        self.total_records = 0  # lifetime appends, unaffected by resets
        self.last_snapshot_ts_ms: float | None = None
        self.last_recovery: dict[str, Any] | None = None
        self._cache: "CacheManager | None" = None
        self._clock: Any = None
        self._version_of: Callable[[], int | None] = lambda: None
        self._obs: Any = None
        self._crash_session: "CrashSession | None" = (
            crash_plan.session() if crash_plan is not None else None
        )
        self.crash_plan = crash_plan

    # ------------------------------------------------------------ wiring
    def bind(
        self,
        cache: "CacheManager",
        clock: Any,
        version_of: Callable[[], int | None],
        obs: Any = None,
    ) -> None:
        """Attach the live proxy parts the persister reads from.

        Called by :class:`~repro.core.proxy.FunctionProxy` during
        construction; ``version_of`` must read the *current* origin
        (through any fault-injection wrapper) so journaled versions
        track scheduled bumps.
        """
        self._cache = cache
        self._clock = clock
        self._version_of = version_of
        self._obs = obs

    def current_version(self) -> int | None:
        """The origin's current data version, through any fault wrapper."""
        return self._version_of()

    def install_crash_plan(self, plan: "CrashPlan | None") -> None:
        """Arm (or disarm) a seeded crash schedule."""
        with self._lock:
            self.crash_plan = plan
            self._crash_session = (
                plan.session() if plan is not None else None
            )

    @property
    def crash_session(self) -> "CrashSession | None":
        return self._crash_session

    # -------------------------------------------------- recovery bookkeeping
    def set_suspended(self, flag: bool) -> None:
        """Recovery hook: mute (or unmute) the mutation-log hooks.

        Recovery flips this around its re-admission loop so replaying
        the journal does not re-journal itself.  A locked setter, so
        recovery never holds the persister lock while calling into the
        cache (which would invert the cache→journal lock order).
        """
        with self._lock:
            self.suspended = flag

    def record_recovery(self, report: dict[str, Any]) -> None:
        """Recovery hook: publish the last recovery's report payload."""
        with self._lock:
            self.last_recovery = report

    # ------------------------------------------------- mutation-log hooks
    def admitted(self, entry: "CacheEntry") -> None:
        """Cache-manager hook: ``entry`` just entered the cache."""
        if self.suspended:
            return
        self._append(self._admit_record(entry))

    def removed(self, entry: "CacheEntry", reason: str) -> None:
        """Cache-manager hook: ``entry`` left the cache for ``reason``."""
        if self.suspended:
            return
        if reason not in REMOVAL_REASONS:
            raise PersistenceError(f"unknown removal reason {reason!r}")
        self._append(
            EvictRecord(
                entry_id=entry.entry_id,
                reason=reason,
                data_version=self._version_of(),
                ts_ms=self._now_ms(),
            )
        )

    def cleared(self, removed: int) -> None:
        """Cache-manager hook: the whole cache was flushed."""
        if self.suspended:
            return
        self._append(
            ClearRecord(
                data_version=self._version_of(),
                removed=removed,
                ts_ms=self._now_ms(),
            )
        )

    # -------------------------------------------------------- snapshotting
    def checkpoint(self) -> Snapshot:
        """Snapshot the full live cache now and truncate the journal.

        Concurrency precondition: call only while holding the
        ``proxy.cache`` lock, or from single-threaded code.  Both
        in-tree callers comply — the snapshot-cadence call in
        ``_append`` runs inside the cache's mutation-log hooks (which
        fire under ``proxy.cache``), and recovery runs before any
        serving thread exists.  The method itself deliberately takes
        no cache lock (see the class docstring: doing so here would
        add a journal→cache edge), so an unlocked concurrent caller —
        say a future admin endpoint — would race evictions between
        ``entries()`` and each entry's stored-result read
        (``ResultStoreError``) and could interleave with another
        checkpoint's snapshot-write/journal-reset pair, losing
        records.  Route any such caller through the cache's mutation
        scope instead.
        """
        if self._cache is None:
            raise PersistenceError(
                "persister is not bound to a cache; call bind() first"
            )
        entries = tuple(
            self._admit_record(entry)
            for entry in sorted(
                self._cache.entries(), key=lambda e: e.entry_id
            )
        )
        snapshot = Snapshot(
            data_version=self._version_of(),
            ts_ms=self._now_ms(),
            entries=entries,
        )
        write_snapshot(self.snapshot_path, snapshot)
        with self._lock:
            self.journal.reset()
            self.last_snapshot_ts_ms = snapshot.ts_ms
        self._update_snapshot_age()
        # The flight-recorder mark; getattr-guarded because bind()
        # accepts any object with the metrics hooks.
        emit = getattr(self._obs, "telemetry_event", None)
        if emit is not None:
            emit(
                EV_SNAPSHOT_CHECKPOINT,
                at_ms=snapshot.ts_ms,
                entries=len(entries),
                data_version=snapshot.data_version,
            )
        return snapshot

    def load_snapshot(self) -> Snapshot | None:
        """The snapshot currently on disk (may raise SnapshotFormatError)."""
        return load_snapshot(self.snapshot_path)

    # ------------------------------------------------------------- status
    def status(self) -> dict[str, Any]:
        """The ``GET /persistence`` payload."""
        return {
            "directory": str(self.directory),
            "snapshot_every": self.snapshot_every,
            "durable": self.durable,
            "shard_id": self.shard_id,
            "journal": {
                "path": str(self.journal.path),
                "size_bytes": self.journal.size_bytes,
                "records_since_snapshot": self.journal.records_appended,
            },
            "total_records": self.total_records,
            "snapshot": {
                "path": str(self.snapshot_path),
                "exists": self.snapshot_path.exists(),
                "ts_ms": self.last_snapshot_ts_ms,
                "age_seconds": self._snapshot_age_seconds(),
            },
            "crash_plan": (
                self.crash_plan.to_dict()
                if self.crash_plan is not None
                else None
            ),
            "last_recovery": self.last_recovery,
        }

    # ------------------------------------------------------------ private
    def _admit_record(self, entry: "CacheEntry") -> AdmitRecord:
        template_id, param_items = entry.cache_key
        return AdmitRecord(
            entry_id=entry.entry_id,
            template_id=template_id,
            params=dict(param_items),
            region=region_to_dict(entry.region),
            signature=entry.signature,
            truncated=entry.truncated,
            result_xml=entry.result.to_xml(),
            data_version=self._version_of(),
            ts_ms=self._now_ms(),
            shard=self.shard_id,
        )

    def _now_ms(self) -> float:
        return 0.0 if self._clock is None else self._clock.now_ms

    def _append(self, record: Any) -> None:
        with self._lock:
            self.journal.append(record, durable=self.durable)
            self.total_records += 1
            if self._obs is not None:
                self._obs.journal_append(record.type)
            self._update_snapshot_age()
            session = self._crash_session
            if session is not None and session.should_crash(
                self.total_records
            ):
                damage = session.apply_damage(self.journal.path)
                raise SimulatedCrash(self.total_records, damage["damage"])
            due = self.journal.records_appended >= self.snapshot_every
        # Checkpoint outside the journal lock: it snapshots the live
        # cache (taking proxy.cache), and holding journal across that
        # would invert the cache -> journal acquisition order the
        # mutation-log hooks establish.  A race on the threshold at
        # worst checkpoints twice, which is harmless.
        if due:
            self.checkpoint()

    def _snapshot_age_seconds(self) -> float | None:
        if self.last_snapshot_ts_ms is None or self._clock is None:
            return None
        return max(0.0, self._clock.now_ms - self.last_snapshot_ts_ms) / 1e3

    def _update_snapshot_age(self) -> None:
        age = self._snapshot_age_seconds()
        if age is not None and self._obs is not None:
            self._obs.set_snapshot_age(age)
