"""The persistence layer's error hierarchy."""

from __future__ import annotations


class PersistenceError(Exception):
    """Root of the persistence layer's errors (journal/snapshot misuse,
    unusable directories, malformed records built by callers)."""


class SnapshotFormatError(PersistenceError):
    """A snapshot file exists but cannot be understood.

    Recovery treats this as *absence with a diagnosis* — the snapshot
    contributes nothing and the report records why — rather than a
    crash: a half-written snapshot cannot occur (snapshots are written
    atomically) but a corrupted disk can still hand back garbage.
    """
