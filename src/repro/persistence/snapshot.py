"""Periodic full-cache snapshots.

A snapshot is the journal's rent collector: every N journal records
the persister serializes the *entire* live entry set — the same
payload shape as an ``admit`` record, so one codec covers both — and
replaces the snapshot file atomically (temp file + ``os.replace``,
fsync'd).  Only after the snapshot is durably in place is the journal
truncated, so every instant in time has a complete recovery story:
either the old snapshot + old journal, or the new snapshot + empty
journal.

The entry payloads carry serialized region descriptions; recovery
re-admits them through the cache manager, which rebuilds whichever
cache description (array or R-tree) the restarted proxy was
configured with.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.persistence.atomic import atomic_write_text
from repro.persistence.errors import SnapshotFormatError
from repro.persistence.records import WIRE_FORMAT_VERSION, AdmitRecord


@dataclass(frozen=True)
class Snapshot:
    """A full serialized cache state at one instant."""

    data_version: int | None
    ts_ms: float
    entries: tuple[AdmitRecord, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": WIRE_FORMAT_VERSION,
            "data_version": self.data_version,
            "ts_ms": self.ts_ms,
            "entries": [entry.to_payload() for entry in self.entries],
        }


def write_snapshot(path: str | Path, snapshot: Snapshot) -> int:
    """Atomically replace the snapshot file; returns its byte size."""
    text = json.dumps(snapshot.to_dict(), sort_keys=True) + "\n"
    atomic_write_text(path, text, durable=True)
    return len(text.encode("utf-8"))


def load_snapshot(path: str | Path) -> Snapshot | None:
    """Read a snapshot back; ``None`` when no snapshot exists.

    Raises :class:`SnapshotFormatError` for files that exist but
    cannot be understood — recovery treats that as "no snapshot" and
    records the diagnosis rather than propagating.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise SnapshotFormatError(f"unreadable snapshot: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotFormatError(f"snapshot is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SnapshotFormatError("snapshot is not a JSON object")
    if payload.get("format") != WIRE_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot format {payload.get('format')!r}"
        )
    try:
        entries = tuple(
            AdmitRecord.from_payload(entry)
            for entry in payload.get("entries", ())
        )
        return Snapshot(
            data_version=(
                None
                if payload.get("data_version") is None
                else int(payload["data_version"])
            ),
            ts_ms=float(payload.get("ts_ms", 0.0)),
            entries=entries,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(
            f"malformed snapshot entries: {exc}"
        ) from exc
