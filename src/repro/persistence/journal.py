"""The append-only cache-mutation journal.

The write side is deliberately boring: open the file in append mode,
write one framed record (:mod:`repro.persistence.records`), flush, and
optionally fsync.  Appends are the only mutation between snapshots, so
a crash can damage *at most the tail* of the file — which is exactly
the failure the read side is built to absorb.

The read side streams the file in fixed-size chunks (a record ending
exactly on a chunk boundary is a tested edge case), decodes frames,
and stops cleanly at the first torn or corrupt one.  The result says
what was read, how far, and why it stopped; deciding what the records
*mean* is recovery's job (:mod:`repro.persistence.recovery`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.locking import guarded_by, named_lock, unshared
from repro.persistence.errors import PersistenceError
from repro.persistence.records import (
    FrameOutcome,
    JournalRecord,
    encode_record,
    iter_frames,
)

#: Chunk size of the streaming reader.
READ_BUFFER_SIZE = 4096


@unshared(
    "records", "bytes_replayed", "bytes_total", "stop_reason", "stop_detail"
)
@dataclass
class JournalReadResult:
    """Everything one pass over a journal file learned.

    Built and filled by the single thread running a replay, then
    treated as read-only — hence the ``unshared`` registration.
    """

    records: list[JournalRecord] = field(default_factory=list)
    bytes_replayed: int = 0  # bytes of intact frames
    bytes_total: int = 0  # file size, damaged tail included
    stop_reason: str | None = None  # None (clean EOF) | "torn" | "corrupt"
    stop_detail: str = ""

    @property
    def clean(self) -> bool:
        return self.stop_reason is None


@guarded_by("persistence.journal.file", "records_appended")
class Journal:
    """One append-only journal file of framed cache mutations.

    ``append`` and ``reset`` serialize on the innermost persistence
    lock, ``persistence.journal.file`` — frames from two threads must
    never interleave inside the file, and the counter must match the
    frames actually written.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise PersistenceError(
                f"cannot create journal directory {self.path.parent}: {exc}"
            ) from exc
        self._lock = named_lock("persistence.journal.file")
        self.records_appended = 0

    # ----------------------------------------------------------- writing
    def append(self, record: JournalRecord, durable: bool = False) -> int:
        """Append one record; returns the frame's size in bytes."""
        frame = encode_record(record)
        with self._lock:
            with open(self.path, "ab") as handle:
                handle.write(frame)
                handle.flush()
                if durable:
                    os.fsync(handle.fileno())
            self.records_appended += 1
        return len(frame)

    def reset(self) -> None:
        """Truncate the journal (after a successful snapshot)."""
        with self._lock:
            with open(self.path, "wb"):
                pass
            self.records_appended = 0

    @property
    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except FileNotFoundError:
            return 0

    # ----------------------------------------------------------- reading
    def read(self) -> JournalReadResult:
        """Replay the file's intact record prefix.

        Never raises for file damage: a missing file is an empty
        journal, and a torn or corrupt tail terminates the walk with
        the reason recorded on the result.
        """
        result = JournalReadResult()
        try:
            handle = open(self.path, "rb")
        except FileNotFoundError:
            return result
        with handle:
            buffer = b""
            while True:
                chunk = handle.read(READ_BUFFER_SIZE)
                at_eof = not chunk
                buffer += chunk
                consumed = self._drain(buffer, at_eof, result)
                buffer = buffer[consumed:]
                if result.stop_reason is not None:
                    # Count the damaged tail toward the file total.
                    result.bytes_total = (
                        result.bytes_replayed
                        + len(buffer)
                        + sum(len(c) for c in iter(handle.read, b""))
                    )
                    return result
                if at_eof:
                    result.bytes_total = result.bytes_replayed + len(buffer)
                    if buffer:
                        # Clean EOF but trailing bytes: a frame that
                        # never finished writing.
                        result.stop_reason = "torn"
                        result.stop_detail = (
                            f"{len(buffer)} trailing bytes at end of file"
                        )
                    return result

    @staticmethod
    def _drain(
        buffer: bytes, at_eof: bool, result: JournalReadResult
    ) -> int:
        """Decode complete frames from ``buffer`` into ``result``.

        Returns the bytes consumed.  Incomplete tails are only
        classified as torn once ``at_eof`` says no more data is coming;
        until then they simply wait for the next chunk.
        """
        consumed = 0
        for outcome in iter_frames(buffer):
            if outcome.stop_reason == "torn" and not at_eof:
                break  # frame may complete with the next chunk
            if outcome.stop_reason is not None:
                result.stop_reason = outcome.stop_reason
                result.stop_detail = outcome.detail
                break
            assert outcome.record is not None
            result.records.append(outcome.record)
            consumed += outcome.consumed
            result.bytes_replayed += outcome.consumed
        return consumed


def frame_outcomes(data: bytes) -> list[FrameOutcome]:
    """Expose the raw frame walk (tests and tooling)."""
    return list(iter_frames(data))
