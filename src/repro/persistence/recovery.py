"""Warm-restart recovery: snapshot + journal -> a rebuilt cache.

``recover_cache`` replays persistence state into a fresh
:class:`~repro.core.cache.CacheManager` in four phases, each under its
own tracer span:

1. **snapshot load** — the last full cache image, or nothing (a
   malformed snapshot is diagnosed and treated as absent, never fatal);
2. **journal replay** — walk the journal's intact record prefix and
   apply each mutation to an in-memory image keyed by the *old* entry
   ids (admit inserts, evict deletes, clear empties).  The walk stops
   cleanly at the first torn or CRC-failing record: a crash loses at
   most the mutations past the tear, never the prefix;
3. **version fencing** — drop every surviving entry whose recorded
   origin ``data_version`` does not match the origin's *current*
   version.  This is what makes recovery safe against PR 3's scheduled
   version bumps: a proxy that died before noticing a bump (or while
   the origin moved on without it) must not serve stale-versioned
   regions after restart;
4. **materialize** — re-admit survivors through the normal
   ``CacheManager.store`` path (journaling suspended), re-binding each
   query through the template manager so the cache description — array
   or R-tree, whatever the restarted proxy uses — is rebuilt from the
   serialized region descriptions.  A survivor that no longer binds
   (template changed across restart) is dropped as an error, and a
   byte-budgeted cache may evict during restore exactly as it would
   during traffic.

The structured :class:`RecoveryReport` captures every disposition and
feeds ``recovery_entries_total{disposition}`` plus the
``GET /persistence`` endpoint.  Recovery never raises for damaged
state — only for programmer errors (an unbound persister).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.persistence.errors import SnapshotFormatError
from repro.persistence.records import (
    AdmitRecord,
    ClearRecord,
    EvictRecord,
    region_from_dict,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cache import CacheManager
    from repro.persistence.persister import CachePersister
    from repro.templates.manager import TemplateManager


@dataclass
class RecoveryReport:
    """What one warm restart restored, dropped, and replayed."""

    snapshot_loaded: bool = False
    snapshot_entries: int = 0
    snapshot_error: str = ""
    records_replayed: int = 0
    record_counts: dict[str, int] = field(default_factory=dict)
    bytes_replayed: int = 0
    bytes_total: int = 0
    stop_reason: str | None = None  # None | "torn" | "corrupt"
    stop_detail: str = ""
    data_version: int | None = None
    entries_restored: int = 0
    entries_stale: int = 0
    entries_foreign: int = 0
    entries_error: int = 0
    entries_rejected: int = 0
    entries_evicted: int = 0
    evictions: list[dict[str, Any]] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the journal replayed to its end undamaged."""
        return self.stop_reason is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_entries": self.snapshot_entries,
            "snapshot_error": self.snapshot_error,
            "records_replayed": self.records_replayed,
            "record_counts": dict(self.record_counts),
            "bytes_replayed": self.bytes_replayed,
            "bytes_total": self.bytes_total,
            "stop_reason": self.stop_reason,
            "stop_detail": self.stop_detail,
            "data_version": self.data_version,
            "entries_restored": self.entries_restored,
            "entries_stale": self.entries_stale,
            "entries_foreign": self.entries_foreign,
            "entries_error": self.entries_error,
            "entries_rejected": self.entries_rejected,
            "entries_evicted": self.entries_evicted,
            "evictions": list(self.evictions),
            "errors": list(self.errors),
        }


def _span(obs: Any, name: str, **attrs: Any) -> Any:
    tracer = getattr(obs, "tracer", None)
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attrs)


def recover_cache(
    persister: "CachePersister",
    cache: "CacheManager",
    templates: "TemplateManager",
    obs: Any = None,
) -> RecoveryReport:
    """Rebuild ``cache`` from ``persister``'s snapshot + journal.

    Returns the structured report; also stores it on the persister
    (for ``GET /persistence``) and, when the restore changed anything,
    re-checkpoints so the damaged tail is repaired on disk.
    """
    report = RecoveryReport()
    report.data_version = persister.current_version()

    with _span(obs, "recovery"):
        # Phase 1: snapshot -------------------------------------------------
        with _span(obs, "snapshot_load"):
            try:
                snapshot = persister.load_snapshot()
            except SnapshotFormatError as exc:
                snapshot = None
                report.snapshot_error = str(exc)
            image: dict[int, AdmitRecord] = {}
            if snapshot is not None:
                report.snapshot_loaded = True
                report.snapshot_entries = len(snapshot.entries)
                for record in snapshot.entries:
                    image[record.entry_id] = record

        # Phase 2: journal replay ------------------------------------------
        with _span(obs, "journal_replay") as replay_span:
            read = persister.journal.read()
            report.records_replayed = len(read.records)
            report.bytes_replayed = read.bytes_replayed
            report.bytes_total = read.bytes_total
            report.stop_reason = read.stop_reason
            report.stop_detail = read.stop_detail
            for record in read.records:
                report.record_counts[record.type] = (
                    report.record_counts.get(record.type, 0) + 1
                )
                if obs is not None:
                    obs.journal_replayed(record.type)
                if isinstance(record, AdmitRecord):
                    image[record.entry_id] = record
                elif isinstance(record, EvictRecord):
                    image.pop(record.entry_id, None)
                elif isinstance(record, ClearRecord):
                    image.clear()
            if replay_span is not None and hasattr(replay_span, "annotate"):
                replay_span.annotate(
                    records=report.records_replayed,
                    bytes=report.bytes_replayed,
                    stop=report.stop_reason or "clean",
                )

        # Phases 3+4: fence versions, then materialize ---------------------
        with _span(obs, "materialize"):
            # Locked setters, not raw attribute writes: recovery must
            # not hold the persister lock while calling cache.store
            # (that would invert the cache -> journal lock order).
            persister.set_suspended(True)
            local_shard = persister.shard_id
            try:
                for record in image.values():
                    # Foreign-tagged records (a handoff file replayed
                    # on the wrong shard, or a copied directory) are
                    # skipped, not re-admitted: the ring owner serves
                    # them now.
                    if (
                        record.shard is not None
                        and record.shard != local_shard
                    ):
                        report.entries_foreign += 1
                        continue
                    if (
                        report.data_version is not None
                        and record.data_version != report.data_version
                    ):
                        report.entries_stale += 1
                        continue
                    _materialize(record, cache, templates, report)
            finally:
                persister.set_suspended(False)

    if obs is not None:
        obs.recovery_disposition("restored", report.entries_restored)
        obs.recovery_disposition("stale", report.entries_stale)
        obs.recovery_disposition("foreign", report.entries_foreign)
        obs.recovery_disposition("error", report.entries_error)
        obs.recovery_disposition("rejected", report.entries_rejected)

    persister.record_recovery(report.to_dict())
    # Repair the tail: the restored state becomes the new snapshot and
    # the (possibly damaged) journal is truncated behind it.
    persister.checkpoint()
    return report


def _materialize(
    record: AdmitRecord,
    cache: "CacheManager",
    templates: "TemplateManager",
    report: RecoveryReport,
) -> None:
    """Re-admit one journal/snapshot entry through the cache manager."""
    from repro.relational.result import ResultTable

    try:
        region = region_from_dict(record.region)
        result = ResultTable.from_xml(record.result_xml)
        bound = templates.bind(record.template_id, record.params)
        if bound.region != region:
            raise ValueError(
                "re-bound region disagrees with the journaled region "
                "(template changed across restart?)"
            )
    except Exception as exc:  # defensive: one bad entry must not abort
        report.entries_error += 1
        if len(report.errors) < 8:
            report.errors.append(
                f"entry {record.entry_id} ({record.template_id}): {exc}"
            )
        return
    entry, maintenance = cache.store(
        bound, result, record.signature, record.truncated
    )
    report.entries_evicted += maintenance.evicted_entries
    for eviction in maintenance.evictions:
        report.evictions.append(eviction.to_dict())
    if entry is None:
        report.entries_rejected += 1
    else:
        report.entries_restored += 1
