"""Crash-consistent cache persistence for the function proxy.

The proxy's semantic cache used to die with the process; this package
makes it restart warm:

* :mod:`repro.persistence.atomic` — temp-file + ``os.replace`` writes,
  the only sanctioned way to write whole artifacts (lint rule FP307);
* :mod:`repro.persistence.records` — the journal record types and
  their length-prefixed, CRC32-checksummed wire format;
* :mod:`repro.persistence.journal` — the append-only mutation journal
  and its torn-tail-tolerant reader;
* :mod:`repro.persistence.snapshot` — periodic full-cache snapshots,
  atomically replaced, after which the journal is truncated;
* :mod:`repro.persistence.persister` — the
  :class:`~repro.persistence.persister.CachePersister` mutation-log
  hook the cache manager reports to, with snapshot cadence and
  seeded crash injection (:class:`~repro.faults.crash.CrashPlan`);
* :mod:`repro.persistence.recovery` — warm-restart replay: snapshot +
  journal prefix, version fencing against the origin's current data
  version, and the structured
  :class:`~repro.persistence.recovery.RecoveryReport`.

Everything is deterministic: journal contents are a pure function of
the mutation stream, and crash damage comes from seeded plans, so
recovery experiments replay bit-identically.
"""

from repro.persistence.atomic import atomic_write_bytes, atomic_write_text
from repro.persistence.errors import PersistenceError, SnapshotFormatError
from repro.persistence.journal import (
    Journal,
    JournalReadResult,
    READ_BUFFER_SIZE,
)
from repro.persistence.persister import (
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    CachePersister,
)
from repro.persistence.records import (
    AdmitRecord,
    ClearRecord,
    EvictRecord,
    HEADER_SIZE,
    JournalRecord,
    WIRE_FORMAT_VERSION,
    encode_record,
    region_from_dict,
    region_to_dict,
)
from repro.persistence.recovery import RecoveryReport, recover_cache
from repro.persistence.snapshot import (
    Snapshot,
    load_snapshot,
    write_snapshot,
)

__all__ = [
    "AdmitRecord",
    "CachePersister",
    "ClearRecord",
    "EvictRecord",
    "HEADER_SIZE",
    "JOURNAL_NAME",
    "Journal",
    "JournalReadResult",
    "JournalRecord",
    "PersistenceError",
    "READ_BUFFER_SIZE",
    "RecoveryReport",
    "SNAPSHOT_NAME",
    "Snapshot",
    "SnapshotFormatError",
    "WIRE_FORMAT_VERSION",
    "atomic_write_bytes",
    "atomic_write_text",
    "encode_record",
    "load_snapshot",
    "recover_cache",
    "region_from_dict",
    "region_to_dict",
    "write_snapshot",
]
