"""Journal records and their wire format.

One journal record describes one cache mutation.  Three types exist
(the DESIGN.md "Journal record wire format" table pins this contract):

* ``admit`` — a query result entered the cache.  Carries everything
  recovery needs to rebuild the entry without the origin: the entry
  id, the producing template id and parameter bindings, the region in
  serialized form, the residual-predicate signature, the truncated
  flag, the result as XML, the origin ``data_version`` the result was
  computed against, and the simulated-clock timestamp.
* ``evict`` — an entry left the cache, with the reason (``evict`` from
  the replacement policy, ``consolidate`` from region-containment
  maintenance, ``replace`` when an identical query re-raced in).
* ``clear`` — the whole cache was flushed (origin data-version change).
  Carries the origin version the flush fenced up to.

Framing
-------
Each record is length-prefixed and checksummed::

    [u32 payload length (LE)] [u32 CRC32 of payload (LE)] [payload]

The payload is canonical JSON (sorted keys, UTF-8).  A reader walks
frames until the file ends; a header or payload cut short is a *torn*
record, a checksum mismatch is a *corrupt* record, and either one
terminates replay cleanly at the last good record — exactly the
crash-consistency contract an append-only journal buys.

Region codec
------------
Only the three shapes the cache description stores (hyperrectangles,
hyperspheres, convex polytopes) are serializable; remainder-only
shapes (difference/union) never reach the journal.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.geometry.regions import (
    ConvexPolytope,
    Halfspace,
    HyperRect,
    HyperSphere,
    Region,
)
from repro.persistence.errors import PersistenceError

#: Bump when the payload schema changes incompatibly; readers refuse
#: records from the future instead of misinterpreting them.
WIRE_FORMAT_VERSION = 1

_HEADER = struct.Struct("<II")

#: The frame header's size in bytes (length prefix + CRC32).
HEADER_SIZE = _HEADER.size


# ------------------------------------------------------------- regions
def region_to_dict(region: Region) -> dict[str, Any]:
    """Serialize a cacheable region shape; raises on remainder-only
    shapes, which by construction never reach the journal."""
    if isinstance(region, HyperSphere):
        return {
            "shape": "hypersphere",
            "center": list(region.center),
            "radius": region.radius,
        }
    if isinstance(region, HyperRect):
        return {
            "shape": "hyperrect",
            "lows": list(region.lows),
            "highs": list(region.highs),
        }
    if isinstance(region, ConvexPolytope):
        return {
            "shape": "polytope",
            "halfspaces": [
                {"normal": list(h.normal), "offset": h.offset}
                for h in region.halfspaces
            ],
            "bbox": {
                "lows": list(region.bbox.lows),
                "highs": list(region.bbox.highs),
            },
        }
    raise PersistenceError(
        f"region shape {type(region).__name__} is not journal-serializable"
    )


def region_from_dict(payload: Mapping[str, Any]) -> Region:
    """Rebuild a region from its serialized form."""
    try:
        shape = payload["shape"]
        if shape == "hypersphere":
            return HyperSphere(
                center=tuple(payload["center"]), radius=payload["radius"]
            )
        if shape == "hyperrect":
            return HyperRect(
                lows=tuple(payload["lows"]), highs=tuple(payload["highs"])
            )
        if shape == "polytope":
            return ConvexPolytope(
                halfspaces=tuple(
                    Halfspace(tuple(h["normal"]), h["offset"])
                    for h in payload["halfspaces"]
                ),
                bbox=HyperRect(
                    lows=tuple(payload["bbox"]["lows"]),
                    highs=tuple(payload["bbox"]["highs"]),
                ),
            )
    except (KeyError, TypeError) as exc:
        raise PersistenceError(f"malformed region payload: {exc}") from exc
    raise PersistenceError(f"unknown region shape {shape!r}")


# ------------------------------------------------------------- records
@dataclass(frozen=True)
class AdmitRecord:
    """A query result entered the cache."""

    entry_id: int
    template_id: str
    params: dict[str, Any]
    region: dict[str, Any]
    signature: str
    truncated: bool
    result_xml: str
    data_version: int | None
    ts_ms: float
    #: The shard worker that admitted the entry; ``None`` on a
    #: single-proxy deployment.  Omitted from the payload when unset so
    #: pre-shard wire-v1 journals stay byte-identical.
    shard: str | None = None

    type = "admit"

    def to_payload(self) -> dict[str, Any]:
        payload = {
            "type": self.type,
            "v": WIRE_FORMAT_VERSION,
            "entry_id": self.entry_id,
            "template_id": self.template_id,
            "params": self.params,
            "region": self.region,
            "signature": self.signature,
            "truncated": self.truncated,
            "result_xml": self.result_xml,
            "data_version": self.data_version,
            "ts_ms": self.ts_ms,
        }
        if self.shard is not None:
            payload["shard"] = self.shard
        return payload

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "AdmitRecord":
        return AdmitRecord(
            entry_id=int(payload["entry_id"]),
            template_id=str(payload["template_id"]),
            params=dict(payload["params"]),
            region=dict(payload["region"]),
            signature=str(payload["signature"]),
            truncated=bool(payload["truncated"]),
            result_xml=str(payload["result_xml"]),
            data_version=(
                None
                if payload["data_version"] is None
                else int(payload["data_version"])
            ),
            ts_ms=float(payload["ts_ms"]),
            shard=(
                None
                if payload.get("shard") is None
                else str(payload["shard"])
            ),
        )


@dataclass(frozen=True)
class EvictRecord:
    """An entry left the cache."""

    entry_id: int
    reason: str  # "evict" | "consolidate" | "replace"
    data_version: int | None
    ts_ms: float

    type = "evict"

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.type,
            "v": WIRE_FORMAT_VERSION,
            "entry_id": self.entry_id,
            "reason": self.reason,
            "data_version": self.data_version,
            "ts_ms": self.ts_ms,
        }

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "EvictRecord":
        return EvictRecord(
            entry_id=int(payload["entry_id"]),
            reason=str(payload["reason"]),
            data_version=(
                None
                if payload["data_version"] is None
                else int(payload["data_version"])
            ),
            ts_ms=float(payload["ts_ms"]),
        )


@dataclass(frozen=True)
class ClearRecord:
    """The whole cache was flushed (origin data-version change)."""

    data_version: int | None
    removed: int
    ts_ms: float

    type = "clear"

    def to_payload(self) -> dict[str, Any]:
        return {
            "type": self.type,
            "v": WIRE_FORMAT_VERSION,
            "data_version": self.data_version,
            "removed": self.removed,
            "ts_ms": self.ts_ms,
        }

    @staticmethod
    def from_payload(payload: Mapping[str, Any]) -> "ClearRecord":
        return ClearRecord(
            data_version=(
                None
                if payload["data_version"] is None
                else int(payload["data_version"])
            ),
            removed=int(payload["removed"]),
            ts_ms=float(payload["ts_ms"]),
        )


JournalRecord = AdmitRecord | EvictRecord | ClearRecord

_PARSERS = {
    "admit": AdmitRecord.from_payload,
    "evict": EvictRecord.from_payload,
    "clear": ClearRecord.from_payload,
}


# ------------------------------------------------------------- framing
def encode_record(record: JournalRecord) -> bytes:
    """One framed record: header (length + CRC32) followed by payload."""
    payload = json.dumps(
        record.to_payload(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def parse_payload(payload: bytes) -> JournalRecord:
    """Decode one checksum-verified payload into its record."""
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"unparseable record payload: {exc}") from exc
    if not isinstance(decoded, dict):
        raise PersistenceError("record payload is not a JSON object")
    version = decoded.get("v")
    if version != WIRE_FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported wire format version {version!r}"
        )
    parser = _PARSERS.get(decoded.get("type", ""))
    if parser is None:
        raise PersistenceError(
            f"unknown record type {decoded.get('type')!r}"
        )
    try:
        return parser(decoded)
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistenceError(f"malformed record fields: {exc}") from exc


@dataclass(frozen=True)
class FrameOutcome:
    """One step of the frame walk: a record, or why the walk stopped.

    ``stop_reason`` is ``None`` for good frames, ``"torn"`` when the
    file ends mid-frame (the classic torn write), and ``"corrupt"``
    when the frame is complete but fails its checksum or cannot be
    decoded.  ``consumed`` is the frame's total size for good frames
    and 0 otherwise (a stopper contributes no replayed bytes).
    """

    record: JournalRecord | None
    consumed: int
    stop_reason: str | None = None
    detail: str = ""


def iter_frames(data: bytes, offset: int = 0) -> Iterator[FrameOutcome]:
    """Walk frames in ``data``; the final item may be a stopper."""
    position = offset
    total = len(data)
    while position < total:
        if total - position < HEADER_SIZE:
            yield FrameOutcome(
                None, 0, "torn",
                f"{total - position} trailing bytes, header needs "
                f"{HEADER_SIZE}",
            )
            return
        length, crc = _HEADER.unpack_from(data, position)
        start = position + HEADER_SIZE
        end = start + length
        if end > total:
            yield FrameOutcome(
                None, 0, "torn",
                f"payload cut short: {total - start} of {length} bytes",
            )
            return
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            yield FrameOutcome(
                None, 0, "corrupt", "CRC32 mismatch"
            )
            return
        try:
            record = parse_payload(payload)
        except PersistenceError as exc:
            yield FrameOutcome(None, 0, "corrupt", str(exc))
            return
        yield FrameOutcome(record, HEADER_SIZE + length)
        position = end
