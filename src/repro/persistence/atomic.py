"""Atomic file replacement: temp file + ``os.replace``.

Every artifact the repository writes whole (snapshots, benchmark
tables, JSON dumps, trace files, stored result files) goes through
these helpers so an interrupted writer can never leave a truncated
file behind: readers see either the previous complete version or the
new complete version, nothing in between.  Lint rule FP307 forbids
bare ``open(..., "w")`` / ``Path.write_text`` everywhere outside this
package; this module is the sanctioned replacement.

The temp file is created *in the destination directory* — ``os.replace``
is only atomic within one filesystem — under a dot-prefixed name that
directory scans for artifacts will not pick up.  ``fsync`` is optional
because most callers write reproducible artifacts (re-runnable on
loss), while the crash-consistent journal/snapshot machinery passes
``durable=True``.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_bytes(
    path: str | Path, data: bytes, durable: bool = False
) -> None:
    """Replace ``path``'s contents with ``data`` atomically."""
    path = Path(path)
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_text(
    path: str | Path,
    text: str,
    encoding: str = "utf-8",
    durable: bool = False,
) -> None:
    """Replace ``path``'s contents with ``text`` atomically."""
    atomic_write_bytes(path, text.encode(encoding), durable=durable)
