# concurrency: serve-path
"""The consistent-hash ring the shard router places queries on.

Classic consistent hashing with virtual nodes: each shard id is hashed
onto the ring ``vnodes`` times, a route key walks clockwise from its
own hash to the first vnode, and the failover chain is the continued
walk — the next *distinct* shards in ring order.  Hashing is MD5-based
and therefore stable across processes and interpreter restarts (unlike
``hash()``, which is salted): the same shard set and the same key
always produce the same preference order, which is what makes routing
decisions replayable byte for byte.

The ring is immutable after construction.  Membership changes (a shard
draining out, a crashed shard being skipped) are the *router's* state;
the ring only answers "in what order would these shards be tried?".
"""

from __future__ import annotations

import bisect
import hashlib


def ring_hash(token: str) -> int:
    """A stable 64-bit position on the ring for ``token``."""
    digest = hashlib.md5(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over a set of shard ids."""

    def __init__(self, nodes: tuple[str, ...] | list[str], vnodes: int = 64):
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate ring nodes: {sorted(nodes)}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.nodes = tuple(sorted(nodes))
        self.vnodes = vnodes
        points = []
        for node in self.nodes:
            for replica in range(vnodes):
                points.append((ring_hash(f"{node}#{replica}"), node))
        points.sort()
        self._points = tuple(points)
        self._hashes = tuple(point[0] for point in points)

    def __len__(self) -> int:
        return len(self.nodes)

    def preference(self, key: str) -> tuple[str, ...]:
        """Every node, in the order the walk from ``key`` reaches them.

        The first entry is the key's primary owner; the rest are its
        failover chain.  Each node appears exactly once.
        """
        start = bisect.bisect_left(self._hashes, ring_hash(key))
        seen: list[str] = []
        for offset in range(len(self._points)):
            _, node = self._points[(start + offset) % len(self._points)]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self.nodes):
                    break
        return tuple(seen)

    def primary(self, key: str) -> str:
        """The node that owns ``key``."""
        return self.preference(key)[0]

    def successors(self, node: str) -> tuple[str, ...]:
        """The other nodes in walk order from ``node``'s ring position.

        The natural handoff order for a departing shard: its cache is
        replayed into the first live entry of this tuple.
        """
        if node not in self.nodes:
            raise ValueError(f"unknown ring node {node!r}")
        return tuple(n for n in self.preference(node) if n != node)
