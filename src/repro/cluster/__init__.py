"""The sharded proxy tier: ring, router, warm handoff, event frontend.

This package is the tier's *only* public surface: the FP312 lint rule
forbids importing ``repro.cluster.<module>`` internals from outside the
package, so shard-to-shard movement always goes through the router and
handoff machinery re-exported here.
"""

from repro.cluster.frontend import ClusterFrontend
from repro.cluster.handoff import (
    HandoffReport,
    decode_handoff,
    encode_handoff,
    export_records,
    persisted_records,
    replay_records,
)
from repro.cluster.ring import HashRing, ring_hash
from repro.cluster.router import (
    REASON_SHARD_DOWN,
    RouteAttempt,
    RouteDecision,
    RouterConfig,
    Shard,
    ShardRouter,
)

__all__ = [
    "ClusterFrontend",
    "HandoffReport",
    "HashRing",
    "REASON_SHARD_DOWN",
    "RouteAttempt",
    "RouteDecision",
    "RouterConfig",
    "Shard",
    "ShardRouter",
    "decode_handoff",
    "encode_handoff",
    "export_records",
    "persisted_records",
    "replay_records",
    "ring_hash",
]
