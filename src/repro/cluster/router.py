# concurrency: serve-path
"""The shard router: consistent-hash dispatch with health-aware failover.

A :class:`ShardRouter` fronts N :class:`~repro.core.proxy.FunctionProxy`
shard workers.  Each query is hashed by its *bound template* onto the
:class:`~repro.cluster.ring.HashRing` — every binding of one template
lands on one shard, so that shard accumulates the template's cached
regions and the semantic-overlap machinery keeps working per shard.
Templates listed in ``RouterConfig.region_partitions`` are instead
hashed by template *plus* a coarse spatial cell of the bound region, so
a hot sky-survey template spreads across shards while queries near each
other still share a cache.

Failover never raises: a shard that is crashed or hung (the seeded
:class:`~repro.faults.shard.ShardCrashPlan`), drained, or judged
``unhealthy`` by its own PR 9 :class:`~repro.obs.health.HealthMonitor`
is skipped and the walk continues down the key's preference order.
When no shard can take the query, the router degrades to the origin
tunnel (``fallback.serve_admitted(degrade=True)``) or, without a
fallback, sheds with the structured ``shed`` outcome — the same
turned-away vocabulary single-proxy admission uses.

A *crash* loses the shard's memory but not its disk: the router clears
the dead shard's cache (persister suspended, so the durable image
survives), reads the snapshot+journal image back, and warm-hands it to
the first live ring successor through the normal ``cache.store`` path
(:mod:`repro.cluster.handoff`).  A *drain* is the planned version of
the same movement, exporting the live cache instead.

Locking: ``router.state`` guards the routing sequence, the decision
log, the drained/crash bookkeeping, and the fault session's rng.  The
router never calls into a shard proxy, emits an event, or bumps a
metric while holding it — shard-side locks (``proxy.*``) are acquired
only after ``router.state`` is released, so the lock-order graph gains
no edge out of ``router.state`` at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.cluster.handoff import (
    HandoffReport,
    encode_handoff,
    export_records,
    persisted_records,
    replay_records,
)
from repro.cluster.ring import HashRing
from repro.core.stats import QueryOutcome
from repro.faults.shard import ShardCrashPlan, ShardCrashSession, ShardFaultKind
from repro.geometry.regions import ConvexPolytope, HyperRect, HyperSphere, Region
from repro.locking import guarded_by, named_lock, read_only, unshared
from repro.network.clock import SimulatedClock
from repro.obs.events import (
    EV_FAILOVER_REROUTE,
    EV_HANDOFF_COMPLETED,
    EV_SHARD_CRASH,
    NULL_EVENTS,
)
from repro.obs.health import HEALTHY, UNHEALTHY, evaluate_samples
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import NULL_TIMESERIES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.proxy import FunctionProxy, ProxyResponse
    from repro.templates.manager import BoundQuery

#: The structured-rejection reason a query sheds with when its shard
#: tier cannot take it (no live shard, no origin fallback).
REASON_SHARD_DOWN = "shard-down"

#: Per-shard statuses that mean "do not dispatch here".
_NOT_DISPATCHABLE = ("unhealthy", "unreachable", "drained")


@dataclass(frozen=True)
class Shard:
    """One shard worker: a stable id plus its proxy."""

    shard_id: str
    proxy: "FunctionProxy"


@dataclass(frozen=True)
class RouterConfig:
    """Routing policy knobs.

    ``region_partitions`` maps a template id to a spatial cell size:
    bindings of that template route by template *and* the cell their
    region's center falls in, spreading one hot template across shards.
    ``failover=False`` is the experiment control — the router only ever
    tries the primary, so a crashed shard's queries visibly fail.
    """

    vnodes: int = 64
    failover: bool = True
    handoff_on_crash: bool = True
    region_partitions: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for template_id, cell in self.region_partitions.items():
            if cell <= 0:
                raise ValueError(
                    f"region partition cell for {template_id!r} must be "
                    f"positive: {cell}"
                )


@dataclass(frozen=True)
class RouteAttempt:
    """One shard consulted during a route walk and what happened.

    ``fate`` is one of ``dispatched`` (the query went here),
    ``drained`` (administratively out), ``crash`` / ``hang`` /
    ``transient`` (the fault session's verdicts), or ``unhealthy``
    (the shard's own health monitor said stay away).
    """

    shard_id: str
    fate: str

    def to_dict(self) -> dict[str, Any]:
        return {"shard_id": self.shard_id, "fate": self.fate}


@dataclass(frozen=True)
class RouteDecision:
    """One query's complete routing outcome (the determinism artifact).

    ``dispatched`` is ``None`` when every candidate was refused — the
    query then tunnels to the origin fallback or sheds.
    """

    seq: int
    key: str
    primary: str
    attempts: tuple[RouteAttempt, ...]
    dispatched: str | None
    slowdown: float = 1.0

    @property
    def rerouted(self) -> bool:
        """True when the query landed on a non-primary shard."""
        return self.dispatched is not None and self.dispatched != self.primary

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "key": self.key,
            "primary": self.primary,
            "attempts": [attempt.to_dict() for attempt in self.attempts],
            "dispatched": self.dispatched,
            "slowdown": self.slowdown,
        }


def _region_center(region: Region) -> tuple[float, ...] | None:
    """A representative point for spatial partitioning, or ``None``."""
    if isinstance(region, HyperSphere):
        return tuple(region.center)
    if isinstance(region, HyperRect):
        return tuple(
            (low + high) / 2.0
            for low, high in zip(region.lows, region.highs)
        )
    if isinstance(region, ConvexPolytope):
        bbox = region.bbox
        return tuple(
            (low + high) / 2.0 for low, high in zip(bbox.lows, bbox.highs)
        )
    return None


@guarded_by(
    "router.state",
    "_seq",
    "decisions",
    "_drained",
    "_crash_handled",
    "handoffs",
)
@unshared("clock")
@read_only(
    # _session is bound once; its *interior* rng state mutates only
    # under router.state (route/check_faults draw while holding it).
    "_session",
    "config",
    "fallback",
    "registry",
    "events",
    "timeseries",
)
class ShardRouter:
    """Consistent-hash front tier over N shard proxies.

    Construction wires the ring, the seeded fault session, and the
    router's own metrics registry (the five ``router_*`` families the
    pinned ``ROUTER_LANES`` sample).  ``clock`` is rebound by the
    event-loop frontend during single-threaded wiring, hence
    ``unshared``.
    """

    def __init__(
        self,
        shards: tuple[Shard, ...] | list[Shard],
        fallback: "FunctionProxy | None" = None,
        config: RouterConfig | None = None,
        crash_plan: ShardCrashPlan | None = None,
        clock: Any = None,
        events: Any = None,
        timeseries: Any = None,
    ) -> None:
        if not shards:
            raise ValueError("a shard router needs at least one shard")
        ids = [shard.shard_id for shard in shards]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids: {sorted(ids)}")
        self.config = config if config is not None else RouterConfig()
        self._shards: dict[str, Shard] = {
            shard.shard_id: shard for shard in shards
        }
        self._ring = HashRing(ids, vnodes=self.config.vnodes)
        self.fallback = fallback
        self.clock = clock if clock is not None else SimulatedClock()
        self.events = events if events is not None else NULL_EVENTS
        self.timeseries = (
            timeseries if timeseries is not None else NULL_TIMESERIES
        )
        self._lock = named_lock("router.state")
        self._session: ShardCrashSession | None = (
            crash_plan.session() if crash_plan is not None else None
        )
        self._seq = 0
        self.decisions: list[RouteDecision] = []
        self._drained: set[str] = set()
        self._crash_handled: set[str] = set()
        self.handoffs: list[HandoffReport] = []
        self.registry = MetricsRegistry()
        self._metric_queries = self.registry.counter(
            "router_queries_total", "Queries the router dispatched or refused"
        )
        self._metric_failover = self.registry.counter(
            "router_failover_total", "Queries dispatched off their primary"
        )
        self._metric_tunnel = self.registry.counter(
            "router_tunnel_total", "Queries tunnelled to the origin fallback"
        )
        self._metric_shards_up = self.registry.gauge(
            "router_shards_up", "Shards currently dispatchable"
        )
        self._metric_shards_total = self.registry.gauge(
            "router_shards_total", "Shards configured"
        )
        self.timeseries.bind(self.registry)
        self._metric_shards_total.set(float(len(self._shards)))
        self._metric_shards_up.set(float(len(self._shards)))

    # ---------------------------------------------------------- topology
    @property
    def shard_ids(self) -> tuple[str, ...]:
        return self._ring.nodes

    @property
    def ring(self) -> HashRing:
        return self._ring

    def shard(self, shard_id: str) -> Shard:
        return self._shards[shard_id]

    def route_key(self, bound: "BoundQuery") -> str:
        """The string the ring hashes for ``bound``.

        Plain templates route by template id alone; a template with a
        configured region partition routes by template id plus the
        cell its region center falls in.
        """
        cell = self.config.region_partitions.get(bound.template_id)
        if cell is not None:
            center = _region_center(bound.region)
            if center is not None:
                coords = ",".join(
                    str(math.floor(coordinate / cell))
                    for coordinate in center
                )
                return f"{bound.template_id}@{coords}"
        return bound.template_id

    # ------------------------------------------------------------ health
    def _shard_statuses(self, now_ms: float) -> dict[str, str]:
        """Every shard's dispatch verdict at ``now_ms``.

        Fault-session reachability wins over the shard's own monitor
        (a crashed shard's monitor would happily report healthy).
        Health is evaluated *before* ``router.state`` is taken — the
        monitors acquire shard-side locks the router must never hold
        its own lock across.
        """
        with self._lock:
            drained = set(self._drained)
            session = self._session
        statuses: dict[str, str] = {}
        for shard_id, shard in self._shards.items():
            if shard_id in drained:
                statuses[shard_id] = "drained"
            elif session is not None and session.down(shard_id, now_ms):
                statuses[shard_id] = "unreachable"
            else:
                statuses[shard_id] = str(
                    shard.proxy.health.evaluate(now_ms)["status"]
                )
        return statuses

    def shards_up(self, now_ms: float) -> int:
        """How many shards the router would currently dispatch to."""
        statuses = self._shard_statuses(now_ms)
        return sum(
            1
            for status in statuses.values()
            if status not in _NOT_DISPATCHABLE
        )

    def health(self, now_ms: float) -> dict[str, Any]:
        """The aggregate tier verdict (HR06 active) plus per-shard detail."""
        statuses = self._shard_statuses(now_ms)
        down = sum(
            1
            for status in statuses.values()
            if status in _NOT_DISPATCHABLE
        )
        report = evaluate_samples(
            self.timeseries.samples(),
            shards_down=down,
            shards_total=len(self._shards),
        )
        report["at_ms"] = float(now_ms)
        report["shards"] = dict(sorted(statuses.items()))
        report["shards_total"] = len(self._shards)
        report["shards_up"] = len(self._shards) - down
        return report

    # ----------------------------------------------------------- routing
    def route(
        self,
        bound: "BoundQuery",
        now_ms: float,
        statuses: Mapping[str, str] | None = None,
    ) -> RouteDecision:
        """Pick the shard for ``bound`` at ``now_ms``; never raises.

        The walk follows the key's ring preference order (truncated to
        the primary when failover is off).  Each live candidate costs
        exactly one fault-session rng draw; drained shards are skipped
        without a draw (draining is administrative state, not chance),
        so plan variants sharing a seed stay draw-aligned.
        """
        key = self.route_key(bound)
        if statuses is None:
            statuses = self._shard_statuses(now_ms)
        with self._lock:
            self._seq += 1
            seq = self._seq
            preference = self._ring.preference(key)
            primary = preference[0]
            candidates = (
                preference if self.config.failover else preference[:1]
            )
            attempts: list[RouteAttempt] = []
            dispatched: str | None = None
            slowdown = 1.0
            for shard_id in candidates:
                if shard_id in self._drained:
                    attempts.append(RouteAttempt(shard_id, "drained"))
                    continue
                if self._session is not None:
                    verdict = self._session.route_attempt(shard_id, now_ms)
                else:
                    verdict = None
                if verdict is not None:
                    if verdict.kind is ShardFaultKind.CRASH:
                        attempts.append(RouteAttempt(shard_id, "crash"))
                        continue
                    if verdict.kind is ShardFaultKind.HANG:
                        attempts.append(RouteAttempt(shard_id, "hang"))
                        continue
                    if verdict.kind is ShardFaultKind.ERROR:
                        attempts.append(RouteAttempt(shard_id, "transient"))
                        continue
                if statuses.get(shard_id) == UNHEALTHY:
                    attempts.append(RouteAttempt(shard_id, "unhealthy"))
                    continue
                attempts.append(RouteAttempt(shard_id, "dispatched"))
                dispatched = shard_id
                slowdown = verdict.slowdown if verdict is not None else 1.0
                break
            decision = RouteDecision(
                seq=seq,
                key=key,
                primary=primary,
                attempts=tuple(attempts),
                dispatched=dispatched,
                slowdown=slowdown,
            )
            self.decisions.append(decision)
        self._metric_queries.inc()
        if decision.rerouted:
            self._metric_failover.inc()
            self.events.emit(
                EV_FAILOVER_REROUTE,
                at_ms=now_ms,
                key=key,
                from_shard=primary,
                to_shard=decision.dispatched,
                attempts=len(decision.attempts),
            )
        return decision

    def serve_routed(
        self, bound: "BoundQuery", tenant: str = "default"
    ) -> "tuple[ProxyResponse, RouteDecision]":
        """Serve one query through the tier; the full router path.

        Checks the fault schedule (crash transitions fire their EV12
        and warm handoff here), routes, dispatches to the chosen
        shard's own serve path (its admission controller applies), and
        falls back to the origin tunnel or a structured shed when no
        shard can take the query.
        """
        now_ms = self.clock.now_ms
        self.check_faults(now_ms)
        statuses = self._shard_statuses(now_ms)
        decision = self.route(bound, now_ms, statuses)
        if decision.dispatched is not None:
            shard = self._shards[decision.dispatched]
            response = shard.proxy.serve(bound, tenant=tenant)
            if decision.slowdown > 1.0:
                self._apply_slowdown(response, decision.slowdown)
        else:
            response = self.undispatched_response(bound, tenant, decision)
        self.sample_telemetry(self.clock.now_ms, statuses)
        return response, decision

    def serve(
        self, bound: "BoundQuery", tenant: str = "default"
    ) -> "ProxyResponse":
        """:meth:`serve_routed` without the decision (drop-in proxy shape)."""
        response, _ = self.serve_routed(bound, tenant=tenant)
        return response

    def undispatched_response(
        self,
        bound: "BoundQuery",
        tenant: str,
        decision: RouteDecision,
    ) -> "ProxyResponse":
        """The no-shard-took-it path: origin tunnel, else structured shed.

        The tunnel is the single-proxy overload degrade (no cache
        work); the shed is recorded against the primary shard so
        turned-away traffic shows up in that shard's stats and outcome
        counts.  ``tenant`` is accepted for signature symmetry — the
        fallback proxy runs without admission, so no quota applies.
        """
        del tenant
        if self.config.failover and self.fallback is not None:
            self._metric_tunnel.inc()
            return self.fallback.serve_admitted(bound, degrade=True)
        primary = self._shards[decision.primary]
        return primary.proxy.reject(
            bound, REASON_SHARD_DOWN, QueryOutcome.SHED
        )

    def _apply_slowdown(
        self, response: "ProxyResponse", slowdown: float
    ) -> None:
        """Charge an active slow window to the served record."""
        record = response.record
        extra = record.response_ms * (slowdown - 1.0)
        record.steps_ms["router.slow"] = (
            record.steps_ms.get("router.slow", 0.0) + extra
        )
        record.response_ms += extra

    # ------------------------------------------------------------ faults
    def check_faults(self, now_ms: float) -> None:
        """Advance the fault schedule to ``now_ms``.

        Each crash/hang window that has begun fires one EV12; each
        *crash* additionally loses the shard's memory (cache cleared
        with the persister suspended, so the disk image survives) and,
        when configured, warm-hands the durable image to the first
        live ring successor.
        """
        with self._lock:
            session = self._session
            if session is None:
                return
            newly = session.newly_down(now_ms)
            crashes: list[str] = []
            for shard_id, kind, _start_ms in newly:
                if (
                    kind == "crash"
                    and shard_id in self._shards
                    and shard_id not in self._crash_handled
                ):
                    self._crash_handled.add(shard_id)
                    crashes.append(shard_id)
        for shard_id, kind, start_ms in newly:
            self.events.emit(
                EV_SHARD_CRASH,
                at_ms=now_ms,
                shard=shard_id,
                kind=kind,
                start_ms=start_ms,
            )
        for shard_id in crashes:
            self._handle_crash(shard_id, now_ms)

    def _handle_crash(self, shard_id: str, now_ms: float) -> None:
        """Model the process death: memory gone, disk intact, hand off."""
        shard = self._shards[shard_id]
        persister = shard.proxy.persistence
        if persister is not None:
            # Suspend the mutation-log hooks around the clear so the
            # durable image is not journalled away with the memory.
            persister.set_suspended(True)
            try:
                shard.proxy.cache.clear()
            finally:
                persister.set_suspended(False)
        else:
            shard.proxy.cache.clear()
        if not self.config.handoff_on_crash or persister is None:
            return
        records = persisted_records(persister)
        target = self._successor(shard_id, now_ms)
        if target is None:
            return
        data = encode_handoff(records)
        report = replay_records(
            records,
            self._shards[target].proxy,
            source=shard_id,
            target=target,
            bytes_total=len(data),
        )
        with self._lock:
            self.handoffs.append(report)
        self.events.emit(
            EV_HANDOFF_COMPLETED,
            at_ms=now_ms,
            source=report.source,
            target=report.target,
            entries=report.entries,
            replayed=report.replayed,
            stale=report.stale,
        )

    def _successor(self, shard_id: str, now_ms: float) -> str | None:
        """The first live, undrained ring successor of ``shard_id``."""
        with self._lock:
            drained = set(self._drained)
            session = self._session
        for candidate in self._ring.successors(shard_id):
            if candidate in drained:
                continue
            if session is not None and session.down(candidate, now_ms):
                continue
            return candidate
        return None

    # ------------------------------------------------------------- drain
    def drain(
        self, shard_id: str, now_ms: float | None = None
    ) -> HandoffReport | None:
        """Administratively retire ``shard_id``, warm-handing its cache.

        The planned twin of the crash path: the *live* cache is
        exported (no disk round trip needed) and replayed into the
        first live ring successor.  Returns ``None`` when the shard
        was already drained; a drain with no live successor still
        retires the shard but moves nothing.
        """
        if shard_id not in self._shards:
            raise ValueError(f"unknown shard {shard_id!r}")
        if now_ms is None:
            now_ms = self.clock.now_ms
        with self._lock:
            if shard_id in self._drained:
                return None
            self._drained.add(shard_id)
        records = export_records(
            self._shards[shard_id].proxy, shard_id, now_ms
        )
        target = self._successor(shard_id, now_ms)
        if target is None:
            report = HandoffReport(
                source=shard_id,
                target="",
                entries=len(records),
                replayed=0,
                stale=0,
                errors=0,
                rejected=0,
                evicted=0,
                bytes_total=0,
            )
        else:
            data = encode_handoff(records)
            report = replay_records(
                records,
                self._shards[target].proxy,
                source=shard_id,
                target=target,
                bytes_total=len(data),
            )
            self.events.emit(
                EV_HANDOFF_COMPLETED,
                at_ms=now_ms,
                source=report.source,
                target=report.target,
                entries=report.entries,
                replayed=report.replayed,
                stale=report.stale,
            )
        with self._lock:
            self.handoffs.append(report)
        return report

    def drained(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._drained))

    # --------------------------------------------------------- telemetry
    def sample_telemetry(
        self,
        now_ms: float,
        statuses: Mapping[str, str] | None = None,
    ) -> None:
        """Refresh the tier gauges and offer the recorder a sample."""
        if statuses is None:
            statuses = self._shard_statuses(now_ms)
        up = sum(
            1
            for status in statuses.values()
            if status not in _NOT_DISPATCHABLE
        )
        self._metric_shards_up.set(float(up))
        self.timeseries.maybe_sample(now_ms)

    def recent_decisions(self, n: int | None = None) -> list[RouteDecision]:
        """The newest ``n`` routing decisions, oldest first."""
        with self._lock:
            decisions = list(self.decisions)
        if n is not None and n >= 0:
            decisions = decisions[-n:] if n else []
        return decisions

    def status(self) -> dict[str, Any]:
        """The ``GET /shards`` payload."""
        now_ms = self.clock.now_ms
        statuses = self._shard_statuses(now_ms)
        with self._lock:
            seq = self._seq
            handoffs = [report.to_dict() for report in self.handoffs]
            drained = sorted(self._drained)
        shards = []
        for shard_id in self._ring.nodes:
            proxy = self._shards[shard_id].proxy
            shards.append(
                {
                    "shard_id": shard_id,
                    "status": statuses[shard_id],
                    "drained": shard_id in drained,
                    "cache_entries": len(proxy.cache.entries()),
                    "queries": len(proxy.stats.records),
                }
            )
        return {
            "shards": shards,
            "ring": {
                "vnodes": self.config.vnodes,
                "nodes": list(self._ring.nodes),
            },
            "failover": self.config.failover,
            "handoff_on_crash": self.config.handoff_on_crash,
            "fallback": self.fallback is not None,
            "decisions_total": seq,
            "handoffs": handoffs,
            "drained": drained,
        }


#: Re-exported so callers can assert "the tier is healthy" without
#: importing obs internals alongside the router.
__all__ = [
    "HEALTHY",
    "REASON_SHARD_DOWN",
    "RouteAttempt",
    "RouteDecision",
    "RouterConfig",
    "Shard",
    "ShardRouter",
]
