# concurrency: serve-path
"""Warm handoff: move one shard's cache into its ring successor.

The transfer rides the persistence wire format (PR 5): the departing
shard's cache becomes a sequence of framed ``admit`` records — the
same ``[u32 len][u32 CRC32][canonical JSON]`` frames the journal and
snapshot use — each tagged with the departing shard's id.  The
successor replays them through its normal ``CacheManager.store`` path,
so its replacement policy and byte budget apply exactly as they would
under traffic, and the data-version fence drops entries computed
against an origin version the successor no longer serves.

Two export sources exist:

* :func:`export_records` — the *live* cache of a draining shard (a
  planned departure / rebalance);
* :func:`persisted_records` — the snapshot + journal image of a shard
  whose process is gone (a crash): memory is lost, disk survives, and
  the image is what recovery would have rebuilt.

Because every exported record carries the departing shard's tag, a
handoff file that ends up replayed by *recovery* on the wrong shard is
skipped (``entries_foreign``), while this module's explicit
:func:`replay_records` accepts the tag — the successor's own persister
re-journals each stored entry under the successor's id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.persistence.errors import SnapshotFormatError
from repro.persistence.records import (
    AdmitRecord,
    ClearRecord,
    EvictRecord,
    encode_record,
    iter_frames,
    region_from_dict,
    region_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.proxy import FunctionProxy
    from repro.persistence.persister import CachePersister


@dataclass(frozen=True)
class HandoffReport:
    """What one warm handoff moved, dropped, and displaced."""

    source: str
    target: str
    entries: int  # records exported from the departing shard
    replayed: int  # stored into the successor's cache
    stale: int  # dropped by the data-version fence
    errors: int  # no longer bindable / malformed on replay
    rejected: int  # the successor's cache declined the store
    evicted: int  # successor entries the replay displaced
    bytes_total: int  # framed wire size of the export

    def to_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "entries": self.entries,
            "replayed": self.replayed,
            "stale": self.stale,
            "errors": self.errors,
            "rejected": self.rejected,
            "evicted": self.evicted,
            "bytes_total": self.bytes_total,
        }


def export_records(
    proxy: "FunctionProxy", shard_id: str, now_ms: float
) -> tuple[AdmitRecord, ...]:
    """The live cache of ``proxy`` as shard-tagged admit records.

    Entries are exported in ``entry_id`` order, so the same cache
    always serializes to the same byte stream.
    """
    version = getattr(proxy.origin, "data_version", None)
    records = []
    for entry in sorted(proxy.cache.entries(), key=lambda e: e.entry_id):
        template_id, param_items = entry.cache_key
        records.append(
            AdmitRecord(
                entry_id=entry.entry_id,
                template_id=template_id,
                params=dict(param_items),
                region=region_to_dict(entry.region),
                signature=entry.signature,
                truncated=entry.truncated,
                result_xml=entry.result.to_xml(),
                data_version=version,
                ts_ms=now_ms,
                shard=shard_id,
            )
        )
    return tuple(records)


def persisted_records(
    persister: "CachePersister",
) -> tuple[AdmitRecord, ...]:
    """The cache image a crashed shard left on disk.

    The same snapshot-then-journal walk recovery runs (a malformed
    snapshot is treated as absent; the journal's intact prefix is
    applied): what comes back is what the shard durably held at its
    last append — the only thing a crash did not destroy.
    """
    image: dict[int, AdmitRecord] = {}
    try:
        snapshot = persister.load_snapshot()
    except SnapshotFormatError:
        snapshot = None
    if snapshot is not None:
        for record in snapshot.entries:
            image[record.entry_id] = record
    for record in persister.journal.read().records:
        if isinstance(record, AdmitRecord):
            image[record.entry_id] = record
        elif isinstance(record, EvictRecord):
            image.pop(record.entry_id, None)
        elif isinstance(record, ClearRecord):
            image.clear()
    return tuple(
        image[entry_id] for entry_id in sorted(image)
    )


def encode_handoff(records: tuple[AdmitRecord, ...]) -> bytes:
    """The handoff wire form: the records as concatenated frames."""
    return b"".join(encode_record(record) for record in records)


def decode_handoff(data: bytes) -> tuple[AdmitRecord, ...]:
    """Parse a handoff byte stream back into its admit records.

    Like journal replay, the walk stops cleanly at the first torn or
    corrupt frame — a truncated transfer loses its tail, never raises.
    Non-admit frames (not part of the handoff format) are ignored.
    """
    records = []
    for outcome in iter_frames(data):
        if outcome.stop_reason is not None:
            break
        if isinstance(outcome.record, AdmitRecord):
            records.append(outcome.record)
    return tuple(records)


def replay_records(
    records: tuple[AdmitRecord, ...],
    proxy: "FunctionProxy",
    source: str,
    target: str,
    bytes_total: int = 0,
) -> HandoffReport:
    """Replay exported records into ``proxy`` through ``cache.store``.

    The successor's replacement policy, byte budget, and persister all
    apply: every accepted entry is re-journaled under the successor's
    own shard id.  Entries whose recorded ``data_version`` disagrees
    with the successor origin's *current* version are fenced out, and
    an entry that no longer binds is dropped as an error — one bad
    record never aborts the handoff.
    """
    from repro.relational.result import ResultTable

    version = getattr(proxy.origin, "data_version", None)
    replayed = stale = errors = rejected = evicted = 0
    for record in records:
        if version is not None and record.data_version != version:
            stale += 1
            continue
        try:
            region = region_from_dict(record.region)
            result = ResultTable.from_xml(record.result_xml)
            bound = proxy.templates.bind(record.template_id, record.params)
            if bound.region != region:
                raise ValueError(
                    "re-bound region disagrees with the exported region"
                )
        except Exception:  # defensive: skip, never abort the handoff
            errors += 1
            continue
        entry, maintenance = proxy.cache.store(
            bound, result, record.signature, record.truncated
        )
        evicted += maintenance.evicted_entries
        if entry is None:
            rejected += 1
        else:
            replayed += 1
    return HandoffReport(
        source=source,
        target=target,
        entries=len(records),
        replayed=replayed,
        stale=stale,
        errors=errors,
        rejected=rejected,
        evicted=evicted,
        bytes_total=bytes_total,
    )
