# concurrency: serve-path
"""The event-driven front door of the sharded tier.

:class:`ClusterFrontend` is the multi-shard sibling of
:class:`~repro.sched.frontend.ProxyFrontend`: one
:class:`~repro.sched.loop.EventLoop` carries every shard's queue and
completion events, so the whole tier advances on a single deterministic
time axis.  An arrival is routed first (the router's fault schedule and
health verdicts apply at *submit* time), then handed to the chosen
shard's own frontend — each shard keeps its own admission controller,
so per-shard backpressure works exactly as it does on a single proxy.
Arrivals no shard can take resolve through the router's tunnel-or-shed
path and complete on the loop after their simulated response time, so
closed-loop clients always get their completion callback and keep
submitting.

The frontend is single-threaded by design — it lives on the event
loop's thread; the shards underneath do their own locking.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cluster.router import RouteDecision, ShardRouter
from repro.core.proxy import ProxyResponse
from repro.core.stats import QueryOutcome
from repro.locking import unshared
from repro.sched.frontend import ProxyFrontend
from repro.sched.loop import EventLoop

#: Outcomes the frontend counts as turned away rather than completed.
_REJECT_OUTCOMES = (QueryOutcome.SHED, QueryOutcome.QUEUED_TIMEOUT)


@unshared("submitted", "completed", "rejected")
class ClusterFrontend:
    """Closed-loop serving through a shard router on one event loop.

    Construction builds one :class:`ProxyFrontend` per shard (each
    shard proxy must carry its own admission controller) and rebinds
    the router's clock to the loop, so routing decisions, fault
    windows, and telemetry all read event time.
    """

    def __init__(self, router: ShardRouter, loop: EventLoop) -> None:
        self.router = router
        self.loop = loop
        router.clock = loop
        self._shard_frontends: dict[str, ProxyFrontend] = {
            shard_id: ProxyFrontend(router.shard(shard_id).proxy, loop)
            for shard_id in router.shard_ids
        }
        self.submitted = 0
        self.completed = 0
        self.rejected = 0

    @property
    def templates(self) -> Any:
        """The tier's template manager (shared by every shard)."""
        return self.router.shard(self.router.shard_ids[0]).proxy.templates

    def shard_frontend(self, shard_id: str) -> ProxyFrontend:
        return self._shard_frontends[shard_id]

    def submit(
        self,
        bound: Any,
        tenant: str = "default",
        cost_hint: float = 1.0,
        on_done: Callable[[ProxyResponse], None] | None = None,
    ) -> RouteDecision:
        """One arrival at the current event time; returns its route.

        Never raises: a routed arrival goes through the shard's
        admission queue, an unrouteable one resolves to the tunnel or
        a structured shed and completes on the loop after its
        simulated response time.
        """
        now_ms = self.loop.now_ms
        self.router.check_faults(now_ms)
        decision = self.router.route(bound, now_ms)
        self.submitted += 1

        def finish(response: ProxyResponse) -> None:
            if decision.dispatched is not None and decision.slowdown > 1.0:
                self.router._apply_slowdown(response, decision.slowdown)
            if response.record.outcome in _REJECT_OUTCOMES:
                self.rejected += 1
            else:
                self.completed += 1
            if on_done is not None:
                on_done(response)

        if decision.dispatched is not None:
            self._shard_frontends[decision.dispatched].submit(
                bound, tenant=tenant, cost_hint=cost_hint, on_done=finish
            )
        else:
            response = self.router.undispatched_response(
                bound, tenant, decision
            )
            self.loop.after(
                response.record.response_ms, lambda: finish(response)
            )
        self.router.sample_telemetry(self.loop.now_ms)
        return decision
