"""The shard router as a Flask application.

The HTTP face of :class:`~repro.cluster.router.ShardRouter` — what the
tier's load balancer would expose:

``GET /search/<form_name>?field=value&...``
    The proxy search surface, routed: the query is bound, hashed onto
    the ring, and dispatched to its shard (or the origin tunnel when
    no shard can take it).  Responses carry the single-proxy headers
    plus ``X-Shard`` (the dispatched shard, or ``-`` for a tunnel or
    shed) and ``X-Shard-Rerouted`` (``1`` when failover moved the
    query off its primary).  Turned-away queries answer ``429`` (shed)
    or ``503`` (queued-timeout) with a ``Retry-After`` derived from
    the dispatched shard's admission cooldown — the router propagates
    the shard's backpressure rather than inventing its own.

``GET /shards``
    The tier topology and live status: per-shard dispatch verdicts,
    cache occupancy and query counts, the ring configuration, the
    failover/handoff policy, completed handoffs, and drained shards.

``GET /health``
    The aggregate tier verdict (the per-proxy rules plus HR06
    ``shard-down``); ``unhealthy`` answers 503.

``GET /decisions?n=20``
    The newest N routing decisions — the determinism artifact: ring
    key, primary, per-shard attempt fates, and where the query landed.

``POST /drain/<shard_id>``
    Administratively retire a shard, warm-handing its live cache to
    the first live ring successor; answers the handoff report, or
    ``409`` when the shard was already drained.
"""

from __future__ import annotations

from repro.admission.config import retry_after_seconds
from repro.cluster import ShardRouter
from repro.core.stats import QueryOutcome
from repro.relational.errors import RelationalError
from repro.sqlparser.errors import ParseError
from repro.templates.errors import TemplateError


def create_router_app(router: ShardRouter):
    """Build the Flask app fronting a shard router."""
    try:
        from flask import Flask, request
    except ImportError:  # pragma: no cover - optional dependency
        raise RuntimeError(
            "the HTTP deployment needs Flask; install repro[http]"
        ) from None

    app = Flask("repro-router")
    # All shards share one template manager (the runner binds them to
    # one origin), so any shard can bind the form for routing.
    templates = router.shard(router.shard_ids[0]).proxy.templates

    def _retry_after(shard_id: str | None) -> int | None:
        """The Retry-After for a turned-away query, from the admission
        config of the shard that shed it (the primary when nothing was
        dispatched)."""
        if shard_id is None:
            return None
        controller = router.shard(shard_id).proxy.admission
        if controller is None:
            return None
        return retry_after_seconds(controller.config)

    @app.get("/search/<form_name>")
    def search(form_name: str):
        tenant = request.headers.get("X-Tenant", "default")
        try:
            bound = templates.bind_form(form_name, request.args)
        except (TemplateError, ParseError, RelationalError) as exc:
            return {"error": str(exc)}, 400
        response, decision = router.serve_routed(bound, tenant=tenant)
        record = response.record
        headers = {
            "X-Proxy-Ms": f"{record.response_ms:.3f}",
            "X-Cache-Status": record.status.value,
            "X-Proxy-Outcome": record.outcome.value,
            "X-Shard": decision.dispatched or "-",
            "X-Shard-Rerouted": "1" if decision.rerouted else "0",
        }
        if record.outcome in (
            QueryOutcome.SHED,
            QueryOutcome.QUEUED_TIMEOUT,
        ):
            status_code = (
                429 if record.outcome is QueryOutcome.SHED else 503
            )
            retry = _retry_after(decision.dispatched or decision.primary)
            if retry is not None:
                headers["Retry-After"] = str(retry)
            return (
                {
                    "error": "shard tier overloaded",
                    "reason": record.failure_reason,
                    "shard": decision.dispatched or decision.primary,
                },
                status_code,
                headers,
            )
        if record.outcome is QueryOutcome.FAILED:
            return (
                {
                    "error": "origin unavailable",
                    "reason": record.failure_reason,
                },
                503,
                headers,
            )
        headers["Content-Type"] = "application/xml"
        status_code = 206 if record.outcome is QueryOutcome.PARTIAL else 200
        return response.result.to_xml(), status_code, headers

    @app.get("/shards")
    def shards():
        return router.status()

    @app.get("/health")
    def health():
        report = router.health(router.clock.now_ms)
        status_code = 503 if report["status"] == "unhealthy" else 200
        return report, status_code

    @app.get("/decisions")
    def decisions():
        limit = request.args.get("n", default=20, type=int)
        return {
            "decisions": [
                decision.to_dict()
                for decision in router.recent_decisions(limit)
            ],
        }

    @app.post("/drain/<shard_id>")
    def drain(shard_id: str):
        try:
            report = router.drain(shard_id)
        except ValueError as exc:
            return {"error": str(exc)}, 404
        if report is None:
            return {"error": f"shard {shard_id!r} already drained"}, 409
        return {"drained": shard_id, "handoff": report.to_dict()}

    return app
