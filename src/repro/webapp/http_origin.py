"""An origin-server adapter that forwards over HTTP.

:class:`HttpOriginClient` implements the same ``execute_bound`` /
``execute_remainder`` surface as
:class:`~repro.server.origin.OriginServer`, but ships the query to a
remote origin app (:mod:`repro.webapp.origin_app`) and parses the XML
response.  A :class:`~repro.core.proxy.FunctionProxy` constructed with
this client fronts a genuinely separate origin process, completing the
browser -> proxy -> web-site HTTP chain of the paper's Figure 4.

The simulated server cost is carried back in the ``X-Server-Ms``
response header, so experiment timing composes identically in both
deployments.  The proxy also needs a catalog for its determinism check;
the client fetches the origin's template registry once and exposes a
minimal ``catalog.functions`` shim backed by the declared metadata.

Data-version coherence over HTTP is *eventually consistent*: the
client updates ``data_version`` from the ``X-Data-Version`` header of
each origin response, so the proxy notices a flush-worthy change on
its next origin contact (a cache-only stretch keeps serving the prior
snapshot — the same window any TTL-free HTTP cache has).

Trace propagation: :meth:`HttpOriginClient.bind_tracer` attaches the
proxy's span tracer (the :class:`~repro.core.proxy.FunctionProxy`
constructor does this automatically); every remainder/full fetch then
carries the W3C ``traceparent`` header for the currently open span, so
the origin app parents its execution spans under the proxy's
``origin`` phase and both ``/trace/recent`` endpoints stitch into one
end-to-end tree.
"""

from __future__ import annotations

import urllib.parse
import urllib.request

from repro.relational.result import ResultTable
from repro.server.origin import OriginResponse
from repro.sqlparser.ast import SelectStatement
from repro.templates.function_template import FunctionTemplate
from repro.templates.manager import BoundQuery, TemplateManager
from repro.templates.query_template import QueryTemplate


class HttpOriginError(RuntimeError):
    """The remote origin rejected a request or returned garbage."""


class _RemoteFunctions:
    """Determinism metadata for remote functions.

    The proxy only asks ``is_deterministic``; templates fetched from
    ``/templates`` are by construction deterministic (the origin
    validates property 1 before publishing), so any function named by
    a registered template answers True and everything else errors.
    """

    def __init__(self, function_names: set[str]) -> None:
        self._names = {name.lower() for name in function_names}

    def is_deterministic(self, name: str) -> bool:
        if name.lower() not in self._names:
            raise HttpOriginError(f"unknown remote function {name!r}")
        return True


class _RemoteCatalog:
    def __init__(self, functions: _RemoteFunctions) -> None:
        self.functions = functions


class HttpOriginClient:
    """Speaks the origin app's HTTP protocol."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.templates = TemplateManager()
        self.data_version: int | None = None
        self._tracer = None
        self._bootstrap_templates()
        self._fetch_data_version()

    def bind_tracer(self, tracer) -> None:
        """Propagate ``tracer``'s open trace context on every fetch.

        The proxy calls this with its span tracer; each subsequent
        origin request carries the W3C ``traceparent`` header for the
        span open at fetch time (the ``origin`` phase), stitching
        proxy- and origin-side spans into one tree.
        """
        self._tracer = tracer

    def _fetch_data_version(self) -> None:
        import json

        with urllib.request.urlopen(
            f"{self.base_url}/health", timeout=self.timeout_s
        ) as response:
            payload = json.loads(response.read().decode("utf-8"))
        self.data_version = payload.get("data_version")

    # ---------------------------------------------------------- protocol
    def _bootstrap_templates(self) -> None:
        import json

        with urllib.request.urlopen(
            f"{self.base_url}/templates", timeout=self.timeout_s
        ) as response:
            payload = json.loads(response.read().decode("utf-8"))
        function_names: set[str] = set()
        for entry in payload["query_templates"]:
            function_template = FunctionTemplate.from_xml(
                entry["function_template"]
            )
            try:
                self.templates.register_function_template(function_template)
            except Exception:
                pass  # two query templates may share a function template
            self.templates.register_query_template(
                QueryTemplate.from_sql(
                    template_id=entry["template_id"],
                    sql=entry["sql"],
                    function_template=function_template,
                    key_column=entry["key_column"],
                    description=entry.get("description", ""),
                )
            )
            function_names.add(function_template.name)
        from repro.templates.info_file import TemplateInfoFile

        for info_xml in payload.get("info_files", ()):
            self.templates.register_info_file(
                TemplateInfoFile.from_xml(info_xml)
            )
        self.catalog = _RemoteCatalog(_RemoteFunctions(function_names))

    def _post_sql(self, sql: str, n_holes: int | None) -> OriginResponse:
        request = urllib.request.Request(
            f"{self.base_url}/sql",
            data=sql.encode("utf-8"),
            method="POST",
            headers={"Content-Type": "text/plain"},
        )
        if n_holes is not None:
            request.add_header("X-Remainder-Holes", str(n_holes))
        if self._tracer is not None:
            traceparent = self._tracer.current_traceparent()
            if traceparent is not None:
                request.add_header("traceparent", traceparent)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                body = response.read().decode("utf-8")
                server_ms = float(response.headers.get("X-Server-Ms", "0"))
                version = response.headers.get("X-Data-Version")
                if version is not None:
                    self.data_version = int(version)
        except urllib.error.HTTPError as exc:
            raise HttpOriginError(
                f"origin rejected query ({exc.code}): "
                f"{exc.read().decode('utf-8', 'replace')}"
            ) from None
        return OriginResponse(ResultTable.from_xml(body), server_ms)

    # ------------------------------------------- OriginServer interface
    def execute_bound(self, bound: BoundQuery) -> OriginResponse:
        return self._post_sql(bound.sql, None)

    def execute_statement(self, statement: SelectStatement) -> OriginResponse:
        return self._post_sql(statement.to_sql(), None)

    def execute_remainder(
        self, statement: SelectStatement, n_holes: int
    ) -> OriginResponse:
        return self._post_sql(statement.to_sql(), n_holes)
