"""The origin web site as a Flask application.

Routes:

``GET /search/<form_name>?field=value&...``
    The HTML search forms (Radial, Rectangular).  Parameters are the
    raw form fields; the response is the result table as XML.

``POST /sql`` (body: the SQL text)
    The free-form SQL facility — the paper used the SkyServer's public
    SQL page as the remainder-query interface.  ``X-Remainder-Holes``
    may carry the excluded-region count so the simulated cost model
    can charge the remainder price.

``GET /templates``
    The site's registered templates, for proxy bootstrap: query
    template SQL, function template XML, and info file XML.

``GET /metrics`` / ``GET /trace/recent`` / ``GET /profile``
    The origin's observability surface: request counters and cost
    histograms by kind in Prometheus text format, recent execution
    spans (when the origin's tracer is enabled), and the execution
    profiler's per-kind aggregate (JSON, or ``?format=text`` for the
    flat table; ``enabled: false`` under the default no-op profiler).

Trace propagation: ``/search`` and ``/sql`` honor an incoming W3C
``traceparent`` header — the origin's execution spans join the
caller's trace (the proxy injects the header on every fetch), so both
sides' ``/trace/recent`` report the same trace id for one query.  A
malformed header degrades to a fresh local trace, never an error.

``GET /analyze``
    A fresh static-cacheability analysis of the site's registered
    templates, checked against the origin's own function catalog (so
    determinism, property 1, is verified too).

``GET /timeseries`` / ``GET /events`` / ``GET /health``
    The live-telemetry surface (origin lanes, sampled on the origin's
    cumulative simulated server time), the flight recorder's buffer,
    and the health verdict merged into the existing status fields.

Every response carries ``X-Server-Ms``: the simulated server cost the
caller should charge to its clock.
"""

from __future__ import annotations

from repro.analysis.analyzer import analyze_manager
from repro.network.clock import SimulatedClock
from repro.obs.events import EventRecorder
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.obs.profiling import Profiler
from repro.obs.propagation import parse_traceparent
from repro.obs.spans import SpanTracer
from repro.obs.timeseries import ORIGIN_LANES, TimeSeriesRecorder
from repro.relational.errors import RelationalError
from repro.server.origin import OriginServer
from repro.sqlparser.errors import ParseError
from repro.sqlparser.parser import parse_select
from repro.templates.errors import TemplateError


def create_origin_app(
    origin: OriginServer,
    trace_capacity: int | None = None,
    profile_top_k: int | None = None,
    timeseries_interval_ms: float | None = None,
    event_capacity: int | None = None,
):
    """Build the Flask app for an origin server.

    ``trace_capacity`` replaces the origin's tracer with a fresh
    :class:`~repro.obs.spans.SpanTracer` retaining that many root
    spans (harness-configurable; default: whatever tracer the origin
    was built with, usually the null tracer); ``profile_top_k``
    likewise swaps in a real profiler for ``/profile``;
    ``timeseries_interval_ms`` / ``event_capacity`` install live
    telemetry recorders (origin lanes) behind ``/timeseries`` and
    ``/events``, sampled on the origin's cumulative simulated server
    time.
    """
    try:
        from flask import Flask, request
    except ImportError:  # pragma: no cover - optional dependency
        raise RuntimeError(
            "the HTTP deployment needs Flask; install repro[http]"
        ) from None

    app = Flask("repro-origin")
    if trace_capacity is not None:
        origin.instrumentation.tracer = SpanTracer(capacity=trace_capacity)
    if profile_top_k is not None:
        origin.instrumentation.profiler = Profiler(top_k=profile_top_k)
    if timeseries_interval_ms is not None or event_capacity is not None:
        origin.instrumentation.install_telemetry(
            timeseries=(
                TimeSeriesRecorder(
                    interval_ms=timeseries_interval_ms,
                    lanes=ORIGIN_LANES,
                )
                if timeseries_interval_ms is not None
                else None
            ),
            events=(
                EventRecorder(capacity=event_capacity)
                if event_capacity is not None
                else None
            ),
        )
    # The origin has no work clock of its own; its telemetry axis is
    # the cumulative simulated server time it has charged.
    served_clock = SimulatedClock()

    def incoming_context():
        return parse_traceparent(request.headers.get("traceparent"))

    startup = analyze_manager(origin.templates, origin.catalog.functions)
    app.logger.info("template analysis at startup: %s", startup.summary())
    for diagnostic in startup:
        app.logger.warning("%s", diagnostic.format())

    def xml_response(result, server_ms: float):
        served_clock.advance(server_ms)
        origin.instrumentation.sample_telemetry(served_clock.now_ms)
        return (
            result.to_xml(),
            200,
            {
                "Content-Type": "application/xml",
                "X-Server-Ms": f"{server_ms:.3f}",
                "X-Data-Version": str(origin.data_version),
            },
        )

    @app.get("/search/<form_name>")
    def search(form_name: str):
        tracer = origin.instrumentation.tracer
        try:
            with tracer.remote_context(incoming_context()):
                response = origin.execute_form(form_name, request.args)
        except (TemplateError, ParseError, RelationalError) as exc:
            return {"error": str(exc)}, 400
        return xml_response(response.result, response.server_ms)

    @app.post("/sql")
    def sql():
        text = request.get_data(as_text=True)
        holes_header = request.headers.get("X-Remainder-Holes")
        tracer = origin.instrumentation.tracer
        try:
            with tracer.remote_context(incoming_context()):
                if holes_header is not None:
                    statement = parse_select(text)
                    response = origin.execute_remainder(
                        statement, int(holes_header)
                    )
                else:
                    response = origin.execute_sql(text)
        except (ParseError, RelationalError, ValueError) as exc:
            return {"error": str(exc)}, 400
        return xml_response(response.result, response.server_ms)

    @app.get("/templates")
    def templates():
        manager = origin.templates
        payload = {"query_templates": [], "info_files": []}
        for template_id in manager.query_template_ids():
            template = manager.query_template(template_id)
            payload["query_templates"].append(
                {
                    "template_id": template.template_id,
                    "sql": template.sql,
                    "key_column": template.key_column,
                    "function_template": (
                        template.function_template.to_xml()
                    ),
                    "description": template.description,
                }
            )
        for info in manager.info_files():
            payload["info_files"].append(info.to_xml())
        return payload

    @app.get("/metrics")
    def metrics():
        return (
            origin.instrumentation.registry.exposition(),
            200,
            {"Content-Type": PROMETHEUS_CONTENT_TYPE},
        )

    @app.get("/trace/recent")
    def trace_recent():
        tracer = origin.instrumentation.tracer
        limit = request.args.get("n", default=20, type=int)
        return {"enabled": tracer.enabled, "spans": tracer.recent(limit)}

    @app.get("/profile")
    def profile():
        profiler = origin.instrumentation.profiler
        fmt = request.args.get("format", "json")
        if fmt == "text":
            try:
                text = profiler.render_text(
                    sort=request.args.get("sort", "cum")
                )
            except ValueError as exc:
                return {"error": str(exc)}, 400
            return text, 200, {"Content-Type": "text/plain; charset=utf-8"}
        if fmt != "json":
            return {"error": f"unknown format {fmt!r}; use json or text"}, 400
        return profiler.snapshot()

    @app.get("/analyze")
    def analyze():
        report = analyze_manager(origin.templates, origin.catalog.functions)
        return report.to_dict()

    @app.get("/health")
    def health():
        report = origin.instrumentation.health.evaluate(
            served_clock.now_ms
        )
        report.update(
            {
                "tables": [t.name for t in origin.catalog.tables()],
                "queries_served": origin.queries_served,
                "remainders_served": origin.remainders_served,
                "data_version": origin.data_version,
            }
        )
        status_code = 503 if report["status"] == "unhealthy" else 200
        return report, status_code

    @app.get("/timeseries")
    def timeseries():
        return origin.instrumentation.timeseries.snapshot()

    @app.get("/events")
    def events():
        return origin.instrumentation.events.snapshot()

    return app
