"""The function proxy as a Flask application.

The HTTP face of :class:`~repro.core.proxy.FunctionProxy`:

``GET /search/<form_name>?field=value&...``
    Same surface as the origin's search forms; answered from the cache
    when the caching scheme allows, forwarded otherwise.  The response
    carries ``X-Proxy-Ms`` (simulated proxy-side time),
    ``X-Cache-Status`` (the paper's four-way disposition),
    ``X-Proxy-Outcome``, and ``X-Proxy-Retries``.  The status code
    follows the outcome: ``200`` for full answers (fresh or degraded
    stale-serves), ``206`` for the cached portion of an overlap query
    whose remainder could not reach the origin, ``503`` when the
    origin was needed but unreachable, and ``400`` when the origin
    rejected the query itself.  Under overload, admission control
    answers ``429`` for a shed query (``X-Proxy-Outcome: shed``) and
    ``503`` for one that timed out in the accept queue
    (``queued-timeout``), both carrying a ``Retry-After`` header
    derived from the overload breaker's cooldown; the ``X-Tenant``
    request header selects the per-tenant quota bucket.

``GET /stats``
    Aggregate trace statistics: average response time, average cache
    efficiency, status fractions, cache occupancy, and the p50/p95/max
    real wall clock of the cache-description check (the paper's
    "always under 100 milliseconds" claim).

``GET /metrics``
    The proxy's metrics registry in Prometheus text format: query
    status counters, per-step latency histograms, cache occupancy
    gauges, origin/network byte counters.

``GET /profile?format=json|text&sort=cum|self|wall|calls``
    The hot-path profiler's aggregate: per-stage call counts,
    cumulative/self time on both clocks, operator counters, and the
    top-K slowest queries — as JSON (default) or a ``pprof``-style
    flat text table.  Reports ``enabled: false`` under the default
    no-op profiler.

``GET /trace/recent?n=20``
    The most recent finished query spans as JSON (empty unless the
    proxy was built with an enabled tracer).  Spans carry W3C trace /
    span ids; for queries that touched the origin over HTTP, the
    origin app's ``/trace/recent`` reports the same trace id.

``GET /explain/<query_id>`` / ``GET /explain/recent?n=20``
    The cache-decision explain layer: for one query (by its 1-based
    index) or the latest N, the full reasoning record — the chosen
    action with its stable ``DAxx`` code, every candidate entry
    examined with its region-relationship verdict and compared bounds,
    remainder-query geometry, evictions with the replacement policy's
    victim rationale, and the linked trace id.

``GET /analyze``
    A fresh static-cacheability analysis of every registered template
    (codes, severities, source spans, hints) as JSON — the same report
    logged once at startup.

``POST /cache/clear``
    Drops every cached entry (for experiment hygiene between runs).

``GET /persistence``
    The crash-consistent persistence sidecar's status: journal size and
    record counts, snapshot age, the installed crash plan, and the last
    warm-restart :class:`~repro.persistence.recovery.RecoveryReport`
    (``enabled: false`` when the proxy runs without a persister).

``POST /faults`` / ``GET /faults`` / ``DELETE /faults``
    Install a seeded :class:`~repro.faults.plan.FaultPlan` (JSON body,
    the ``FaultPlan.to_dict`` shape) against the live proxy, inspect
    the installed plan plus the circuit breaker's state, or restore
    the pristine origin.

``GET /admission``
    The admission controller's live status: configured limits and shed
    policy, queue depth and inflight count, submitted/admitted/shed/
    timeout counters by reason, per-tenant quota denials and token
    levels, and the overload breaker's state (``enabled: false`` when
    the proxy runs without admission control).

``GET /timeseries`` / ``GET /events`` / ``GET /health``
    The live-telemetry surface: the fixed-interval time series sampled
    on the proxy's simulated clock (rate/gauge/quantile lanes), the
    flight recorder's pinned-code event buffer (``?n=`` limits to the
    newest N), and the declarative health verdict
    (``healthy``/``degraded``/``unhealthy`` — the last answers 503).
    All report ``enabled: false`` under the default no-op recorders.
"""

from __future__ import annotations

from repro.admission.config import retry_after_seconds
from repro.analysis.analyzer import analyze_manager
from repro.core.proxy import FunctionProxy
from repro.core.stats import QueryOutcome
from repro.faults.errors import FaultPlanError
from repro.faults.plan import FaultPlan
from repro.obs.events import EventRecorder
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.obs.profiling import Profiler
from repro.obs.spans import SpanTracer
from repro.obs.timeseries import TimeSeriesRecorder
from repro.relational.errors import RelationalError
from repro.sqlparser.errors import ParseError
from repro.templates.errors import TemplateError


def create_proxy_app(
    proxy: FunctionProxy,
    trace_capacity: int | None = None,
    explain_capacity: int | None = None,
    profile_top_k: int | None = None,
    timeseries_interval_ms: float | None = None,
    event_capacity: int | None = None,
):
    """Build the Flask app for a function proxy.

    ``trace_capacity`` replaces the proxy's tracer with a fresh
    :class:`~repro.obs.spans.SpanTracer` retaining that many root
    spans; ``explain_capacity`` resizes the decision log backing the
    ``/explain`` endpoints; ``profile_top_k`` swaps the proxy's
    profiler for a real :class:`~repro.obs.profiling.Profiler`
    retaining that many slowest queries (``/profile`` source);
    ``timeseries_interval_ms`` / ``event_capacity`` install live
    telemetry recorders behind ``/timeseries``, ``/events``, and
    ``/health``.  All default to whatever the proxy's instrumentation
    was built with.
    """
    try:
        from flask import Flask, request
    except ImportError:  # pragma: no cover - optional dependency
        raise RuntimeError(
            "the HTTP deployment needs Flask; install repro[http]"
        ) from None

    app = Flask("repro-proxy")
    if trace_capacity is not None:
        proxy.obs.tracer = SpanTracer(capacity=trace_capacity)
        binder = getattr(proxy.origin, "bind_tracer", None)
        if callable(binder):
            binder(proxy.obs.tracer)
    if explain_capacity is not None:
        proxy.obs.decisions.resize(explain_capacity)
    if profile_top_k is not None:
        proxy.obs.profiler = Profiler(top_k=profile_top_k)
    if timeseries_interval_ms is not None or event_capacity is not None:
        proxy.obs.install_telemetry(
            timeseries=(
                TimeSeriesRecorder(interval_ms=timeseries_interval_ms)
                if timeseries_interval_ms is not None
                else None
            ),
            events=(
                EventRecorder(capacity=event_capacity)
                if event_capacity is not None
                else None
            ),
        )
        if proxy.admission is not None:
            proxy.obs.set_admission_queue_limit(
                proxy.admission.config.max_queue_depth
            )

    def _function_registry():
        catalog = getattr(proxy.origin, "catalog", None)
        return getattr(catalog, "functions", None)

    # Startup report: analyze what the proxy booted with, so a template
    # problem is visible in the log before the first query hits it.
    startup = analyze_manager(proxy.templates, _function_registry())
    app.logger.info("template analysis at startup: %s", startup.summary())
    for diagnostic in startup:
        app.logger.warning("%s", diagnostic.format())

    @app.get("/search/<form_name>")
    def search(form_name: str):
        tenant = request.headers.get("X-Tenant", "default")
        try:
            response = proxy.serve_form(
                form_name, request.args, tenant=tenant
            )
        except (TemplateError, ParseError, RelationalError) as exc:
            # Proxy-side binding/parsing problems; origin-side query
            # errors surface as a structured ``failed`` outcome below.
            return {"error": str(exc)}, 400
        record = response.record
        headers = {
            "X-Proxy-Ms": f"{record.response_ms:.3f}",
            "X-Cache-Status": record.status.value,
            "X-Cache-Efficiency": f"{record.cache_efficiency:.4f}",
            "X-Proxy-Outcome": record.outcome.value,
            "X-Proxy-Retries": str(record.retries),
        }
        if record.outcome in (
            QueryOutcome.SHED,
            QueryOutcome.QUEUED_TIMEOUT,
        ):
            # Admission turned the query away: 429 for a live shed
            # (back off and retry), 503 for a queued request whose
            # deadline passed before a serve slot freed up.  Either
            # way the client gets a Retry-After derived from the
            # overload breaker's cooldown.
            status_code = (
                429 if record.outcome is QueryOutcome.SHED else 503
            )
            if proxy.admission is not None:
                headers["Retry-After"] = str(
                    retry_after_seconds(proxy.admission.config)
                )
            return (
                {
                    "error": "proxy overloaded",
                    "reason": record.failure_reason,
                },
                status_code,
                headers,
            )
        if record.outcome is QueryOutcome.FAILED:
            status_code = (
                400 if record.failure_reason == "query-error" else 503
            )
            return (
                {
                    "error": "origin unavailable"
                    if status_code == 503
                    else "origin rejected the query",
                    "reason": record.failure_reason,
                    "retries": record.retries,
                },
                status_code,
                headers,
            )
        status_code = 206 if record.outcome is QueryOutcome.PARTIAL else 200
        headers["Content-Type"] = "application/xml"
        return response.result.to_xml(), status_code, headers

    @app.get("/stats")
    def stats():
        trace_stats = proxy.stats
        return {
            "queries": len(trace_stats),
            "average_response_ms": trace_stats.average_response_ms,
            "average_cache_efficiency": (
                trace_stats.average_cache_efficiency
            ),
            "hit_ratio": trace_stats.hit_ratio,
            "answered_fraction": trace_stats.answered_fraction,
            "total_retries": trace_stats.total_retries,
            "outcome_fractions": {
                outcome.value: fraction
                for outcome, fraction in (
                    trace_stats.outcome_fractions().items()
                )
            },
            "status_fractions": {
                status.value: fraction
                for status, fraction in (
                    trace_stats.status_fractions().items()
                )
            },
            "cache_bytes": proxy.cache.current_bytes,
            "cache_entries": len(proxy.cache),
            "scheme": proxy.scheme.value,
            "check_wall_ms": trace_stats.check_wall_summary(),
        }

    @app.get("/metrics")
    def metrics():
        with_exemplars = request.args.get("exemplars") in ("1", "true")
        return (
            proxy.metrics.exposition(exemplars=with_exemplars),
            200,
            {"Content-Type": PROMETHEUS_CONTENT_TYPE},
        )

    @app.get("/profile")
    def profile():
        profiler = proxy.obs.profiler
        fmt = request.args.get("format", "json")
        if fmt == "text":
            try:
                text = profiler.render_text(
                    sort=request.args.get("sort", "cum")
                )
            except ValueError as exc:
                return {"error": str(exc)}, 400
            return text, 200, {"Content-Type": "text/plain; charset=utf-8"}
        if fmt != "json":
            return {"error": f"unknown format {fmt!r}; use json or text"}, 400
        return profiler.snapshot()

    @app.get("/trace/recent")
    def trace_recent():
        limit = request.args.get("n", default=20, type=int)
        return {
            "enabled": proxy.tracer.enabled,
            "spans": proxy.tracer.recent(limit),
        }

    @app.get("/explain/recent")
    def explain_recent():
        limit = request.args.get("n", default=20, type=int)
        return {
            "capacity": proxy.obs.decisions.capacity,
            "actions": proxy.obs.decisions.action_counts(),
            "decisions": proxy.obs.decisions.recent(limit),
        }

    @app.get("/explain/<int:query_id>")
    def explain(query_id: int):
        trace = proxy.obs.decisions.get(query_id)
        if trace is None:
            return {
                "error": f"no retained decision for query {query_id}",
                "retained": len(proxy.obs.decisions),
            }, 404
        return trace.to_dict()

    @app.get("/analyze")
    def analyze():
        report = analyze_manager(proxy.templates, _function_registry())
        payload = report.to_dict()
        payload["degraded_templates"] = sorted(
            template_id
            for template_id in proxy.templates.query_template_ids()
            if proxy.templates.is_degraded(template_id)
        )
        return payload

    @app.post("/cache/clear")
    def clear():
        return {"removed": proxy.cache.clear()}

    @app.get("/persistence")
    def persistence():
        persister = proxy.persistence
        if persister is None:
            return {
                "enabled": False,
                "reason": "proxy was built without a persister",
            }
        payload = persister.status()
        payload["enabled"] = True
        payload["recovery"] = (
            proxy.recovery_report.to_dict()
            if proxy.recovery_report is not None
            else None
        )
        return payload

    @app.post("/faults")
    def install_faults():
        payload = request.get_json(silent=True)
        if not isinstance(payload, dict):
            return {"error": "expected a JSON fault-plan object"}, 400
        try:
            plan = FaultPlan.from_dict(payload)
        except FaultPlanError as exc:
            return {"error": str(exc)}, 400
        proxy.install_fault_plan(plan)
        return {"installed": True, "plan": plan.to_dict()}

    @app.get("/faults")
    def faults():
        plan = proxy.fault_plan
        return {
            "installed": plan is not None,
            "plan": plan.to_dict() if plan is not None else None,
            "breaker": proxy.breaker.state.value,
            "breaker_opens": proxy.breaker.opens,
            "clock_ms": proxy.clock.now_ms,
        }

    @app.delete("/faults")
    def remove_faults():
        was_installed = proxy.fault_plan is not None
        proxy.install_fault_plan(None)
        return {"installed": False, "removed": was_installed}

    @app.get("/admission")
    def admission():
        controller = proxy.admission
        if controller is None:
            return {
                "enabled": False,
                "reason": "proxy was built without an admission "
                "controller",
            }
        payload = controller.snapshot()
        payload["enabled"] = True
        return payload

    @app.get("/timeseries")
    def timeseries():
        return proxy.timeseries.snapshot()

    @app.get("/events")
    def events():
        limit = request.args.get("n", type=int)
        payload = proxy.events.snapshot()
        if limit is not None:
            payload["events"] = payload["events"][-max(0, limit):]
        return payload

    @app.get("/health")
    def health():
        report = proxy.health.evaluate(proxy.telemetry_clock.now_ms)
        status_code = 503 if report["status"] == "unhealthy" else 200
        return report, status_code

    return app
