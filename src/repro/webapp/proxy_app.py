"""The function proxy as a Flask application.

The HTTP face of :class:`~repro.core.proxy.FunctionProxy`:

``GET /search/<form_name>?field=value&...``
    Same surface as the origin's search forms; answered from the cache
    when the caching scheme allows, forwarded otherwise.  The response
    carries ``X-Proxy-Ms`` (simulated proxy-side time) and
    ``X-Cache-Status`` (the paper's four-way disposition).

``GET /stats``
    Aggregate trace statistics: average response time, average cache
    efficiency, status fractions, cache occupancy, and the p50/p95/max
    real wall clock of the cache-description check (the paper's
    "always under 100 milliseconds" claim).

``GET /metrics``
    The proxy's metrics registry in Prometheus text format: query
    status counters, per-step latency histograms, cache occupancy
    gauges, origin/network byte counters.

``GET /trace/recent?n=20``
    The most recent finished query spans as JSON (empty unless the
    proxy was built with an enabled tracer).

``GET /analyze``
    A fresh static-cacheability analysis of every registered template
    (codes, severities, source spans, hints) as JSON — the same report
    logged once at startup.

``POST /cache/clear``
    Drops every cached entry (for experiment hygiene between runs).
"""

from __future__ import annotations

from repro.analysis.analyzer import analyze_manager
from repro.core.proxy import FunctionProxy
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.relational.errors import RelationalError
from repro.sqlparser.errors import ParseError
from repro.templates.errors import TemplateError


def create_proxy_app(proxy: FunctionProxy):
    """Build the Flask app for a function proxy."""
    try:
        from flask import Flask, request
    except ImportError:  # pragma: no cover - optional dependency
        raise RuntimeError(
            "the HTTP deployment needs Flask; install repro[http]"
        ) from None

    app = Flask("repro-proxy")

    def _function_registry():
        catalog = getattr(proxy.origin, "catalog", None)
        return getattr(catalog, "functions", None)

    # Startup report: analyze what the proxy booted with, so a template
    # problem is visible in the log before the first query hits it.
    startup = analyze_manager(proxy.templates, _function_registry())
    app.logger.info("template analysis at startup: %s", startup.summary())
    for diagnostic in startup:
        app.logger.warning("%s", diagnostic.format())

    @app.get("/search/<form_name>")
    def search(form_name: str):
        try:
            response = proxy.serve_form(form_name, request.args)
        except (TemplateError, ParseError, RelationalError) as exc:
            return {"error": str(exc)}, 400
        record = response.record
        return (
            response.result.to_xml(),
            200,
            {
                "Content-Type": "application/xml",
                "X-Proxy-Ms": f"{record.response_ms:.3f}",
                "X-Cache-Status": record.status.value,
                "X-Cache-Efficiency": f"{record.cache_efficiency:.4f}",
            },
        )

    @app.get("/stats")
    def stats():
        trace_stats = proxy.stats
        return {
            "queries": len(trace_stats),
            "average_response_ms": trace_stats.average_response_ms,
            "average_cache_efficiency": (
                trace_stats.average_cache_efficiency
            ),
            "hit_ratio": trace_stats.hit_ratio,
            "status_fractions": {
                status.value: fraction
                for status, fraction in (
                    trace_stats.status_fractions().items()
                )
            },
            "cache_bytes": proxy.cache.current_bytes,
            "cache_entries": len(proxy.cache),
            "scheme": proxy.scheme.value,
            "check_wall_ms": trace_stats.check_wall_summary(),
        }

    @app.get("/metrics")
    def metrics():
        return (
            proxy.metrics.exposition(),
            200,
            {"Content-Type": PROMETHEUS_CONTENT_TYPE},
        )

    @app.get("/trace/recent")
    def trace_recent():
        limit = request.args.get("n", default=20, type=int)
        return {
            "enabled": proxy.tracer.enabled,
            "spans": proxy.tracer.recent(limit),
        }

    @app.get("/analyze")
    def analyze():
        report = analyze_manager(proxy.templates, _function_registry())
        payload = report.to_dict()
        payload["degraded_templates"] = sorted(
            template_id
            for template_id in proxy.templates.query_template_ids()
            if proxy.templates.is_degraded(template_id)
        )
        return payload

    @app.post("/cache/clear")
    def clear():
        return {"removed": proxy.cache.clear()}

    return app
