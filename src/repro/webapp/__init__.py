"""HTTP deployment: Flask apps for the origin site and the proxy.

Everything in :mod:`repro.core` and :mod:`repro.server` is
transport-agnostic; this package provides the thin HTTP skins that make
the paper's deployment picture literal — a browser talking HTTP to a
proxy servlet that talks HTTP to the origin web site:

* :func:`~repro.webapp.origin_app.create_origin_app` — the web site:
  ``GET /search/<form>`` (the HTML search forms) and ``POST /sql``
  (the free-form SQL page the proxy uses for remainder queries);
* :func:`~repro.webapp.proxy_app.create_proxy_app` — the proxy
  servlet: the same ``/search/<form>`` surface, answered from the
  cache when possible, plus ``/stats`` for the timing records;
* :func:`~repro.webapp.router_app.create_router_app` — the sharded
  tier's front door: ``/search/<form>`` routed over the consistent-
  hash ring, plus ``/shards``, ``/health``, ``/decisions``, and
  ``POST /drain/<shard_id>``;
* :class:`~repro.webapp.http_origin.HttpOriginClient` — an
  origin-server adapter that forwards over HTTP, so a
  :class:`~repro.core.proxy.FunctionProxy` can front a *remote* origin
  process exactly as the paper's Tomcat servlet fronted the SkyServer.

Flask is an optional dependency; importing this package without Flask
installed raises a clear error only when an app is actually created.
"""

from repro.webapp.origin_app import create_origin_app
from repro.webapp.proxy_app import create_proxy_app
from repro.webapp.router_app import create_router_app
from repro.webapp.http_origin import HttpOriginClient

__all__ = [
    "HttpOriginClient",
    "create_origin_app",
    "create_proxy_app",
    "create_router_app",
]
