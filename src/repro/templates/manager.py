"""The template manager and bound (concrete) queries.

The template manager is the proxy component of Figure 4 that holds the
registered function templates, query templates, and info files, and
turns incoming requests into :class:`BoundQuery` objects — the unit the
cache manager and query processor operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.geometry.regions import Region
from repro.sqlparser.ast import SelectStatement
from repro.templates.errors import TemplateError
from repro.templates.function_template import FunctionTemplate
from repro.templates.info_file import TemplateInfoFile
from repro.templates.query_template import QueryTemplate


@dataclass(frozen=True)
class BoundQuery:
    """A concrete instance of a query template.

    Everything downstream derives from here: the SQL shipped to the
    origin, the region the cache reasoning uses, and the residual parts
    (other predicates, TOP-N) the proxy applies during local evaluation.
    """

    template: QueryTemplate
    params: dict[str, Any]
    statement: SelectStatement
    region: Region

    @property
    def template_id(self) -> str:
        return self.template.template_id

    @property
    def sql(self) -> str:
        return self.statement.to_sql()

    @property
    def key_column(self) -> str:
        return self.template.key_column

    @property
    def top(self) -> int | None:
        return self.statement.top

    def cache_key(self) -> tuple:
        """Exact-match identity: template plus parameter values."""
        return (
            self.template_id,
            tuple(sorted(self.params.items())),
        )

    def __repr__(self) -> str:
        return f"<BoundQuery {self.template_id} {self.params}>"


class TemplateManager:
    """Registry of templates and info files; builds bound queries."""

    def __init__(self) -> None:
        self._function_templates: dict[str, FunctionTemplate] = {}
        self._query_templates: dict[str, QueryTemplate] = {}
        self._info_files: dict[str, TemplateInfoFile] = {}

    # ------------------------------------------------------ registration
    def register_function_template(self, template: FunctionTemplate) -> None:
        key = template.name.lower()
        if key in self._function_templates:
            raise TemplateError(
                f"function template {template.name!r} already registered"
            )
        self._function_templates[key] = template

    def register_query_template(self, template: QueryTemplate) -> None:
        key = template.template_id.lower()
        if key in self._query_templates:
            raise TemplateError(
                f"query template {template.template_id!r} already registered"
            )
        self._query_templates[key] = template

    def register_info_file(self, info: TemplateInfoFile) -> None:
        key = info.form_name.lower()
        if key in self._info_files:
            raise TemplateError(
                f"info file for form {info.form_name!r} already registered"
            )
        if info.template_id.lower() not in self._query_templates:
            raise TemplateError(
                f"info file {info.form_name!r} references unknown query "
                f"template {info.template_id!r}"
            )
        self._info_files[key] = info

    # ------------------------------------------------------------ lookup
    def function_template(self, name: str) -> FunctionTemplate:
        try:
            return self._function_templates[name.lower()]
        except KeyError:
            raise TemplateError(
                f"no function template for {name!r}"
            ) from None

    def query_template(self, template_id: str) -> QueryTemplate:
        try:
            return self._query_templates[template_id.lower()]
        except KeyError:
            raise TemplateError(
                f"no query template {template_id!r}"
            ) from None

    def info_file(self, form_name: str) -> TemplateInfoFile:
        try:
            return self._info_files[form_name.lower()]
        except KeyError:
            raise TemplateError(
                f"no info file for form {form_name!r}"
            ) from None

    def query_template_ids(self) -> list[str]:
        return [t.template_id for t in self._query_templates.values()]

    def info_files(self) -> list[TemplateInfoFile]:
        return list(self._info_files.values())

    # ----------------------------------------------------------- binding
    def bind(
        self, template_id: str, params: Mapping[str, Any]
    ) -> BoundQuery:
        """A concrete query from a template id and parameter values."""
        template = self.query_template(template_id)
        params = dict(params)
        statement = template.bind_statement(params)
        region = template.region_for(params)
        return BoundQuery(
            template=template,
            params=params,
            statement=statement,
            region=region,
        )

    def bind_form(
        self, form_name: str, form_values: Mapping[str, str]
    ) -> BoundQuery:
        """A concrete query from raw HTML form fields."""
        info = self.info_file(form_name)
        params = info.bind_form(form_values)
        return self.bind(info.template_id, params)
