"""The template manager and bound (concrete) queries.

The template manager is the proxy component of Figure 4 that holds the
registered function templates, query templates, and info files, and
turns incoming requests into :class:`BoundQuery` objects — the unit the
cache manager and query processor operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.geometry.regions import Region
from repro.locking import guarded_by, named_lock
from repro.sqlparser.ast import SelectStatement
from repro.templates.errors import TemplateAnalysisError, TemplateError
from repro.templates.function_template import FunctionTemplate
from repro.templates.info_file import TemplateInfoFile
from repro.templates.query_template import QueryTemplate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.diagnostics import AnalysisReport, Diagnostic

#: Valid values for :class:`TemplateManager`'s ``analysis_mode``.
ANALYSIS_MODES = ("strict", "permissive", "off")


@dataclass(frozen=True)
class BoundQuery:
    """A concrete instance of a query template.

    Everything downstream derives from here: the SQL shipped to the
    origin, the region the cache reasoning uses, and the residual parts
    (other predicates, TOP-N) the proxy applies during local evaluation.
    """

    template: QueryTemplate
    params: dict[str, Any]
    statement: SelectStatement
    region: Region

    @property
    def template_id(self) -> str:
        return self.template.template_id

    @property
    def sql(self) -> str:
        return self.statement.to_sql()

    @property
    def key_column(self) -> str:
        return self.template.key_column

    @property
    def top(self) -> int | None:
        return self.statement.top

    def cache_key(self) -> tuple:
        """Exact-match identity: template plus parameter values."""
        return (
            self.template_id,
            tuple(sorted(self.params.items())),
        )

    def __repr__(self) -> str:
        return f"<BoundQuery {self.template_id} {self.params}>"


@guarded_by(
    "proxy.templates",
    "_function_templates",
    "_query_templates",
    "_info_files",
    "_degraded_functions",
    "_degraded_templates",
    "_analysis_log",
    "_observers",
)
class TemplateManager:
    """Registry of templates and info files; builds bound queries.

    Registration (and the analysis log it feeds) mutates under the
    ``proxy.templates`` named lock, so concurrent registrations and
    serve-path lookups never observe a half-registered template;
    lookups and ``bind`` read without the lock (dict gets are atomic).

    Every registration runs the static cacheability analyzer
    (:mod:`repro.analysis`) according to ``analysis_mode``:

    * ``"strict"`` (default) — error diagnostics reject the template
      with :class:`TemplateAnalysisError`.
    * ``"permissive"`` — the template is admitted but *degraded to
      pass-through*: :meth:`is_degraded` reports it and the proxy
      tunnels its queries instead of caching them.
    * ``"off"`` — no analysis (trusted bulk loads, offline tools).

    All diagnostics (including warnings) are kept in
    :meth:`analysis_diagnostics` and streamed to observers registered
    via :meth:`add_analysis_observer`, which is how they reach the
    metrics registry.
    """

    def __init__(self, analysis_mode: str = "strict") -> None:
        if analysis_mode not in ANALYSIS_MODES:
            raise TemplateError(
                f"analysis_mode must be one of {ANALYSIS_MODES}, "
                f"not {analysis_mode!r}"
            )
        self.analysis_mode = analysis_mode
        self._lock = named_lock("proxy.templates")
        self._function_templates: dict[str, FunctionTemplate] = {}
        self._query_templates: dict[str, QueryTemplate] = {}
        self._info_files: dict[str, TemplateInfoFile] = {}
        self._degraded_functions: set[str] = set()
        self._degraded_templates: set[str] = set()
        self._analysis_log: list[Diagnostic] = []
        self._observers: list[Callable[[Diagnostic], None]] = []

    # -------------------------------------------------- analysis plumbing
    def _record_report(self, report: "AnalysisReport") -> None:
        for diagnostic in report:
            self._analysis_log.append(diagnostic)
            for observer in self._observers:
                observer(diagnostic)

    def _admit(self, subject: str, report: "AnalysisReport") -> bool:
        """Record a report; True iff the subject may cache.

        Strict mode raises on errors; permissive mode returns False so
        the caller marks the subject degraded.
        """
        self._record_report(report)
        if not report.has_errors:
            return True
        if self.analysis_mode == "strict":
            raise TemplateAnalysisError(subject, report)
        return False

    def add_analysis_observer(
        self, observer: Callable[["Diagnostic"], None]
    ) -> None:
        """Stream every future diagnostic to ``observer``."""
        with self._lock:
            self._observers.append(observer)

    def analysis_diagnostics(self) -> list["Diagnostic"]:
        """Every diagnostic recorded by registrations so far."""
        with self._lock:
            return list(self._analysis_log)

    def is_degraded(self, template_id: str) -> bool:
        """True if a query template was admitted degraded-to-pass-through.

        A template is degraded either directly (its own analysis found
        errors) or transitively (its function template's did).
        """
        key = template_id.lower()
        if key in self._degraded_templates:
            return True
        template = self._query_templates.get(key)
        return (
            template is not None
            and template.function_template.name.lower()
            in self._degraded_functions
        )

    # ------------------------------------------------------ registration
    def register_function_template(self, template: FunctionTemplate) -> None:
        with self._lock:
            key = template.name.lower()
            if key in self._function_templates:
                raise TemplateError(
                    f"function template {template.name!r} already registered"
                )
            if self.analysis_mode != "off":
                from repro.analysis.analyzer import analyze_function_template

                report = analyze_function_template(template)
                if not self._admit(template.name, report):
                    self._degraded_functions.add(key)
            self._function_templates[key] = template

    def register_query_template(self, template: QueryTemplate) -> None:
        with self._lock:
            key = template.template_id.lower()
            if key in self._query_templates:
                raise TemplateError(
                    f"query template {template.template_id!r} "
                    f"already registered"
                )
            if self.analysis_mode != "off":
                from repro.analysis.analyzer import analyze_query_template

                report = analyze_query_template(template)
                if not self._admit(template.template_id, report):
                    self._degraded_templates.add(key)
            self._query_templates[key] = template

    def register_info_file(self, info: TemplateInfoFile) -> None:
        with self._lock:
            key = info.form_name.lower()
            if key in self._info_files:
                raise TemplateError(
                    f"info file for form {info.form_name!r} "
                    f"already registered"
                )
            if info.template_id.lower() not in self._query_templates:
                raise TemplateError(
                    f"info file {info.form_name!r} references unknown query "
                    f"template {info.template_id!r}"
                )
            if self.analysis_mode != "off":
                from repro.analysis.analyzer import analyze_info_file

                template = self._query_templates[info.template_id.lower()]
                report = analyze_info_file(info, template)
                if not self._admit(info.form_name, report):
                    # A form that cannot bind every declared parameter
                    # can produce under-constrained queries; never
                    # cache them.
                    self._degraded_templates.add(info.template_id.lower())
            self._info_files[key] = info

    # ------------------------------------------------------------ lookup
    def function_template(self, name: str) -> FunctionTemplate:
        try:
            return self._function_templates[name.lower()]
        except KeyError:
            raise TemplateError(
                f"no function template for {name!r}"
            ) from None

    def query_template(self, template_id: str) -> QueryTemplate:
        try:
            return self._query_templates[template_id.lower()]
        except KeyError:
            raise TemplateError(
                f"no query template {template_id!r}"
            ) from None

    def info_file(self, form_name: str) -> TemplateInfoFile:
        try:
            return self._info_files[form_name.lower()]
        except KeyError:
            raise TemplateError(
                f"no info file for form {form_name!r}"
            ) from None

    def function_templates(self) -> list[FunctionTemplate]:
        return list(self._function_templates.values())

    def query_template_ids(self) -> list[str]:
        return [t.template_id for t in self._query_templates.values()]

    def info_files(self) -> list[TemplateInfoFile]:
        return list(self._info_files.values())

    # ----------------------------------------------------------- binding
    def bind(
        self, template_id: str, params: Mapping[str, Any]
    ) -> BoundQuery:
        """A concrete query from a template id and parameter values."""
        template = self.query_template(template_id)
        params = dict(params)
        statement = template.bind_statement(params)
        region = template.region_for(params)
        return BoundQuery(
            template=template,
            params=params,
            statement=statement,
            region=region,
        )

    def bind_form(
        self, form_name: str, form_values: Mapping[str, str]
    ) -> BoundQuery:
        """A concrete query from raw HTML form fields."""
        info = self.info_file(form_name)
        params = info.bind_form(form_values)
        return self.bind(info.template_id, params)
