"""Function-embedded query templates (paper Figure 2).

A query template is parameterized SQL whose FROM clause calls a
table-valued function; the parameters come from an HTML search form.
The template pins down everything the proxy must know to do active
caching:

* which function template gives the call its region semantics,
* the result key column used to deduplicate merged results,
* the select list, optional join, optional "other predicates", and an
  optional TOP-N — the complete shape of the paper's common query class.

``validate`` enforces the four properties of Section 3.1 as far as they
are checkable statically:

1. *Determinism* — the embedded function (and any scalar functions in
   the WHERE clause) must be registered as deterministic.
2. *Spatial region selection semantics* — the FROM source must be a
   call to the declared function template, with matching arity.
3. *Semantics-preserving join* — every join must be an equi-join
   between a function output column and the joined table (tuple
   filtering / attribute expansion only, never tuple creation).  The
   paper's Radial form join on ``objID`` is the model.
4. *Result attribute availability* — every attribute the function
   template's point expressions read must appear in the select list, so
   cached tuples can be re-evaluated spatially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.relational.expressions import BinaryOp, BinaryOperator, ColumnRef
from repro.sqlparser.ast import FunctionSource, SelectStatement
from repro.sqlparser.parser import parse_select
from repro.templates.errors import TemplateError
from repro.templates.function_template import FunctionTemplate


@dataclass(frozen=True)
class QueryTemplate:
    """A registered function-embedded query template."""

    template_id: str
    sql: str
    statement: SelectStatement
    function_template: FunctionTemplate
    key_column: str
    description: str = ""

    @staticmethod
    def from_sql(
        template_id: str,
        sql: str,
        function_template: FunctionTemplate,
        key_column: str,
        description: str = "",
        checked: bool = True,
    ) -> "QueryTemplate":
        """Parse and (by default) statically check a query template.

        ``checked=False`` skips the property checks so a questionable
        template can still be *constructed* — registration with a
        :class:`~repro.templates.manager.TemplateManager` then decides
        its fate per the manager's analysis mode (strict mode rejects,
        permissive mode admits it degraded to pass-through).
        """
        try:
            statement = parse_select(sql)
        except Exception as exc:
            raise TemplateError(
                f"template {template_id!r}: cannot parse SQL: {exc}"
            ) from exc
        template = QueryTemplate(
            template_id=template_id,
            sql=sql,
            statement=statement,
            function_template=function_template,
            key_column=key_column,
            description=description,
        )
        if checked:
            template._check_structure()
        return template

    # -------------------------------------------------------- validation
    def _check_structure(self) -> None:
        """Run the analyzer's property passes; raise on any error.

        The static checks (paper properties 2–4) are owned by
        :mod:`repro.analysis`; this method is the fail-fast façade the
        constructor and the strict-mode manager share.  Imported lazily
        because the analyzer inspects template types from this module.
        """
        from repro.analysis.analyzer import analyze_query_template
        from repro.templates.errors import TemplateAnalysisError

        report = analyze_query_template(self)
        if report.has_errors:
            raise TemplateAnalysisError(self.template_id, report)

    @staticmethod
    def _is_semantics_preserving_join(condition) -> bool:
        return (
            isinstance(condition, BinaryOp)
            and condition.op is BinaryOperator.EQ
            and isinstance(condition.left, ColumnRef)
            and isinstance(condition.right, ColumnRef)
        )

    def validate(self, registry) -> None:
        """Check determinism against a function registry (property 1)."""
        source = self.statement.source
        if not registry.has_table(source.name):
            raise TemplateError(
                f"template {self.template_id!r}: function {source.name!r} "
                "is not registered at the origin"
            )
        if not registry.is_deterministic(source.name):
            raise TemplateError(
                f"template {self.template_id!r}: function {source.name!r} "
                "is non-deterministic and cannot be actively cached "
                "(paper property 1)"
            )

    # ----------------------------------------------------------- binding
    @property
    def parameter_names(self) -> list[str]:
        return self.statement.parameter_names()

    def bind_statement(self, params: Mapping[str, Any]) -> SelectStatement:
        return self.statement.bind(dict(params))

    def function_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Values of the *function template's* parameters for a binding.

        The query template's function call arguments are expressions
        over the query parameters; evaluating each bound argument gives
        the positional function arguments, which are zipped with the
        function template's declared parameter names.
        """
        source = self.statement.source
        assert isinstance(source, FunctionSource)
        bound = self.bind_statement(params).source
        assert isinstance(bound, FunctionSource)
        values = bound.argument_values()
        return dict(zip(self.function_template.params, values))

    def region_for(self, params: Mapping[str, Any]):
        """The spatial region a concrete binding selects."""
        return self.function_template.region_for(self.function_params(params))
