"""Built-in templates for the SkyServer search forms.

These reproduce the paper's two worked examples:

* the **Radial** search form (Figure 1/2), backed by
  ``fGetNearbyObjEq`` and abstracted as a 3-d hypersphere around the
  search direction's unit vector (Figure 3) — the angular radius in
  arcminutes maps to the chord ``2 * sin(radians(radius / 60) / 2)``;
* the **Rectangular** search form, backed by ``fGetObjFromRect`` and
  abstracted as a 2-d rectangle in (ra, dec).

Both query templates join the function result with PhotoPrimary on
``objID`` for attribute expansion (the paper's semantics-preserving
join) and carry an r-band magnitude range as the "other predicates".
The magnitude bounds default to the full range in the info files, so a
plain form submission has no effective extra filter.
"""

from __future__ import annotations

from repro.sqlparser.parser import parse_expression
from repro.templates.function_template import FunctionTemplate, Shape
from repro.templates.info_file import TemplateInfoFile
from repro.templates.manager import TemplateManager
from repro.templates.query_template import QueryTemplate

RADIAL_TEMPLATE_ID = "skyserver.radial"
RECT_TEMPLATE_ID = "skyserver.rect"
NEAREST_TEMPLATE_ID = "skyserver.nearest"

RADIAL_FORM = "Radial"
RECT_FORM = "Rectangular"
NEAREST_FORM = "Nearest"

# Wide-open magnitude defaults: no effective r-band filter.
MAG_MIN_DEFAULT = -9999.0
MAG_MAX_DEFAULT = 9999.0

RADIAL_SQL = (
    "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.type, "
    "p.u, p.g, p.r, p.i, p.z, n.distance "
    "FROM fGetNearbyObjEq($ra, $dec, $radius) n "
    "JOIN PhotoPrimary p ON n.objID = p.objID "
    "WHERE p.r BETWEEN $r_min AND $r_max"
)

RECT_SQL = (
    "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.type, "
    "p.u, p.g, p.r, p.i, p.z "
    "FROM fGetObjFromRect($ra_min, $ra_max, $dec_min, $dec_max) n "
    "JOIN PhotoPrimary p ON n.objID = p.objID "
    "WHERE p.r BETWEEN $r_min AND $r_max"
)

# The nearest-object search: the SkyServer's fGetNearestObjEq is the
# TOP-1-by-distance cut of the radial search.  Such results are
# truncated region answers, so the proxy caches them for exact-match
# reuse only (the truncation guard makes this safe automatically).
NEAREST_SQL = (
    "SELECT TOP 1 p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.type, "
    "p.u, p.g, p.r, p.i, p.z, n.distance "
    "FROM fGetNearbyObjEq($ra, $dec, $radius) n "
    "JOIN PhotoPrimary p ON n.objID = p.objID "
    "WHERE p.r BETWEEN $r_min AND $r_max "
    "ORDER BY n.distance"
)


def radial_function_template() -> FunctionTemplate:
    """The paper's Figure 3 template for ``fGetNearbyObjEq``."""
    return FunctionTemplate(
        name="fGetNearbyObjEq",
        params=("ra", "dec", "radius"),
        shape=Shape.HYPERSPHERE,
        dims=3,
        center_exprs=(
            parse_expression("cos(radians($ra)) * cos(radians($dec))"),
            parse_expression("sin(radians($ra)) * cos(radians($dec))"),
            parse_expression("sin(radians($dec))"),
        ),
        radius_expr=parse_expression("2.0 * sin(radians($radius / 60.0) / 2.0)"),
        point_exprs=(
            parse_expression("cx"),
            parse_expression("cy"),
            parse_expression("cz"),
        ),
        description=(
            "All objects within $radius arcminutes of ($ra, $dec): a 3-d "
            "hypersphere around the search direction's unit vector."
        ),
    )


def rect_function_template() -> FunctionTemplate:
    """Template for ``fGetObjFromRect``: a 2-d (ra, dec) rectangle."""
    return FunctionTemplate(
        name="fGetObjFromRect",
        params=("ra_min", "ra_max", "dec_min", "dec_max"),
        shape=Shape.HYPERRECT,
        dims=2,
        low_exprs=(
            parse_expression("$ra_min"),
            parse_expression("$dec_min"),
        ),
        high_exprs=(
            parse_expression("$ra_max"),
            parse_expression("$dec_max"),
        ),
        point_exprs=(parse_expression("ra"), parse_expression("dec")),
        description="All objects inside an (ra, dec) rectangle.",
    )


def radial_query_template() -> QueryTemplate:
    return QueryTemplate.from_sql(
        template_id=RADIAL_TEMPLATE_ID,
        sql=RADIAL_SQL,
        function_template=radial_function_template(),
        key_column="objID",
        description="The Radial search form's function-embedded query.",
    )


def rect_query_template() -> QueryTemplate:
    return QueryTemplate.from_sql(
        template_id=RECT_TEMPLATE_ID,
        sql=RECT_SQL,
        function_template=rect_function_template(),
        key_column="objID",
        description="The Rectangular search form's function-embedded query.",
    )


def nearest_query_template() -> QueryTemplate:
    return QueryTemplate.from_sql(
        template_id=NEAREST_TEMPLATE_ID,
        sql=NEAREST_SQL,
        function_template=radial_function_template(),
        key_column="objID",
        description="The Nearest-object search: TOP 1 by distance.",
    )


def nearest_info_file() -> TemplateInfoFile:
    return TemplateInfoFile(
        form_name=NEAREST_FORM,
        template_id=NEAREST_TEMPLATE_ID,
        field_map={"ra": "ra", "dec": "dec", "radius": "radius"},
        defaults={
            "radius": 3.0,  # the real form defaults to a small cone
            "r_min": MAG_MIN_DEFAULT,
            "r_max": MAG_MAX_DEFAULT,
        },
    )


def radial_info_file() -> TemplateInfoFile:
    return TemplateInfoFile(
        form_name=RADIAL_FORM,
        template_id=RADIAL_TEMPLATE_ID,
        field_map={
            "ra": "ra",
            "dec": "dec",
            "radius": "radius",
            "min_mag": "r_min",
            "max_mag": "r_max",
        },
        defaults={"r_min": MAG_MIN_DEFAULT, "r_max": MAG_MAX_DEFAULT},
    )


def rect_info_file() -> TemplateInfoFile:
    return TemplateInfoFile(
        form_name=RECT_FORM,
        template_id=RECT_TEMPLATE_ID,
        field_map={
            "min_ra": "ra_min",
            "max_ra": "ra_max",
            "min_dec": "dec_min",
            "max_dec": "dec_max",
            "min_mag": "r_min",
            "max_mag": "r_max",
        },
        defaults={"r_min": MAG_MIN_DEFAULT, "r_max": MAG_MAX_DEFAULT},
    )


def register_skyserver_templates(manager: TemplateManager) -> None:
    """Register the search forms' templates and info files.

    The Radial and Nearest templates share one function template
    (``fGetNearbyObjEq``): the paper notes a function template "may
    apply to other functions if they have the same query semantics".
    """
    manager.register_function_template(radial_function_template())
    manager.register_function_template(rect_function_template())
    manager.register_query_template(radial_query_template())
    manager.register_query_template(rect_query_template())
    manager.register_query_template(nearest_query_template())
    manager.register_info_file(radial_info_file())
    manager.register_info_file(rect_info_file())
    manager.register_info_file(nearest_info_file())
