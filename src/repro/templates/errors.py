"""Template-layer errors."""


class TemplateError(ValueError):
    """Malformed template XML, failed validation of the four properties,
    or an unresolvable template reference."""
