"""Template-layer errors."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.diagnostics import AnalysisReport


class TemplateError(ValueError):
    """Malformed template XML, failed validation of the four properties,
    or an unresolvable template reference."""


class TemplateAnalysisError(TemplateError):
    """A template rejected by the static cacheability analyzer.

    Carries the full :class:`~repro.analysis.diagnostics.AnalysisReport`
    so callers can surface every violation (code, span, hint), not just
    the flattened message.
    """

    def __init__(self, subject: str, report: "AnalysisReport") -> None:
        self.subject = subject
        self.report = report
        messages = "; ".join(
            f"[{diagnostic.code}] {diagnostic.message}"
            for diagnostic in report.errors
        )
        super().__init__(f"template {subject!r}: {messages}")
