"""Templates: the semantic contracts registered with the function proxy.

The paper's framework (Section 2) rests on three registered artifacts:

* **Function templates** — XML documents abstracting a table-valued
  function as a spatial region selection query (Figure 3): shape,
  dimensionality, expressions mapping the call's parameters to the
  region, and expressions mapping a result tuple to its point.
* **Function-embedded query templates** — parameterized SQL whose FROM
  clause calls a templated function (Figure 2).
* **Template information files** — the glue tying an HTML search form's
  fields to a query template's parameters.

The :class:`~repro.templates.manager.TemplateManager` holds all three
and turns an incoming form request or parameter binding into a
:class:`~repro.templates.manager.BoundQuery`: concrete SQL plus the
region the proxy's cache reasoning runs on.
"""

from repro.templates.errors import TemplateError
from repro.templates.function_template import FunctionTemplate, Shape
from repro.templates.query_template import QueryTemplate
from repro.templates.info_file import TemplateInfoFile
from repro.templates.manager import BoundQuery, TemplateManager
from repro.templates.skyserver_templates import (
    radial_function_template,
    radial_query_template,
    rect_function_template,
    rect_query_template,
    register_skyserver_templates,
)

__all__ = [
    "BoundQuery",
    "FunctionTemplate",
    "QueryTemplate",
    "Shape",
    "TemplateError",
    "TemplateInfoFile",
    "TemplateManager",
    "radial_function_template",
    "radial_query_template",
    "rect_function_template",
    "rect_query_template",
    "register_skyserver_templates",
]
