"""Template information files: HTML form -> query template binding.

The paper (Section 2): "we use information files to associate an HTML
search form with a function-embedded query template".  An info file
names the form, the query template it drives, how form field names map
to template parameter names, and default values for parameters the form
may omit (the Radial form's result limit, for instance).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.templates.errors import TemplateError


def _parse_value(text: str) -> Any:
    """Form values arrive as strings; recover int/float when they look
    numeric (the same coercion the web tier of the original site does)."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


@dataclass(frozen=True)
class TemplateInfoFile:
    """Association of one search form with one query template."""

    form_name: str
    template_id: str
    field_map: Mapping[str, str]  # form field name -> template parameter
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def bind_form(self, form_values: Mapping[str, str]) -> dict[str, Any]:
        """Translate raw form fields into template parameter values.

        Unknown form fields are ignored (forms carry submit buttons and
        the like); missing fields fall back to defaults; a parameter
        with neither raises :class:`TemplateError`.
        """
        params: dict[str, Any] = dict(self.defaults)
        for form_field, parameter in self.field_map.items():
            if form_field in form_values:
                raw = form_values[form_field]
                params[parameter] = (
                    _parse_value(raw) if isinstance(raw, str) else raw
                )
        missing = [
            parameter
            for parameter in self.field_map.values()
            if parameter not in params
        ]
        if missing:
            raise TemplateError(
                f"form {self.form_name!r}: missing value(s) for "
                f"{', '.join(missing)}"
            )
        return params

    # --------------------------------------------------------------- XML
    def to_xml(self) -> str:
        root = ET.Element("TemplateInfo")
        ET.SubElement(root, "FormName").text = self.form_name
        ET.SubElement(root, "TemplateId").text = self.template_id
        fields_el = ET.SubElement(root, "Fields")
        for form_field, parameter in self.field_map.items():
            ET.SubElement(
                fields_el, "Field", name=form_field, param=parameter
            )
        defaults_el = ET.SubElement(root, "Defaults")
        for parameter, value in self.defaults.items():
            ET.SubElement(
                defaults_el, "Default", param=parameter, value=str(value)
            )
        return ET.tostring(root, encoding="unicode")

    @staticmethod
    def from_xml(text: str) -> "TemplateInfoFile":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise TemplateError(f"malformed info file XML: {exc}") from None
        if root.tag != "TemplateInfo":
            raise TemplateError(f"expected <TemplateInfo>, got <{root.tag}>")
        form_el = root.find("FormName")
        template_el = root.find("TemplateId")
        if form_el is None or template_el is None:
            raise TemplateError("info file needs <FormName> and <TemplateId>")
        field_map = {}
        fields_el = root.find("Fields")
        if fields_el is not None:
            for field_el in fields_el.findall("Field"):
                field_map[field_el.get("name")] = field_el.get("param")
        defaults = {}
        defaults_el = root.find("Defaults")
        if defaults_el is not None:
            for default_el in defaults_el.findall("Default"):
                defaults[default_el.get("param")] = _parse_value(
                    default_el.get("value") or ""
                )
        return TemplateInfoFile(
            form_name=(form_el.text or "").strip(),
            template_id=(template_el.text or "").strip(),
            field_map=field_map,
            defaults=defaults,
        )
