"""Function templates: the spatial abstraction of a table-valued function.

A function template declares (paper Figure 3):

* the function's name and parameter names;
* the region **shape** (hypersphere, hyperrect, or polytope) and its
  dimensionality;
* expressions, over the ``$``-parameters, that compute the region from a
  concrete call — e.g. for ``fGetNearbyObjEq`` the center is the unit
  vector ``(cos(ra)cos(dec), sin(ra)cos(dec), sin(dec))`` and the radius
  is the chord subtending the angular radius;
* expressions, over the *result attributes*, that compute the point a
  result tuple represents (the paper's property 4 requires those
  attributes to be present in cached results).

Templates serialize to XML.  The paper's example uses numbered child
tags (``<1>``, ``<2>``); we use repeated ``<Expr>`` elements, which is
well-formed XML carrying the same information.
"""

from __future__ import annotations

import enum
import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Any, Mapping

from repro.geometry.regions import (
    ConvexPolytope,
    Halfspace,
    HyperRect,
    HyperSphere,
    Region,
)
from repro.relational.errors import ExecutionError
from repro.relational.expressions import Expression
from repro.sqlparser.ast import bind_expression
from repro.sqlparser.parser import parse_expression
from repro.templates.errors import TemplateError


class Shape(enum.Enum):
    """Region shapes a function template may declare."""

    HYPERSPHERE = "hypersphere"
    HYPERRECT = "hyperrect"
    POLYTOPE = "polytope"


def _parse(text: str) -> Expression:
    try:
        return parse_expression(text)
    except Exception as exc:
        raise TemplateError(f"bad template expression {text!r}: {exc}") from exc


def _evaluate_constant(expr: Expression, params: Mapping[str, Any]) -> float:
    """Bind ``$``-parameters and evaluate to a number."""
    bound = bind_expression(expr, dict(params))
    try:
        value = bound.evaluate({})
    except ExecutionError as exc:
        raise TemplateError(f"cannot evaluate {expr.to_sql()}: {exc}") from exc
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TemplateError(
            f"template expression {expr.to_sql()} produced {value!r}, "
            "expected a number"
        )
    return float(value)


@dataclass(frozen=True)
class HalfspaceSpec:
    """One polytope face: normal component expressions and an offset."""

    normal: tuple[Expression, ...]
    offset: Expression


@dataclass(frozen=True)
class FunctionTemplate:
    """The registered spatial semantics of one table-valued function.

    ``point_exprs`` are evaluated against a result tuple's environment
    (lower-cased column name -> value) to recover the tuple's point in
    region space.  For the shape expressions, exactly the fields
    matching the declared shape must be provided:

    * HYPERSPHERE: ``center_exprs`` (one per dimension) and ``radius_expr``
    * HYPERRECT: ``low_exprs`` and ``high_exprs`` (one per dimension)
    * POLYTOPE: ``halfspace_specs`` plus ``low_exprs``/``high_exprs``
      giving an enclosing box (used for the R-tree description)
    """

    name: str
    params: tuple[str, ...]
    shape: Shape
    dims: int
    point_exprs: tuple[Expression, ...]
    center_exprs: tuple[Expression, ...] = ()
    radius_expr: Expression | None = None
    low_exprs: tuple[Expression, ...] = ()
    high_exprs: tuple[Expression, ...] = ()
    halfspace_specs: tuple[HalfspaceSpec, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.dims < 1:
            raise TemplateError(f"dims must be positive, got {self.dims}")
        if len(self.point_exprs) != self.dims:
            raise TemplateError(
                f"{self.name}: need {self.dims} point expressions, "
                f"got {len(self.point_exprs)}"
            )
        if self.shape is Shape.HYPERSPHERE:
            if len(self.center_exprs) != self.dims or self.radius_expr is None:
                raise TemplateError(
                    f"{self.name}: hypersphere needs {self.dims} center "
                    "expressions and a radius expression"
                )
        elif self.shape is Shape.HYPERRECT:
            if len(self.low_exprs) != self.dims or (
                len(self.high_exprs) != self.dims
            ):
                raise TemplateError(
                    f"{self.name}: hyperrect needs {self.dims} low and "
                    f"{self.dims} high bound expressions"
                )
        elif self.shape is Shape.POLYTOPE:
            if not self.halfspace_specs:
                raise TemplateError(
                    f"{self.name}: polytope needs at least one halfspace"
                )
            if len(self.low_exprs) != self.dims or (
                len(self.high_exprs) != self.dims
            ):
                raise TemplateError(
                    f"{self.name}: polytope needs an enclosing box "
                    "(low/high bound expressions)"
                )
            for spec in self.halfspace_specs:
                if len(spec.normal) != self.dims:
                    raise TemplateError(
                        f"{self.name}: halfspace normal has "
                        f"{len(spec.normal)} components, expected {self.dims}"
                    )

    # ------------------------------------------------------------ region
    def region_for(self, params: Mapping[str, Any]) -> Region:
        """The region selected by a concrete call with ``params``."""
        missing = [p for p in self.params if p not in params]
        if missing:
            raise TemplateError(
                f"{self.name}: missing parameter(s) {', '.join(missing)}"
            )
        if self.shape is Shape.HYPERSPHERE:
            center = tuple(
                _evaluate_constant(e, params) for e in self.center_exprs
            )
            radius = _evaluate_constant(self.radius_expr, params)
            if radius < 0:
                raise TemplateError(f"{self.name}: negative radius {radius}")
            return HyperSphere(center, radius)
        lows = tuple(_evaluate_constant(e, params) for e in self.low_exprs)
        highs = tuple(_evaluate_constant(e, params) for e in self.high_exprs)
        box = HyperRect(lows, highs)
        if self.shape is Shape.HYPERRECT:
            return box
        halfspaces = tuple(
            Halfspace(
                tuple(_evaluate_constant(n, params) for n in spec.normal),
                _evaluate_constant(spec.offset, params),
            )
            for spec in self.halfspace_specs
        )
        return ConvexPolytope(halfspaces, box)

    def point_of(self, row_env: Mapping[str, Any]) -> tuple[float, ...]:
        """The point in region space represented by one result tuple."""
        values = []
        for expr in self.point_exprs:
            value = expr.evaluate(row_env)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TemplateError(
                    f"{self.name}: point expression {expr.to_sql()} gave "
                    f"{value!r}, expected a number"
                )
            values.append(float(value))
        return tuple(values)

    def point_attribute_names(self) -> set[str]:
        """Result attributes the point expressions depend on.

        The proxy checks these against a query template's select list to
        enforce the paper's *result attribute availability* property.
        """
        names: set[str] = set()
        for expr in self.point_exprs:
            names |= expr.column_refs()
        return names

    # --------------------------------------------------------------- XML
    def to_xml(self) -> str:
        root = ET.Element("FunctionTemplate")
        ET.SubElement(root, "Name").text = self.name
        params_el = ET.SubElement(root, "Params")
        for param in self.params:
            ET.SubElement(params_el, "Param").text = param
        ET.SubElement(root, "Shape").text = self.shape.value
        ET.SubElement(root, "NumDimensions").text = str(self.dims)
        if self.shape is Shape.HYPERSPHERE:
            center_el = ET.SubElement(root, "CenterCoordinate")
            for expr in self.center_exprs:
                ET.SubElement(center_el, "Expr").text = expr.to_sql()
            ET.SubElement(root, "Radius").text = self.radius_expr.to_sql()
        else:
            low_el = ET.SubElement(root, "LowBound")
            for expr in self.low_exprs:
                ET.SubElement(low_el, "Expr").text = expr.to_sql()
            high_el = ET.SubElement(root, "HighBound")
            for expr in self.high_exprs:
                ET.SubElement(high_el, "Expr").text = expr.to_sql()
        if self.shape is Shape.POLYTOPE:
            faces_el = ET.SubElement(root, "Halfspaces")
            for spec in self.halfspace_specs:
                face_el = ET.SubElement(faces_el, "Halfspace")
                normal_el = ET.SubElement(face_el, "Normal")
                for expr in spec.normal:
                    ET.SubElement(normal_el, "Expr").text = expr.to_sql()
                ET.SubElement(face_el, "Offset").text = spec.offset.to_sql()
        point_el = ET.SubElement(root, "PointCoordinate")
        for expr in self.point_exprs:
            ET.SubElement(point_el, "Expr").text = expr.to_sql()
        if self.description:
            ET.SubElement(root, "Description").text = self.description
        return ET.tostring(root, encoding="unicode")

    @staticmethod
    def from_xml(text: str) -> "FunctionTemplate":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise TemplateError(f"malformed template XML: {exc}") from None
        if root.tag != "FunctionTemplate":
            raise TemplateError(f"expected <FunctionTemplate>, got <{root.tag}>")

        def text_of(tag: str, required: bool = True) -> str | None:
            element = root.find(tag)
            if element is None or element.text is None:
                if required:
                    raise TemplateError(f"missing <{tag}> in template")
                return None
            return element.text.strip()

        def exprs_of(tag: str, parent: ET.Element | None = None) -> tuple:
            container = (parent or root).find(tag)
            if container is None:
                return ()
            return tuple(
                _parse(child.text or "") for child in container.findall("Expr")
            )

        name = text_of("Name")
        params_el = root.find("Params")
        if params_el is None:
            raise TemplateError("missing <Params> in template")
        params = tuple(
            (child.text or "").strip() for child in params_el.findall("Param")
        )
        try:
            shape = Shape(text_of("Shape"))
        except ValueError:
            raise TemplateError(
                f"unknown shape {text_of('Shape')!r}"
            ) from None
        dims = int(text_of("NumDimensions"))

        radius_text = text_of("Radius", required=False)
        halfspace_specs = []
        faces_el = root.find("Halfspaces")
        if faces_el is not None:
            for face_el in faces_el.findall("Halfspace"):
                offset_el = face_el.find("Offset")
                if offset_el is None or offset_el.text is None:
                    raise TemplateError("halfspace missing <Offset>")
                halfspace_specs.append(
                    HalfspaceSpec(
                        normal=exprs_of("Normal", face_el),
                        offset=_parse(offset_el.text),
                    )
                )
        description_el = root.find("Description")
        return FunctionTemplate(
            name=name,
            params=params,
            shape=shape,
            dims=dims,
            point_exprs=exprs_of("PointCoordinate"),
            center_exprs=exprs_of("CenterCoordinate"),
            radius_expr=_parse(radius_text) if radius_text else None,
            low_exprs=exprs_of("LowBound"),
            high_exprs=exprs_of("HighBound"),
            halfspace_specs=tuple(halfspace_specs),
            description=(description_el.text or "").strip()
            if description_el is not None
            else "",
        )
