"""The flight recorder: a bounded log of serve-path state transitions.

Metrics say *how much*; the flight recorder says *when*.  Every
operationally interesting state transition — the origin breaker
opening, the shed policy kicking in, a data-version flush emptying the
cache — is emitted as one structured event with a **pinned EV code**,
the simulated timestamp it happened at, optional trace/query-id links,
and a free-form payload.  Events live in a bounded ring buffer (the
newest ``capacity`` survive), so the recorder is safe to leave on in
long runs; ``GET /events`` and the ``events-<label>.json`` harness
artifact expose the buffer.

Event codes are stable identifiers pinned in DESIGN.md, exactly like
the FP diagnostic codes and the profiler stage names: emitting an
ad-hoc string instead of a registry code is flagged as ``FP311``.
Renaming a code is a breaking change for dashboards and tests keyed
on it.

Two implementations share the interface, following the
:class:`~repro.obs.profiling.NullProfiler` pattern:

* :class:`EventRecorder` — records everything, guarded by the
  ``proxy.telemetry`` named lock (a pure sink in the lock-order
  graph: emitters may hold their own locks while emitting);
* :class:`NullEventRecorder` — the default off switch: ``emit`` is a
  single no-op method call, preserving the PR 6 overhead contract.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Mapping

from repro.locking import guarded_by, named_lock, read_only

#: The origin circuit breaker opened (origin presumed down).
EV_BREAKER_OPEN = "EV01"
#: The origin circuit breaker moved to half-open (probe admitted).
EV_BREAKER_HALF_OPEN = "EV02"
#: The origin circuit breaker closed (origin healthy again).
EV_BREAKER_CLOSED = "EV03"
#: The admission shed policy activated (overload breaker opened).
EV_SHED_ACTIVATED = "EV04"
#: The admission shed policy deactivated (overload breaker closed).
EV_SHED_DEACTIVATED = "EV05"
#: The origin's data version moved; the whole cache was flushed.
EV_DATA_VERSION_FLUSH = "EV06"
#: Warm-restart recovery finished replaying the journal.
EV_RECOVERY_COMPLETED = "EV07"
#: Queued requests were dropped at dispatch for missing the deadline.
EV_QUEUE_DEADLINE_DROPS = "EV08"
#: One admission evicted an unusually large number of entries.
EV_EVICTION_STORM = "EV09"
#: The persister wrote a snapshot and reset the journal.
EV_SNAPSHOT_CHECKPOINT = "EV10"
#: The health monitor's overall verdict changed.
EV_HEALTH_STATE_CHANGE = "EV11"
#: A shard worker crashed, hung, or slowed per its ShardCrashPlan.
EV_SHARD_CRASH = "EV12"
#: The router re-routed a query away from an unhealthy/down shard.
EV_FAILOVER_REROUTE = "EV13"
#: A warm handoff finished replaying a shard's cache into a successor.
EV_HANDOFF_COMPLETED = "EV14"

#: The pinned event-code registry (see DESIGN.md): code -> stable name.
EVENT_CODES: Mapping[str, str] = {
    EV_BREAKER_OPEN: "breaker-open",
    EV_BREAKER_HALF_OPEN: "breaker-half-open",
    EV_BREAKER_CLOSED: "breaker-closed",
    EV_SHED_ACTIVATED: "shed-policy-activated",
    EV_SHED_DEACTIVATED: "shed-policy-deactivated",
    EV_DATA_VERSION_FLUSH: "data-version-flush",
    EV_RECOVERY_COMPLETED: "recovery-completed",
    EV_QUEUE_DEADLINE_DROPS: "queue-deadline-drops",
    EV_EVICTION_STORM: "eviction-storm",
    EV_SNAPSHOT_CHECKPOINT: "snapshot-checkpoint",
    EV_HEALTH_STATE_CHANGE: "health-state-change",
    EV_SHARD_CRASH: "shard-crash",
    EV_FAILOVER_REROUTE: "failover-reroute",
    EV_HANDOFF_COMPLETED: "handoff-completed",
}

#: Breaker-state value -> breaker event code, keyed by the state's
#: string value so emitters need not import the resilience module.
BREAKER_EVENT_CODES: Mapping[str, str] = {
    "open": EV_BREAKER_OPEN,
    "half-open": EV_BREAKER_HALF_OPEN,
    "closed": EV_BREAKER_CLOSED,
}

#: Overload-breaker state value -> shed-policy event code.  Half-open
#: is deliberately absent: the policy is only *probing* then, neither
#: active nor lifted.
SHED_POLICY_EVENT_CODES: Mapping[str, str] = {
    "open": EV_SHED_ACTIVATED,
    "closed": EV_SHED_DEACTIVATED,
}

#: Evictions in one cache admission at or above this count are an
#: eviction storm (EV09): one incoming result displacing this much of
#: the working set is replacement-policy news worth a timeline mark.
EVICTION_STORM_THRESHOLD = 4


@guarded_by("proxy.telemetry", "_events", "_total", "_counts")
@read_only("capacity")
class EventRecorder:
    """A bounded, thread-safe recorder of pinned serve-path events.

    ``emit`` validates the code against :data:`EVENT_CODES` — an
    unknown code is a programming error, caught loudly rather than
    silently polluting the timeline.  The buffer keeps the newest
    ``capacity`` events; ``total``/``counts`` keep counting across
    wraparound so the snapshot says how much history was dropped.
    """

    enabled = True

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = capacity
        self._lock = named_lock("proxy.telemetry")
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._total = 0
        self._counts: dict[str, int] = {}

    def emit(
        self,
        code: str,
        at_ms: float,
        trace_id: str | None = None,
        query_index: int | None = None,
        **payload: Any,
    ) -> None:
        """Record one event at simulated time ``at_ms``."""
        name = EVENT_CODES.get(code)
        if name is None:
            raise ValueError(
                f"unknown event code {code!r}; pinned codes: "
                f"{sorted(EVENT_CODES)}"
            )
        event: dict[str, Any] = {
            "code": code,
            "name": name,
            "at_ms": float(at_ms),
        }
        if trace_id is not None:
            event["trace_id"] = trace_id
        if query_index is not None:
            event["query_index"] = query_index
        if payload:
            event["payload"] = payload
        with self._lock:
            self._events.append(event)
            self._total += 1
            self._counts[code] = self._counts.get(code, 0) + 1

    def recent(self, n: int | None = None) -> list[dict[str, Any]]:
        """The newest ``n`` retained events, oldest first."""
        with self._lock:
            events = [dict(event) for event in self._events]
        if n is not None and n >= 0:
            events = events[-n:] if n else []
        return events

    @property
    def total(self) -> int:
        """Events emitted over the recorder's lifetime."""
        with self._lock:
            return self._total

    def counts(self) -> dict[str, int]:
        """Lifetime emission count per event code."""
        with self._lock:
            return dict(self._counts)

    def snapshot(self) -> dict[str, Any]:
        """The whole buffer as a JSON-able dict (the wire format)."""
        with self._lock:
            return {
                "enabled": True,
                "clock": "sim-ms",
                "capacity": self.capacity,
                "total": self._total,
                "counts": dict(sorted(self._counts.items())),
                "events": [dict(event) for event in self._events],
            }


class NullEventRecorder:
    """The disabled recorder: validates nothing, stores nothing."""

    enabled = False
    capacity = 0
    total = 0

    def emit(
        self,
        code: str,
        at_ms: float,
        trace_id: str | None = None,
        query_index: int | None = None,
        **payload: Any,
    ) -> None:
        return None

    def recent(self, n: int | None = None) -> list[dict[str, Any]]:
        return []

    def counts(self) -> dict[str, int]:
        return {}

    def snapshot(self) -> dict[str, Any]:
        return {
            "enabled": False,
            "clock": "sim-ms",
            "capacity": 0,
            "total": 0,
            "counts": {},
            "events": [],
        }


#: The singleton no-op recorder instrumentation defaults to.
NULL_EVENTS = NullEventRecorder()
