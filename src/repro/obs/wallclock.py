"""The one sanctioned way to measure real elapsed time.

Experiment code must be reproducible, so the FP301 lint rule
(:mod:`repro.analysis.pylint_rules`) bans raw wall-clock reads outside
``network/clock.py`` (the simulated clock) and ``obs/``.  Code that
legitimately needs to time real work — progress reporting, the
description-check measurement — uses :class:`Stopwatch` from here,
keeping every wall-clock read in one greppable, lint-exempt place.
"""

from __future__ import annotations

import time


def utc_timestamp() -> str:
    """The current UTC time as ISO-8601 (``2026-08-08T12:34:56Z``).

    For run *metadata* only (bench-result provenance, artifact
    stamps) — never for measurements, which use :class:`Stopwatch`
    or the simulated clock.
    """
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class Stopwatch:
    """Measures real elapsed seconds with a monotonic clock.

    ::

        watch = Stopwatch()
        ...
        print(f"took {watch.elapsed_s:.1f}s")

    ``restart`` rebases the start time so one instance can time a
    sequence of stages.
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def restart(self) -> None:
        self._start = time.perf_counter()

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_s * 1000.0
