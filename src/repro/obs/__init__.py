"""Observability: structured spans, a metrics registry, and hooks.

The paper's evaluation leans on internal timing visibility ("the proxy
servlet records timing information in each step of query processing")
and a real-time micro-claim (description checks "always under 100
milliseconds").  This package is the one mechanism behind all of that:

* :mod:`repro.obs.spans` — a span tracer that nests each query's
  lifecycle (parse → bind → check → relate → probe → remainder →
  origin → merge → admit) with wall-clock and simulated durations,
  exportable as JSONL;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms with Prometheus text-format exposition;
* :mod:`repro.obs.instrument` — the proxy/origin instrumentation
  bundles threaded through :mod:`repro.core.proxy`,
  :mod:`repro.core.cache`, :mod:`repro.server.origin`, and
  :mod:`repro.network.link`, surfaced over HTTP (``GET /metrics``,
  ``GET /trace/recent``) and snapshotted by the harness.

Everything is stdlib-only, and tracing is off by default: the
:class:`~repro.obs.spans.NullTracer` records nothing and costs a
no-op method call per step.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.spans import NULL_SPAN, NullTracer, Span, SpanTracer
from repro.obs.instrument import (
    OriginInstrumentation,
    ProxyInstrumentation,
    QueryObservation,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullTracer",
    "OriginInstrumentation",
    "ProxyInstrumentation",
    "QueryObservation",
    "Span",
    "SpanTracer",
]
