"""Observability: spans, propagation, metrics, decisions, and hooks.

The paper's evaluation leans on internal timing visibility ("the proxy
servlet records timing information in each step of query processing")
and a real-time micro-claim (description checks "always under 100
milliseconds").  This package is the one mechanism behind all of that:

* :mod:`repro.obs.spans` — a span tracer that nests each query's
  lifecycle (parse → bind → check → relate → probe → remainder →
  origin → merge → admit) with wall-clock and simulated durations,
  exportable as JSONL;
* :mod:`repro.obs.propagation` — W3C ``traceparent`` trace-context
  propagation, stitching proxy- and origin-side spans into one
  end-to-end tree across the HTTP hop;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms (with per-bucket trace-id exemplars) and Prometheus
  text-format exposition;
* :mod:`repro.obs.decisions` — the explain layer: a per-query
  :class:`~repro.obs.decisions.DecisionTrace` recording which cache
  entries were considered, each region-relationship verdict, the
  chosen action, remainder geometry, and evictions with the policy's
  rationale, served by ``GET /explain/<query_id>``;
* :mod:`repro.obs.slo` — per-template hit-ratio / latency objectives
  with burn-rate gauges on ``/metrics``;
* :mod:`repro.obs.instrument` — the proxy/origin instrumentation
  bundles threaded through :mod:`repro.core.proxy`,
  :mod:`repro.core.cache`, :mod:`repro.server.origin`, and
  :mod:`repro.network.link`, surfaced over HTTP (``GET /metrics``,
  ``GET /trace/recent``, ``GET /explain/...``) and snapshotted by the
  harness.

Everything is stdlib-only, and tracing is off by default: the
:class:`~repro.obs.spans.NullTracer` records nothing and costs a
no-op method call per step.
"""

from repro.obs.decisions import (
    ACTION_CODES,
    CandidateVerdict,
    DecisionAction,
    DecisionLog,
    DecisionTrace,
    EvictionRecord,
    action_for,
    region_summary,
)
from repro.obs.events import (
    EVENT_CODES,
    NULL_EVENTS,
    EventRecorder,
    NullEventRecorder,
)
from repro.obs.health import (
    HEALTH_RULES,
    NULL_HEALTH,
    HealthMonitor,
    NullHealthMonitor,
    evaluate_samples,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.propagation import IdGenerator, TraceContext, parse_traceparent
from repro.obs.slo import SloObjective, SloTracker
from repro.obs.spans import NULL_SPAN, NullTracer, Span, SpanTracer
from repro.obs.timeseries import (
    NULL_TIMESERIES,
    ORIGIN_LANES,
    PROXY_LANES,
    LaneSet,
    NullTimeSeries,
    TimeSeriesRecorder,
)
from repro.obs.instrument import (
    OriginInstrumentation,
    ProxyInstrumentation,
    QueryObservation,
)

__all__ = [
    "ACTION_CODES",
    "CandidateVerdict",
    "Counter",
    "DecisionAction",
    "DecisionLog",
    "DecisionTrace",
    "EVENT_CODES",
    "EventRecorder",
    "EvictionRecord",
    "Gauge",
    "HEALTH_RULES",
    "HealthMonitor",
    "Histogram",
    "IdGenerator",
    "LaneSet",
    "MetricError",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_HEALTH",
    "NULL_SPAN",
    "NULL_TIMESERIES",
    "NullEventRecorder",
    "NullHealthMonitor",
    "NullTimeSeries",
    "NullTracer",
    "ORIGIN_LANES",
    "OriginInstrumentation",
    "PROXY_LANES",
    "ProxyInstrumentation",
    "QueryObservation",
    "SloObjective",
    "SloTracker",
    "Span",
    "SpanTracer",
    "TimeSeriesRecorder",
    "TraceContext",
    "action_for",
    "evaluate_samples",
    "parse_traceparent",
    "region_summary",
]
