"""Instrumentation bundles wired through the proxy and origin.

:class:`ProxyInstrumentation` owns one metrics registry and one tracer
per proxy and defines every proxy-side metric family (query-status
counters, per-step latency histograms, cache occupancy gauges, origin
byte counters, the real-wall-clock description-check histogram).  It
also implements the two hook interfaces the lower layers call:

* the cache observer (:meth:`ProxyInstrumentation.cache_event`) that
  :class:`repro.core.cache.CacheManager` notifies on insert / evict /
  remove / clear;
* the transfer recorder (:meth:`ProxyInstrumentation.record_transfer`)
  that :class:`repro.network.link.Topology` notifies per round trip.

:class:`QueryObservation` is the per-query handle that replaced the
proxy's bespoke ``steps_ms`` dict: one mechanism accumulates the
simulated step charges (which still feed
:class:`repro.core.stats.QueryRecord` and ``TraceStats``), mirrors
each step as a span under the query's root span, and measures the
real wall clock of phases that do real work (the description check).
With the default :class:`~repro.obs.spans.NullTracer` a step costs a
dict update plus a no-op call.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from types import TracebackType
from typing import TYPE_CHECKING, Any, Iterator

from repro.locking import read_only, unshared
from repro.obs.decisions import DecisionLog, DecisionTrace
from repro.obs.events import NULL_EVENTS
from repro.obs.health import NULL_HEALTH, HealthMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import NULL_PROFILER
from repro.obs.slo import SloObjective, SloTracker
from repro.obs.spans import NullTracer
from repro.obs.timeseries import NULL_TIMESERIES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.stats import QueryRecord

#: Buckets for simulated per-step / per-response latencies (ms).
SIM_MS_BUCKETS = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Buckets for the *real* description-check wall clock (ms) — sized
#: around the paper's "always under 100 milliseconds" claim.
CHECK_WALL_BUCKETS_MS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
)

#: Buckets for payload sizes (bytes).
BYTES_BUCKETS = (
    512.0, 2048.0, 8192.0, 32768.0, 131072.0, 524288.0, 2097152.0,
)


@unshared("sim_ms", "wall_ms")
class _PhaseHandle:
    """What an instrumented phase yields: charge sim time, annotate.

    A handle lives inside one phase of one query on one thread —
    never shared, hence the ``unshared`` registration.
    """

    __slots__ = ("name", "span", "sim_ms", "wall_ms", "_clock", "_frame")

    def __init__(
        self, name: str, span: Any, clock: Any = None, frame: Any = None
    ) -> None:
        self.name = name
        self.span = span
        self.sim_ms = 0.0
        self.wall_ms = 0.0
        self._clock = clock
        self._frame = frame

    def charge(self, sim_ms: float) -> None:
        """Add simulated milliseconds to this phase's step charge.

        Advances the observation's simulated clock immediately, so
        time-dependent machinery (fault windows, breaker cooldowns)
        sees intra-phase progress in charge order.  The charge also
        lands on the phase's profiler stage frame right away, so the
        profile reflects work charged before an in-phase failure.
        """
        self.sim_ms += sim_ms
        if self._frame is not None:
            self._frame.add_sim(sim_ms)
        if self._clock is not None:
            self._clock.advance(sim_ms)

    def annotate(self, **attrs: Any) -> None:
        self.span.annotate(**attrs)

    def count(self, counter: str, n: float = 1) -> None:
        """Bump an operator counter on this phase's profiler stage."""
        if self._frame is not None:
            self._frame.count(counter, n)


@unshared("steps", "check_wall_ms", "decision", "data_version")
@read_only("index")
class QueryObservation:
    """One query's lifecycle: step charges + nested spans.

    The proxy opens one observation per query (it is a context manager
    whose scope is the root ``query`` span), charges each processing
    step to it, and reads back ``steps`` / ``check_wall_ms`` when
    building the :class:`~repro.core.stats.QueryRecord`.

    When built with a ``clock`` (the proxy's simulated clock), every
    simulated charge also advances it, making the observation the one
    place where per-step costs and the proxy's timeline stay in sync.

    An observation belongs to the one thread serving its query (the
    ``unshared`` registration); ``index`` — the query's position in
    the proxy's admission order — is fixed at construction.
    """

    __slots__ = (
        "index",
        "steps",
        "check_wall_ms",
        "decision",
        "data_version",
        "_tracer",
        "_root",
        "_clock",
        "_profiler",
    )

    def __init__(
        self,
        tracer: Any,
        *,
        index: int,
        template_id: str,
        clock: Any = None,
        profiler: Any = None,
    ) -> None:
        self.index = index
        self.steps: dict[str, float] = {}
        self.check_wall_ms = 0.0
        #: The explain-layer trace the proxy fills while deciding.
        self.decision: DecisionTrace | None = None
        #: The origin data version the query was admitted under — the
        #: proxy's admission stage re-checks it before caching (the
        #: data-version fence).
        self.data_version: Any = None
        self._tracer = tracer
        self._clock = clock
        self._profiler = profiler if profiler is not None else NULL_PROFILER
        self._root = tracer.span("query", index=index, template=template_id)

    def __enter__(self) -> "QueryObservation":
        self._root.__enter__()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return bool(self._root.__exit__(exc_type, exc, tb))

    @property
    def trace_id(self) -> str | None:
        """The distributed trace id of this query's root span."""
        trace_id = getattr(self._root, "trace_id", None)
        return trace_id if isinstance(trace_id, str) else None

    def _accumulate(
        self,
        step: str,
        sim_ms: float,
        record: bool = True,
        profile: bool = True,
    ) -> None:
        """The single step-accumulation path.

        Every simulated charge — immediate (:meth:`charge`) or
        deferred to a phase's exit (:meth:`phase`) — lands here: into
        the profiler (which routes it to the innermost open stage
        frame of that name, or flat), and, unless ``record=False``,
        into the ``steps`` dict that becomes
        :attr:`~repro.core.stats.QueryRecord.steps_ms`.  A phase
        passes ``profile=False`` because its handle already charged
        the stage frame live.
        """
        if profile:
            self._profiler.accumulate(step, sim_ms)
        if record:
            self.steps[step] = self.steps.get(step, 0.0) + sim_ms

    def charge(self, step: str, sim_ms: float, **attrs: Any) -> None:
        """Record a purely simulated step (no interesting wall time)."""
        self._accumulate(step, sim_ms)
        if self._clock is not None:
            self._clock.advance(sim_ms)
        self._tracer.event(step, sim_ms=sim_ms, **attrs)

    def stage(self, name: str) -> Any:
        """Open a bare profiler sub-stage (no tracer span, no step key).

        For hot-path sections *inside* a phase that deserve their own
        profile row — the description probe and the exact relation
        checks inside ``check`` — without widening ``steps_ms``.
        """
        return self._profiler.stage(name)

    @contextmanager
    def phase(
        self, step: str, record: bool = True, **attrs: Any
    ) -> Iterator[_PhaseHandle]:
        """A step that does real work: spans it and times the wall.

        Wall time is measured here (not only in the span) so it is
        available even under the null tracer — the description-check
        wall clock backs the paper's "< 100 ms" claim regardless of
        whether tracing is on.  ``record=False`` spans a stage without
        adding a step key to the record (auxiliary stages that carry
        no simulated charge of their own, e.g. remainder building).
        """
        start = time.perf_counter()
        with self._profiler.stage(step) as frame:
            with self._tracer.span(step, **attrs) as span:
                handle = _PhaseHandle(step, span, self._clock, frame)
                try:
                    yield handle
                finally:
                    handle.wall_ms = (time.perf_counter() - start) * 1000.0
                    span.charge(handle.sim_ms)
                    span.annotate(wall_ms=round(handle.wall_ms, 6))
        self._accumulate(step, handle.sim_ms, record, profile=False)

    def annotate(self, **attrs: Any) -> None:
        self._root.annotate(**attrs)

    def charge_root(self, sim_ms: float) -> None:
        self._root.charge(sim_ms)


@unshared(
    "tracer", "profiler", "timeseries", "events", "health", "_queue_limit"
)
class ProxyInstrumentation:
    """The proxy's metric families, tracer, decision log, and hooks.

    ``tracer`` / ``profiler`` — and the telemetry trio ``timeseries``
    / ``events`` / ``health`` — are rebound only during
    single-threaded deployment wiring (the web apps swap in live
    recorders before any request thread starts), hence the
    ``unshared`` waiver; the objects behind them synchronize
    internally.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Any = None,
        decision_capacity: int = 256,
        slo: SloObjective | None = None,
        profiler: Any = None,
        timeseries: Any = None,
        events: Any = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.decisions = DecisionLog(capacity=decision_capacity)
        self.slo = SloTracker(self.registry, objective=slo)
        self.timeseries = (
            timeseries if timeseries is not None else NULL_TIMESERIES
        )
        self.events = events if events is not None else NULL_EVENTS
        self.timeseries.bind(self.registry)
        self._queue_limit: int | None = None
        self.health = self._build_health()
        r = self.registry
        self.queries = r.counter(
            "proxy_queries_total",
            "Queries served, by disposition status and template.",
            ("status", "template"),
        )
        self.step_ms = r.histogram(
            "proxy_step_sim_ms",
            "Simulated latency charged per query-processing step.",
            ("step",),
            buckets=SIM_MS_BUCKETS,
        )
        self.response_ms = r.histogram(
            "proxy_response_sim_ms",
            "Simulated proxy-side response time per query.",
            buckets=SIM_MS_BUCKETS,
        )
        self.check_wall_ms = r.histogram(
            "proxy_check_wall_ms",
            "Real wall-clock time of the cache-description check "
            "(the paper's under-100-ms claim).",
            buckets=CHECK_WALL_BUCKETS_MS,
        )
        self.cache_bytes = r.gauge(
            "proxy_cache_bytes", "Bytes of results currently cached."
        )
        self.cache_entries = r.gauge(
            "proxy_cache_entries", "Cached query results currently held."
        )
        self.cache_insertions = r.counter(
            "proxy_cache_insertions_total", "Results admitted to the cache."
        )
        self.cache_evictions = r.counter(
            "proxy_cache_evictions_total",
            "Entries evicted by the replacement policy.",
        )
        self.cache_removals = r.counter(
            "proxy_cache_removals_total",
            "Entries consolidated away by region containment.",
        )
        self.cache_invalidations = r.counter(
            "proxy_cache_invalidations_total",
            "Whole-cache flushes (origin data-version changes).",
        )
        self.origin_requests = r.counter(
            "proxy_origin_requests_total",
            "Queries that had to contact the origin server.",
        )
        self.origin_bytes = r.counter(
            "proxy_origin_bytes_total",
            "Result bytes shipped from the origin to the proxy.",
        )
        self.tuples_served = r.counter(
            "proxy_tuples_served_total",
            "Result tuples returned to clients, by source.",
            ("source",),
        )
        self.transfer_ms = r.histogram(
            "proxy_network_transfer_ms",
            "Simulated network round-trip time, by hop.",
            ("hop",),
            buckets=SIM_MS_BUCKETS,
        )
        self.transfer_bytes = r.counter(
            "proxy_network_bytes_total",
            "Bytes carried across the network, by hop.",
            ("hop",),
        )
        self.analysis_diagnostics = r.counter(
            "analysis_diagnostics_total",
            "Static-analysis diagnostics raised at template admission, "
            "by diagnostic code and severity.",
            ("code", "severity"),
        )
        self.origin_retries = r.counter(
            "origin_retries_total",
            "Origin attempts retried after a transient failure or "
            "timeout.",
        )
        self.breaker_state = r.gauge(
            "breaker_state",
            "Circuit breaker guarding the proxy-to-origin hop "
            "(0=closed, 1=half-open, 2=open).",
        )
        self.degraded_responses = r.counter(
            "degraded_responses_total",
            "Responses that were not full fresh answers, by outcome "
            "kind (degraded, partial, failed).",
            ("kind",),
        )
        self.origin_failures = r.counter(
            "origin_failures_total",
            "Origin requests given up on after resilience was "
            "exhausted, by terminal reason.",
            ("reason",),
        )
        self.journal_records = r.counter(
            "journal_records_total",
            "Cache-mutation records appended to (or replayed from) the "
            "persistence journal, by record type and direction.",
            ("type", "direction"),
        )
        self.recovery_entries = r.counter(
            "recovery_entries_total",
            "Cache entries processed by warm-restart recovery, by "
            "disposition (restored, stale, error, rejected).",
            ("disposition",),
        )
        self.snapshot_age = r.gauge(
            "snapshot_age_seconds",
            "Simulated seconds since the last persistence snapshot.",
        )
        self.admission_depth = r.gauge(
            "admission_queue_depth",
            "Requests currently parked in the admission accept queue.",
        )
        self.admission_sheds = r.counter(
            "admission_shed_total",
            "Queries turned away by admission control, by reason "
            "(queue-full, quota, admission-open, deadline).",
            ("reason",),
        )
        self.admission_quota_denials = r.counter(
            "admission_quota_denials_total",
            "Queries denied by a per-tenant token-bucket quota.",
            ("tenant",),
        )
        self.admission_wait_ms = r.histogram(
            "admission_queue_wait_sim_ms",
            "Simulated time admitted queries spent in the accept queue.",
            buckets=SIM_MS_BUCKETS,
        )
        self.admission_overload = r.gauge(
            "admission_overload_state",
            "Overload circuit breaker gating admission "
            "(0=closed, 1=half-open, 2=open).",
        )
        self.admission_running = r.gauge(
            "admission_inflight",
            "Admitted queries currently holding a serve slot.",
        )
        self.admission_quota = r.gauge(
            "admission_quota_tokens",
            "Tokens currently available in each tenant's admission "
            "bucket.",
            ("tenant",),
        )

    # --------------------------------------------------------- telemetry
    def _build_health(self) -> Any:
        """The health monitor matching the current telemetry wiring."""
        if not self.timeseries.enabled:
            return NULL_HEALTH
        monitor = HealthMonitor(self.timeseries, self.events, slo=self.slo)
        monitor.set_queue_limit(self._queue_limit)
        return monitor

    def sample_telemetry(self, now_ms: float) -> None:
        """Serve-path hook: advance the time series to ``now_ms``.

        When the call lands a new sample (an interval boundary was
        crossed) the health rules are re-evaluated against the updated
        series, so verdict flips land at window granularity.  With the
        null recorder this is one no-op method call per query.
        """
        if self.timeseries.maybe_sample(now_ms) is not None:
            self.health.evaluate(now_ms)

    def telemetry_event(
        self,
        code: str,
        at_ms: float,
        trace_id: str | None = None,
        query_index: int | None = None,
        **payload: Any,
    ) -> None:
        """Serve-path hook: one pinned-code flight-recorder event."""
        self.events.emit(
            code,
            at_ms,
            trace_id=trace_id,
            query_index=query_index,
            **payload,
        )

    def install_telemetry(
        self, timeseries: Any = None, events: Any = None
    ) -> None:
        """Deployment wiring: swap in live telemetry recorders.

        Like tracer/profiler rebinding, legal only during
        single-threaded wiring before any request thread starts.
        """
        if timeseries is not None:
            self.timeseries = timeseries
            self.timeseries.bind(self.registry)
        if events is not None:
            self.events = events
        self.health = self._build_health()

    def set_admission_queue_limit(self, limit: int | None) -> None:
        """Admission wiring: the accept queue's depth limit (HR04)."""
        self._queue_limit = limit
        self.health.set_queue_limit(limit)

    # ------------------------------------------------- analysis observation
    def record_diagnostic(self, diagnostic: Any) -> None:
        """Template-manager analysis hook; counts one diagnostic."""
        self.analysis_diagnostics.labels(
            code=diagnostic.code, severity=diagnostic.severity.value
        ).inc()

    # --------------------------------------------------- resilience hooks
    def origin_retry(self) -> None:
        """Gateway hook: one origin attempt is being retried."""
        self.origin_retries.inc()

    def origin_failure(self, reason: str) -> None:
        """Gateway hook: an origin request was given up on."""
        self.origin_failures.labels(reason=reason).inc()

    def breaker_transition(self, value: int) -> None:
        """Breaker hook: the state gauge's new encoded value."""
        self.breaker_state.set(value)

    # --------------------------------------------------- admission hooks
    def admission_queue_depth(self, depth: int) -> None:
        """Admission hook: the accept queue's current depth."""
        self.admission_depth.set(depth)

    def admission_inflight(self, count: int) -> None:
        """Admission hook: queries currently holding a serve slot."""
        self.admission_running.set(count)

    def admission_quota_tokens(self, tenant: str, tokens: float) -> None:
        """Admission hook: a tenant bucket's current token level."""
        self.admission_quota.labels(tenant=tenant).set(tokens)

    def admission_shed(self, reason: str) -> None:
        """Admission hook: one query was turned away."""
        self.admission_sheds.labels(reason=reason).inc()
        self.profiler.hit("admit.shed")

    def admission_quota_denied(self, tenant: str) -> None:
        """Admission hook: a tenant's token bucket denied a query."""
        self.admission_quota_denials.labels(tenant=tenant).inc()

    def admission_queue_wait(self, sim_ms: float) -> None:
        """Admission hook: an admitted query's simulated queue wait."""
        self.admission_wait_ms.observe(sim_ms)

    def admission_overload_transition(self, state: Any) -> None:
        """Admission hook: the overload breaker's new state.

        Encoded like ``breaker_state`` (0=closed, 1=half-open,
        2=open); the mapping is by state value to avoid importing the
        resilience module here.
        """
        encoded = {"closed": 0, "half-open": 1, "open": 2}
        self.admission_overload.set(encoded.get(state.value, -1))

    # --------------------------------------------------------- per query
    def observe_query(
        self, index: int, template_id: str, clock: Any = None
    ) -> QueryObservation:
        return QueryObservation(
            self.tracer,
            index=index,
            template_id=template_id,
            clock=clock,
            profiler=self.profiler,
        )

    def observe_record(
        self, record: "QueryRecord", trace_id: str | None = None
    ) -> None:
        """Fold one finished query record into the metric families.

        ``trace_id`` (the query's root span trace) becomes the exemplar
        on every latency-histogram bucket the record lands in, linking
        a p95 bucket to the trace that caused it.
        """
        self.queries.labels(
            status=record.status.value, template=record.template_id
        ).inc()
        for step, sim_ms in record.steps_ms.items():
            self.step_ms.labels(step=step).observe(sim_ms, trace_id=trace_id)
        self.response_ms.observe(record.response_ms, trace_id=trace_id)
        if "check" in record.steps_ms:
            self.check_wall_ms.observe(
                record.check_wall_ms, trace_id=trace_id
            )
        self.slo.observe(
            record.template_id,
            hit=not record.contacted_origin,
            latency_ms=record.response_ms,
        )
        self.cache_bytes.set(record.cache_bytes_after)
        self.cache_entries.set(record.cache_entries_after)
        if record.contacted_origin:
            self.origin_requests.inc()
            self.origin_bytes.inc(record.origin_bytes)
        self.tuples_served.labels(source="cache").inc(
            record.tuples_from_cache
        )
        self.tuples_served.labels(source="origin").inc(
            record.tuples_total - record.tuples_from_cache
        )
        if record.outcome.value != "served":
            self.degraded_responses.labels(kind=record.outcome.value).inc()
        self.profiler.record_query(
            record.index,
            record.template_id,
            record.response_ms,
            status=record.status.value,
        )

    # -------------------------------------------------- persistence hooks
    def journal_append(self, record_type: str) -> None:
        """Persister hook: one record was appended to the journal."""
        self.journal_records.labels(
            type=record_type, direction="append"
        ).inc()
        self.profiler.hit("journal.append")

    def journal_replayed(self, record_type: str) -> None:
        """Recovery hook: one journal record was replayed."""
        self.journal_records.labels(
            type=record_type, direction="replay"
        ).inc()
        self.profiler.hit("journal.replay")

    def recovery_disposition(self, disposition: str, count: int) -> None:
        """Recovery hook: ``count`` entries ended as ``disposition``."""
        if count:
            self.recovery_entries.labels(disposition=disposition).inc(count)

    def set_snapshot_age(self, seconds: float) -> None:
        """Persister hook: the snapshot-age gauge's new value."""
        self.snapshot_age.set(seconds)

    # ------------------------------------------------- cache observation
    def cache_event(
        self, kind: str, n_bytes: int, current_bytes: int, entries: int
    ) -> None:
        """Cache-manager hook; ``kind`` is insert/evict/remove/clear."""
        if kind == "insert":
            self.cache_insertions.inc()
        elif kind == "evict":
            self.cache_evictions.inc()
        elif kind == "remove":
            self.cache_removals.inc()
        elif kind == "clear":
            self.cache_invalidations.inc()
        self.profiler.hit(f"cache.{kind}")
        self.cache_bytes.set(current_bytes)
        self.cache_entries.set(entries)

    # ----------------------------------------------- network observation
    def record_transfer(self, hop: str, n_bytes: int, ms: float) -> None:
        """Topology hook; ``hop`` is ``origin`` or ``client``."""
        self.transfer_ms.labels(hop=hop).observe(ms)
        self.transfer_bytes.labels(hop=hop).inc(n_bytes)


@unshared("tracer", "profiler", "timeseries", "events", "health")
class OriginInstrumentation:
    """The origin server's metric families and tracer.

    Same waiver as :class:`ProxyInstrumentation`: rebound only during
    single-threaded deployment wiring.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Any = None,
        profiler: Any = None,
        timeseries: Any = None,
        events: Any = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NullTracer()
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.timeseries = (
            timeseries if timeseries is not None else NULL_TIMESERIES
        )
        self.events = events if events is not None else NULL_EVENTS
        self.timeseries.bind(self.registry)
        self.health = self._build_health()
        r = self.registry
        self.requests = r.counter(
            "origin_requests_total",
            "Requests executed, by kind (form, sql, remainder).",
            ("kind",),
        )
        self.server_ms = r.histogram(
            "origin_server_sim_ms",
            "Simulated server cost per request, by kind.",
            ("kind",),
            buckets=SIM_MS_BUCKETS,
        )
        self.result_bytes = r.histogram(
            "origin_result_bytes",
            "Serialized result size per request, by kind.",
            ("kind",),
            buckets=BYTES_BUCKETS,
        )
        self.data_version = r.gauge(
            "origin_data_version", "Current base-data version."
        )
        self.data_version.set(1)

    def _build_health(self) -> Any:
        if not self.timeseries.enabled:
            return NULL_HEALTH
        return HealthMonitor(self.timeseries, self.events)

    def sample_telemetry(self, now_ms: float) -> None:
        """Request-path hook: advance the time series to ``now_ms``."""
        if self.timeseries.maybe_sample(now_ms) is not None:
            self.health.evaluate(now_ms)

    def install_telemetry(
        self, timeseries: Any = None, events: Any = None
    ) -> None:
        """Deployment wiring: swap in live telemetry recorders."""
        if timeseries is not None:
            self.timeseries = timeseries
            self.timeseries.bind(self.registry)
        if events is not None:
            self.events = events
        self.health = self._build_health()

    def observe(self, kind: str, result_bytes: int, server_ms: float) -> None:
        self.requests.labels(kind=kind).inc()
        self.server_ms.labels(kind=kind).observe(server_ms)
        self.result_bytes.labels(kind=kind).observe(result_bytes)
        # Calls were counted by the execution stage frame; here only
        # the simulated server cost (known post-execution) is charged.
        self.profiler.add_sim(f"origin.{kind}", server_ms, calls=0)
