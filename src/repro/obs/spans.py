"""Structured spans: nested per-query lifecycle timing.

A *span* is one named stage of work with a wall-clock duration, an
accumulated simulated-clock charge, free-form attributes, and child
spans.  The tracer keeps an open-span stack (``span()`` nests under
whatever is currently open) and a bounded ring buffer of finished root
spans for the ``/trace/recent`` endpoint and JSONL export.

Two tracers share the interface:

* :class:`SpanTracer` — records everything;
* :class:`NullTracer` — the off switch: ``span()`` hands back a shared
  do-nothing span, so instrumented code pays one method call and no
  allocation per stage.  This is the default on the hot path.

Tracers are not thread-safe; each proxy/origin owns its own (matching
the single-threaded replay harness and Flask test deployments).
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Callable, Iterator


class Span:
    """One stage of work; a context manager bound to its tracer."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "wall_ms",
        "sim_ms",
        "_tracer",
        "_start",
    )

    def __init__(self, tracer: "SpanTracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.wall_ms = 0.0
        self.sim_ms = 0.0
        self._tracer = tracer
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_ms = (self._tracer._clock() - self._start) * 1000.0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes (status, counts, ...) to this span."""
        self.attrs.update(attrs)
        return self

    def charge(self, sim_ms: float) -> "Span":
        """Accumulate simulated-clock milliseconds onto this span."""
        self.sim_ms += sim_ms
        return self

    def to_dict(self) -> dict:
        payload: dict[str, Any] = {
            "name": self.name,
            "wall_ms": round(self.wall_ms, 6),
            "sim_ms": round(self.sim_ms, 6),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    def __repr__(self) -> str:
        return (
            f"<Span {self.name!r} wall={self.wall_ms:.3f}ms "
            f"sim={self.sim_ms:.3f}ms children={len(self.children)}>"
        )


class SpanTracer:
    """Records nested spans; keeps the last ``capacity`` root spans."""

    enabled = True

    def __init__(
        self,
        capacity: int = 256,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity}")
        self._clock = clock
        self._stack: list[Span] = []
        self._finished: deque[Span] = deque(maxlen=capacity)
        self.spans_started = 0

    # ------------------------------------------------------------ record
    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; nests under the currently open span when entered."""
        return Span(self, name, attrs)

    def event(self, name: str, sim_ms: float = 0.0, **attrs: Any) -> None:
        """A zero-wall-duration child span (an instantaneous charge)."""
        with self.span(name, **attrs) as span:
            span.charge(sim_ms)

    def _push(self, span: Span) -> None:
        self._stack.append(span)
        self.spans_started += 1

    def _pop(self, span: Span) -> None:
        # Tolerate out-of-order exits by unwinding to the span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._finished.append(span)

    # ------------------------------------------------------------ export
    def recent(self, n: int | None = None) -> list[dict]:
        """The most recent finished root spans, oldest first.

        ``n`` bounds the result; zero and negative values yield [].
        """
        roots = list(self._finished)
        if n is not None:
            roots = roots[-n:] if n > 0 else []
        return [root.to_dict() for root in roots]

    def iter_jsonl(self) -> Iterator[str]:
        for root in self._finished:
            yield json.dumps(root.to_dict(), sort_keys=True)

    def export_jsonl(self) -> str:
        """Finished root spans as JSON Lines (one root per line)."""
        lines = list(self.iter_jsonl())
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path) -> int:
        """Append finished roots to ``path``; returns spans written."""
        lines = list(self.iter_jsonl())
        if lines:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write("\n".join(lines) + "\n")
        return len(lines)

    def clear(self) -> None:
        self._finished.clear()


class _NullSpan:
    """The shared do-nothing span the :class:`NullTracer` hands out."""

    __slots__ = ()
    name = ""
    wall_ms = 0.0
    sim_ms = 0.0
    attrs: dict = {}
    children: list = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def charge(self, sim_ms: float) -> "_NullSpan":
        return self

    def to_dict(self) -> dict:
        return {}

    def __repr__(self) -> str:
        return "<NullSpan>"


#: The singleton no-op span.
NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: emits nothing, stores nothing."""

    enabled = False
    spans_started = 0

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, sim_ms: float = 0.0, **attrs: Any) -> None:
        return None

    def recent(self, n: int | None = None) -> list[dict]:
        return []

    def iter_jsonl(self) -> Iterator[str]:
        return iter(())

    def export_jsonl(self) -> str:
        return ""

    def write_jsonl(self, path) -> int:
        return 0

    def clear(self) -> None:
        return None
